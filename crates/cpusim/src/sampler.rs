//! Trace-driven memory profiling of one representative thread.
//!
//! The simulator executes a sample of one thread's static-schedule chunk
//! *address-accurately*: loop bounds are resolved, induction variables
//! iterate, every array reference is evaluated to a concrete byte address
//! and driven through the set-associative hierarchy and the TLB. The result
//! — effective load latency, DRAM traffic per iteration, TLB behaviour —
//! is precisely the information the paper's analytical CPU model lacks
//! (LLVM-MCA "include\[s\] a lack of a cache hierarchy and memory type
//! model"), which makes the simulator legitimate ground truth for it.

use crate::arch::CpuDescriptor;
use crate::cache::{Hierarchy, Tlb};
use hetsel_ir::{Binding, Kernel, Lhs, LoopVarId, MemoryLayout, Stmt};

/// Memory behaviour of one parallel iteration, measured over a sampled
/// chunk prefix.
#[derive(Debug, Clone)]
pub struct MemoryProfile {
    /// Mean load-to-use latency over all sampled loads, cycles.
    pub avg_load_latency: f64,
    /// DRAM traffic per parallel iteration, bytes (reads + write-allocate +
    /// writeback).
    pub dram_bytes_per_iter: f64,
    /// Memory accesses (loads + stores) per parallel iteration.
    pub accesses_per_iter: f64,
    /// TLB miss ratio over all sampled accesses.
    pub tlb_miss_ratio: f64,
    /// Parallel iterations actually sampled.
    pub sampled_iters: u64,
    /// Hits per level (last entry = memory), loads and stores combined.
    pub level_hits: Vec<u64>,
}

/// Sampling budget: total memory accesses to trace.
const ACCESS_BUDGET: u64 = 200_000;

struct Tracer<'a> {
    kernel: &'a Kernel,
    binding: &'a Binding,
    layout: MemoryLayout,
    hierarchy: Hierarchy,
    tlb: Tlb,
    latencies: Vec<f64>, // per level + memory
    line_bytes: u64,
    env: Vec<i64>,
    budget: u64,
    recording: bool,
    // recorded stats
    load_latency_sum: f64,
    loads: u64,
    accesses: u64,
    dram_bytes: f64,
    level_hits: Vec<u64>,
    tlb_accesses: u64,
    tlb_misses: u64,
}

impl<'a> Tracer<'a> {
    fn touch(&mut self, r: &hetsel_ir::ArrayRef, is_store: bool) {
        let env = &self.env;
        let idx: Option<Vec<i64>> = r
            .index
            .iter()
            .map(|e| e.eval(self.binding, &|v: LoopVarId| env.get(v.0).copied()))
            .collect();
        let Some(idx) = idx else { return };
        let addr = self.layout.array(r.array).addr(&idx);
        let level = self.hierarchy.access(addr);
        let tlb_hit = self.tlb.access(addr);
        if self.budget > 0 {
            self.budget -= 1;
        }
        if !self.recording {
            return;
        }
        self.accesses += 1;
        self.tlb_accesses += 1;
        if !tlb_hit {
            self.tlb_misses += 1;
        }
        self.level_hits[level] += 1;
        if level == self.hierarchy.depth() {
            // Served by memory: one line read; stores also write back.
            self.dram_bytes += self.line_bytes as f64 * if is_store { 2.0 } else { 1.0 };
        }
        if !is_store {
            self.load_latency_sum += self.latencies[level];
            self.loads += 1;
        }
    }

    fn exec(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Assign(a) => {
                    let mut loads: Vec<hetsel_ir::ArrayRef> = Vec::new();
                    a.rhs.for_each_load(&mut |r| loads.push(r.clone()));
                    for r in &loads {
                        self.touch(r, false);
                    }
                    if let Lhs::Array(r) = &a.lhs {
                        let r = r.clone();
                        self.touch(&r, true);
                    }
                }
                Stmt::For(l, body) => {
                    let env = &self.env;
                    let lo = l
                        .lower
                        .eval(self.binding, &|v: LoopVarId| env.get(v.0).copied())
                        .unwrap_or(0);
                    let hi = l
                        .upper
                        .eval(self.binding, &|v: LoopVarId| env.get(v.0).copied())
                        .unwrap_or(0);
                    for v in lo..hi {
                        self.set_var(l.var, v);
                        self.exec(body);
                        if self.budget == 0 {
                            break;
                        }
                    }
                }
            }
        }
    }

    fn set_var(&mut self, var: LoopVarId, v: i64) {
        if self.env.len() <= var.0 {
            self.env.resize(var.0 + 1, 0);
        }
        self.env[var.0] = v;
    }
}

/// Profiles one thread's chunk of the kernel under a static schedule with
/// `threads` total threads. Returns `None` if extents or bounds are
/// unresolved.
pub fn profile(
    kernel: &Kernel,
    binding: &Binding,
    cpu: &CpuDescriptor,
    threads: u32,
) -> Option<MemoryProfile> {
    let layout = MemoryLayout::resolve(kernel, binding)?;
    let p = kernel.parallel_iterations(binding)?;
    if p == 0 {
        return None;
    }
    let threads_used = u64::from(threads).min(p).max(1);
    let chunk = p.div_ceil(threads_used);

    // Effective capacities under sharing: private levels are split among the
    // SMT threads of a core, the chip-shared level among all active threads.
    let threads_per_core = threads_used.div_ceil(u64::from(cpu.cores)).max(1);
    let levels: Vec<(u64, u32, u32)> = cpu
        .caches
        .iter()
        .map(|c| {
            let share = if c.chip_shared {
                threads_used
            } else {
                threads_per_core
            };
            (
                (c.bytes / share).max(u64::from(c.line_bytes) * 4),
                c.line_bytes,
                c.assoc,
            )
        })
        .collect();
    let mut latencies: Vec<f64> = cpu.caches.iter().map(|c| c.latency).collect();
    latencies.push(cpu.mem_latency);
    let line_bytes = u64::from(cpu.caches.last().map(|c| c.line_bytes).unwrap_or(128));

    let ploops = kernel.parallel_loops();
    let dims: Vec<(LoopVarId, i64, i64)> = ploops
        .iter()
        .map(|l| {
            let lo = l.lower.eval_closed(binding).unwrap_or(0);
            let hi = l.upper.eval_closed(binding).unwrap_or(0);
            (l.var, lo, hi)
        })
        .collect();
    let body: Vec<Stmt> = kernel.parallel_body().to_vec();

    let depth = levels.len();
    let mut tracer = Tracer {
        kernel,
        binding,
        layout,
        hierarchy: Hierarchy::new(&levels),
        tlb: Tlb::new(cpu.tlb_entries, cpu.page_bytes),
        latencies,
        line_bytes,
        env: Vec::new(),
        budget: ACCESS_BUDGET,
        recording: false,
        load_latency_sum: 0.0,
        loads: 0,
        accesses: 0,
        dram_bytes: 0.0,
        level_hits: vec![0; depth + 1],
        tlb_accesses: 0,
        tlb_misses: 0,
    };
    let _ = tracer.kernel;

    // Decompose a linear parallel index into loop-variable values.
    let set_parallel_vars = |t: &mut Tracer, lin: u64| {
        let mut rem = lin;
        for (var, lo, hi) in dims.iter().rev() {
            let extent = (hi - lo).max(1) as u64;
            let off = rem % extent;
            rem /= extent;
            t.set_var(*var, lo + off as i64);
        }
    };

    // Analytic accesses per parallel iteration, for scaling iterations the
    // budget truncates (huge inner loops may exceed the whole budget).
    let tc = hetsel_ir::trips::resolve(kernel, binding);
    let analytic_per_iter = hetsel_mca::loadout(kernel, &|l| tc.of(l))
        .mem_insts()
        .max(1.0);

    // Warm-up: a dedicated slice of the budget, unrecorded, to populate the
    // caches (huge loop bodies may not even finish one iteration — fine,
    // the caches still warm).
    let mut iter: u64 = 0;
    tracer.budget = ACCESS_BUDGET / 8;
    while iter < chunk && tracer.budget > 0 {
        set_parallel_vars(&mut tracer, iter);
        tracer.exec(&body);
        iter += 1;
    }
    if iter >= chunk {
        // Tiny chunk fully consumed by warm-up: re-run it recorded (warm).
        iter = 0;
    }
    // Recorded phase with a fresh budget: count fractional iterations when
    // the budget runs out mid-body, otherwise per-iteration statistics are
    // silently diluted.
    tracer.recording = true;
    tracer.budget = ACCESS_BUDGET;
    let mut sampled: f64 = 0.0;
    while iter < chunk && tracer.budget > 0 {
        let before = tracer.accesses;
        set_parallel_vars(&mut tracer, iter);
        tracer.exec(&body);
        iter += 1;
        if tracer.budget == 0 {
            let done = (tracer.accesses - before) as f64;
            sampled += (done / analytic_per_iter).clamp(1e-6, 1.0);
            break;
        }
        sampled += 1.0;
    }
    debug_assert!(sampled > 0.0);

    let avg_load_latency = if tracer.loads > 0 {
        tracer.load_latency_sum / tracer.loads as f64
    } else {
        cpu.caches.first().map(|c| c.latency).unwrap_or(4.0)
    };
    Some(MemoryProfile {
        avg_load_latency,
        dram_bytes_per_iter: tracer.dram_bytes / sampled,
        accesses_per_iter: tracer.accesses as f64 / sampled,
        tlb_miss_ratio: if tracer.tlb_accesses > 0 {
            tracer.tlb_misses as f64 / tracer.tlb_accesses as f64
        } else {
            0.0
        },
        sampled_iters: sampled.ceil() as u64,
        level_hits: tracer.level_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::power9_host;
    use hetsel_polybench::{find_kernel, Dataset};

    fn prof(name: &str, ds: Dataset, threads: u32) -> MemoryProfile {
        let (k, binding) = find_kernel(name).unwrap();
        profile(&k, &binding(ds), &power9_host(), threads).unwrap()
    }

    #[test]
    fn gemm_streams_hit_caches() {
        let p = prof("gemm", Dataset::Test, 160);
        // A row reused along k (L1), B column walk strided: latency should
        // sit between L1 and memory.
        assert!(p.avg_load_latency >= 4.0, "{}", p.avg_load_latency);
        assert!(p.avg_load_latency < 250.0, "{}", p.avg_load_latency);
        assert!(p.accesses_per_iter > 2.0 * 1000.0);
        assert!(p.sampled_iters >= 1);
    }

    #[test]
    fn conv2d_is_mostly_l1() {
        let p = prof("2dconv", Dataset::Benchmark, 160);
        // Stencil rows stream with 128B lines: 9 of 10 accesses hit L1.
        let total: u64 = p.level_hits.iter().sum();
        assert!(
            p.level_hits[0] as f64 / total as f64 > 0.7,
            "{:?}",
            p.level_hits
        );
        // Per-iteration DRAM traffic is a small number of bytes.
        assert!(p.dram_bytes_per_iter < 64.0, "{}", p.dram_bytes_per_iter);
        assert!(p.dram_bytes_per_iter > 4.0, "{}", p.dram_bytes_per_iter);
    }

    #[test]
    fn dram_traffic_scales_with_dataset() {
        let t = prof("mvt.k1", Dataset::Test, 160);
        let b = prof("mvt.k1", Dataset::Benchmark, 160);
        // Benchmark-mode rows (9600 floats) blow past per-thread L1; the A
        // row stream misses more than in test mode once per line.
        assert!(b.dram_bytes_per_iter >= t.dram_bytes_per_iter * 0.9);
    }

    #[test]
    fn tlb_misses_on_column_walk() {
        // bicg.k1 walks A by columns: consecutive inner iterations are
        // 9600*4 bytes apart — a new 64KiB page every ~1.7 iterations in
        // benchmark mode, overwhelming a 1024-entry TLB for a 368MB array.
        let p = prof("bicg.k1", Dataset::Benchmark, 160);
        assert!(p.tlb_miss_ratio > 0.05, "{}", p.tlb_miss_ratio);
        let q = prof("bicg.k2", Dataset::Benchmark, 160);
        assert!(q.tlb_miss_ratio < p.tlb_miss_ratio);
    }

    #[test]
    fn unresolved_binding_returns_none() {
        let (k, _) = find_kernel("gemm").unwrap();
        assert!(profile(&k, &Binding::new(), &power9_host(), 4).is_none());
    }
}
