//! Host CPU descriptors: the POWER8 and POWER9 machines of the paper.
//!
//! Combines the core pipeline model from `hetsel-mca` with the memory
//! hierarchy, SMT, vector-ISA and OpenMP-overhead parameters the simulator
//! needs. OpenMP overheads are the paper's Table II values (EPCC-measured on
//! their hardware).

use hetsel_mca::CoreDescriptor;

/// One level of the cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevel {
    /// Level name (`"L1D"`, `"L2"`, `"L3"`).
    pub name: &'static str,
    /// Capacity in bytes, per sharing domain.
    pub bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity.
    pub assoc: u32,
    /// Load-to-use latency on a hit, cycles.
    pub latency: f64,
    /// True if shared by all cores on the chip (capacity is divided among
    /// active cores during simulation).
    pub chip_shared: bool,
}

/// OpenMP runtime overheads (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmpOverheads {
    /// `Par_Startup`: cycles to spin up the parallel region.
    pub par_startup: f64,
    /// `Par_Schedule_Overhead_static`: static-schedule dispatch cycles.
    pub schedule_static: f64,
    /// `Synchronization_Overhead`: implicit barrier/join cycles.
    pub synchronization: f64,
    /// `Loop_overhead_per_iter`: bookkeeping cycles per loop iteration.
    pub loop_overhead_per_iter: f64,
    /// Per-thread cost of entering a host-fallback target region (team
    /// formation + fork/join barrier), cycles. EPCC-style fork/join scaling
    /// measurements grow roughly linearly in thread count; at 160 SMT
    /// threads this puts the host floor for a tiny region at ~1.3 ms,
    /// consistent with the millisecond-scale small-region host times the
    /// paper's test-mode speedups imply.
    pub fork_per_thread_cycles: f64,
}

/// Paper Table II values.
pub fn table2_overheads() -> OmpOverheads {
    OmpOverheads {
        par_startup: 3000.0,
        schedule_static: 10154.0,
        synchronization: 4000.0,
        loop_overhead_per_iter: 4.0,
        fork_per_thread_cycles: 24_000.0,
    }
}

/// A host CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuDescriptor {
    /// Machine name.
    pub name: &'static str,
    /// Core pipeline model (drives the MCA engine).
    pub core: CoreDescriptor,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads per core.
    pub smt: u32,
    /// Clock, GHz (the paper clocks both hosts at 3.0 GHz).
    pub clock_ghz: f64,
    /// Cache hierarchy, innermost first.
    pub caches: Vec<CacheLevel>,
    /// Memory access latency, cycles.
    pub mem_latency: f64,
    /// Chip memory bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Data TLB entries (paper Table II: 1024).
    pub tlb_entries: u32,
    /// Page size, bytes (64 KiB on the paper's RHEL/POWER systems).
    pub page_bytes: u64,
    /// TLB miss penalty, cycles (paper Table II: 14).
    pub tlb_miss_penalty: f64,
    /// Per-core throughput multiplier at 1, 2, 4, 8 threads per core.
    pub smt_throughput: [f64; 4],
    /// Whether the compiler vectorises over the parallel (outer) dimension
    /// when the inner loop resists vectorisation — the VSX3/XL-on-POWER9
    /// capability behind the paper's CORR flip.
    pub outer_loop_vectorization: bool,
    /// Compiler unroll factor for breaking reduction chains.
    pub unroll: f64,
    /// Hardware prefetch streams tracked per core: concurrent access
    /// streams beyond this thrash the prefetcher and lose memory
    /// bandwidth.
    pub prefetch_streams: u32,
    /// OpenMP runtime overheads.
    pub omp: OmpOverheads,
}

impl CpuDescriptor {
    /// Total hardware threads.
    pub fn max_threads(&self) -> u32 {
        self.cores * self.smt
    }

    /// Per-core throughput multiplier for `t` threads per core.
    pub fn smt_multiplier(&self, threads_per_core: f64) -> f64 {
        let pts = [1.0, 2.0, 4.0, 8.0];
        if threads_per_core <= 1.0 {
            return self.smt_throughput[0];
        }
        for w in 0..3 {
            if threads_per_core <= pts[w + 1] {
                let f = (threads_per_core - pts[w]) / (pts[w + 1] - pts[w]);
                return self.smt_throughput[w]
                    + f * (self.smt_throughput[w + 1] - self.smt_throughput[w]);
            }
        }
        self.smt_throughput[3]
    }

    /// SIMD lanes for a given element size, derived from the core's vector
    /// register width (128-bit VSX on POWER, 512-bit AVX-512 on Skylake).
    pub fn vector_lanes(&self, elem_bytes: u32) -> f64 {
        let reg_bytes = f64::from(self.core.vector_lanes_f64) * 8.0;
        (reg_bytes / f64::from(elem_bytes)).max(1.0)
    }

    /// Sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()?;
        if self.caches.is_empty() {
            return Err(format!("{}: no caches", self.name));
        }
        let mut prev = 0.0;
        for c in &self.caches {
            if c.latency <= prev {
                return Err(format!("{}: cache latencies not increasing", self.name));
            }
            prev = c.latency;
        }
        if self.mem_latency <= prev {
            return Err(format!("{}: memory faster than last cache", self.name));
        }
        Ok(())
    }
}

/// The paper's POWER9 host: 20 cores × SMT8 = 160 threads at 3.0 GHz
/// (AC922), VSX3 vector ISA.
pub fn power9_host() -> CpuDescriptor {
    CpuDescriptor {
        name: "POWER9 (AC922)",
        core: hetsel_mca::power9(),
        cores: 20,
        smt: 8,
        clock_ghz: 3.0,
        caches: vec![
            CacheLevel {
                name: "L1D",
                bytes: 32 * 1024,
                line_bytes: 128,
                assoc: 8,
                latency: 5.0,
                chip_shared: false,
            },
            CacheLevel {
                name: "L2",
                bytes: 512 * 1024,
                line_bytes: 128,
                assoc: 8,
                latency: 14.0,
                chip_shared: false,
            },
            CacheLevel {
                name: "L3",
                bytes: 200 * 1024 * 1024,
                line_bytes: 128,
                assoc: 16,
                latency: 55.0,
                chip_shared: true,
            },
        ],
        mem_latency: 250.0,
        mem_bandwidth_gbs: 170.0,
        tlb_entries: 1024,
        page_bytes: 64 * 1024,
        tlb_miss_penalty: 14.0,
        smt_throughput: [1.0, 1.55, 2.1, 2.5],
        outer_loop_vectorization: true,
        unroll: 4.0,
        prefetch_streams: 16,
        omp: table2_overheads(),
    }
}

/// The paper's POWER8 host (Firestone-class, also 20 cores × SMT8 at
/// 3.0 GHz for the cross-generation comparison): VSX without the POWER9
/// additions — weaker vectorisation, no outer-loop vectorisation.
pub fn power8_host() -> CpuDescriptor {
    CpuDescriptor {
        name: "POWER8",
        core: hetsel_mca::power8(),
        cores: 20,
        smt: 8,
        clock_ghz: 3.0,
        caches: vec![
            CacheLevel {
                name: "L1D",
                bytes: 64 * 1024,
                line_bytes: 128,
                assoc: 8,
                latency: 4.0,
                chip_shared: false,
            },
            CacheLevel {
                name: "L2",
                bytes: 512 * 1024,
                line_bytes: 128,
                assoc: 8,
                latency: 13.0,
                chip_shared: false,
            },
            CacheLevel {
                name: "L3",
                bytes: 160 * 1024 * 1024,
                line_bytes: 128,
                assoc: 8,
                latency: 60.0,
                chip_shared: true,
            },
        ],
        mem_latency: 280.0,
        mem_bandwidth_gbs: 150.0,
        tlb_entries: 1024,
        page_bytes: 64 * 1024,
        tlb_miss_penalty: 14.0,
        smt_throughput: [1.0, 1.5, 2.0, 2.35],
        outer_loop_vectorization: false,
        unroll: 4.0,
        prefetch_streams: 12,
        omp: table2_overheads(),
    }
}

/// An x86 host: dual-socket Xeon Gold 6148 (2 × 20 cores, HT2) — the class
/// of machine the paper could *not* evaluate ("POWER9 is the only viable
/// host architecture ... at the time of writing"). Here a host backend is
/// one descriptor, so the restriction disappears.
pub fn xeon_host() -> CpuDescriptor {
    CpuDescriptor {
        name: "Xeon Gold 6148 (2S)",
        core: hetsel_mca::skylake(),
        cores: 40,
        smt: 2,
        clock_ghz: 2.4,
        caches: vec![
            CacheLevel {
                name: "L1D",
                bytes: 32 * 1024,
                line_bytes: 64,
                assoc: 8,
                latency: 5.0,
                chip_shared: false,
            },
            CacheLevel {
                name: "L2",
                bytes: 1024 * 1024,
                line_bytes: 64,
                assoc: 16,
                latency: 14.0,
                chip_shared: false,
            },
            CacheLevel {
                name: "L3",
                bytes: 2 * 28 * 1024 * 1024,
                line_bytes: 64,
                assoc: 11,
                latency: 50.0,
                chip_shared: true,
            },
        ],
        mem_latency: 230.0,
        mem_bandwidth_gbs: 200.0,
        tlb_entries: 1536,
        page_bytes: 4 * 1024,
        tlb_miss_penalty: 20.0,
        smt_throughput: [1.0, 1.35, 1.35, 1.35],
        outer_loop_vectorization: true,
        unroll: 4.0,
        prefetch_streams: 24,
        omp: OmpOverheads {
            par_startup: 2500.0,
            schedule_static: 8000.0,
            synchronization: 3500.0,
            loop_overhead_per_iter: 4.0,
            fork_per_thread_cycles: 18_000.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        power8_host().validate().unwrap();
        power9_host().validate().unwrap();
        xeon_host().validate().unwrap();
    }

    #[test]
    fn xeon_is_a_different_shape_not_a_reskin() {
        let x = xeon_host();
        let p9 = power9_host();
        assert_eq!(x.max_threads(), 80);
        assert!(x.vector_lanes(4) > p9.vector_lanes(4)); // AVX-512 vs VSX
        assert!(x.page_bytes < p9.page_bytes); // 4K vs 64K pages
        assert!(x.smt_multiplier(2.0) < p9.smt_multiplier(8.0)); // HT2 vs SMT8
    }

    #[test]
    fn paper_thread_counts() {
        // "our experimental machine's 20-core 8-SMT CPU running at full
        // capacity of 160 threads"
        assert_eq!(power9_host().max_threads(), 160);
    }

    #[test]
    fn smt_curve_monotone_sublinear() {
        let p9 = power9_host();
        let mut prev = 0.0;
        for t in [1.0, 2.0, 3.0, 4.0, 6.0, 8.0] {
            let m = p9.smt_multiplier(t);
            assert!(m >= prev);
            assert!(m <= t, "multiplier {m} super-linear at {t}");
            prev = m;
        }
        assert_eq!(p9.smt_multiplier(1.0), 1.0);
        assert!(p9.smt_multiplier(8.0) < 3.0);
    }

    #[test]
    fn vector_lanes_by_element() {
        let p9 = power9_host();
        assert_eq!(p9.vector_lanes(4), 4.0);
        assert_eq!(p9.vector_lanes(8), 2.0);
    }

    #[test]
    fn table2_values() {
        let o = table2_overheads();
        assert_eq!(o.schedule_static, 10154.0);
        assert_eq!(o.synchronization, 4000.0);
        assert_eq!(o.par_startup, 3000.0);
        assert_eq!(o.loop_overhead_per_iter, 4.0);
        assert!(o.fork_per_thread_cycles > 0.0);
    }

    #[test]
    fn p9_vector_story() {
        assert!(power9_host().outer_loop_vectorization);
        assert!(!power8_host().outer_loop_vectorization);
    }
}
