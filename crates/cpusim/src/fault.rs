//! Fault-injection layer over the CPU timing simulator.
//!
//! Wraps [`simulate`] with a seeded [`FaultPlan`]: each
//! call is one *attempt* identified by a draw sequence number. The plan
//! deterministically decides whether the attempt faults (transient or
//! permanent) and how much latency jitter a successful run absorbs —
//! charged to the OpenMP overhead term, which is where a real host's
//! scheduling hiccups land.
//!
//! Under [`FaultPlan::none`] the wrapper is bit-for-bit the plain
//! simulator: no draw is taken and no term is altered.

use crate::arch::CpuDescriptor;
use crate::engine::{simulate, CpuRun};
use hetsel_fault::{DeviceFault, FaultPlan, InjectedFailure};
use hetsel_ir::{Binding, Kernel};

/// The device label CPU faults carry.
pub const CPU_FAULT_DEVICE: &str = "host";

/// As [`simulate`], through a fault plan. `seq` identifies the attempt in
/// the plan's deterministic draw stream (the dispatcher hands out one
/// sequence number per attempt).
///
/// * injected fault → `Err(InjectedFailure::Fault(_))`;
/// * unresolved binding / empty iteration space →
///   `Err(InjectedFailure::Unresolvable)` (not a device fault — breakers
///   must not count it);
/// * success → the plain simulator's run with `jitter_s` added to
///   `overhead_s`.
pub fn simulate_with_faults(
    kernel: &Kernel,
    binding: &Binding,
    cpu: &CpuDescriptor,
    threads: u32,
    plan: &FaultPlan,
    seq: u64,
) -> Result<CpuRun, InjectedFailure> {
    if plan.is_none() {
        return simulate(kernel, binding, cpu, threads).ok_or(InjectedFailure::Unresolvable);
    }
    let draw = plan.draw(seq);
    if let Some(kind) = draw.fault {
        return Err(InjectedFailure::Fault(DeviceFault {
            device: CPU_FAULT_DEVICE,
            kind,
            seq,
        }));
    }
    let mut run = simulate(kernel, binding, cpu, threads).ok_or(InjectedFailure::Unresolvable)?;
    run.overhead_s += draw.jitter_s;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_fault::FaultKind;
    use hetsel_polybench::{find_kernel, Dataset};

    fn gemm() -> (Kernel, Binding) {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Test);
        (k, b)
    }

    #[test]
    fn none_plan_is_bit_identical_to_plain_simulate() {
        let (k, b) = gemm();
        let cpu = crate::power9_host();
        let plain = simulate(&k, &b, &cpu, 160).unwrap();
        for seq in [0, 1, u64::MAX] {
            let wrapped = simulate_with_faults(&k, &b, &cpu, 160, &FaultPlan::none(), seq).unwrap();
            assert_eq!(wrapped.total_s().to_bits(), plain.total_s().to_bits());
            assert_eq!(wrapped.overhead_s.to_bits(), plain.overhead_s.to_bits());
        }
    }

    #[test]
    fn certain_faults_always_fail_with_the_planned_kind() {
        let (k, b) = gemm();
        let cpu = crate::power9_host();
        let plan = FaultPlan::permanent(9, 1.0);
        for seq in 0..20 {
            let err = simulate_with_faults(&k, &b, &cpu, 160, &plan, seq).unwrap_err();
            let fault = err.fault().expect("injected, not unresolvable");
            assert_eq!(fault.kind, FaultKind::Permanent);
            assert_eq!(fault.device, CPU_FAULT_DEVICE);
            assert_eq!(fault.seq, seq);
        }
    }

    #[test]
    fn jitter_is_added_to_overhead_deterministically() {
        let (k, b) = gemm();
        let cpu = crate::power9_host();
        let plain = simulate(&k, &b, &cpu, 160).unwrap();
        let plan = FaultPlan {
            seed: 11,
            transient_prob: 0.0,
            permanent_prob: 0.0,
            max_jitter_s: 1e-3,
        };
        let a = simulate_with_faults(&k, &b, &cpu, 160, &plan, 4).unwrap();
        let b2 = simulate_with_faults(&k, &b, &cpu, 160, &plan, 4).unwrap();
        assert_eq!(a.overhead_s.to_bits(), b2.overhead_s.to_bits());
        let jitter = a.overhead_s - plain.overhead_s;
        assert!((0.0..=1e-3).contains(&jitter), "{jitter}");
        assert_eq!(jitter, plan.draw(4).jitter_s);
    }

    #[test]
    fn unresolved_bindings_are_not_device_faults() {
        let (k, _) = gemm();
        let cpu = crate::power9_host();
        let err = simulate_with_faults(&k, &Binding::new(), &cpu, 160, &FaultPlan::none(), 0)
            .unwrap_err();
        assert_eq!(err, InjectedFailure::Unresolvable);
        // Even under a faulty plan, a lucky (non-faulting) draw on an
        // unresolvable binding reports Unresolvable, not a fault.
        let plan = FaultPlan::transient(1, 0.0).with_jitter(1e-6);
        let err = simulate_with_faults(&k, &Binding::new(), &cpu, 160, &plan, 0).unwrap_err();
        assert_eq!(err, InjectedFailure::Unresolvable);
    }
}
