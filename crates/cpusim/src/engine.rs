//! The CPU timing engine.
//!
//! Per-iteration cycles come from the MCA scheduler fed with the sampled
//! effective load latency; the compiler's unrolling and vectorisation are
//! modelled as schedule transformations (chain-breaking, lane division);
//! OpenMP fork/schedule/join overheads come from the paper's Table II; SMT
//! resource sharing follows a measured-shape throughput curve; and a DRAM
//! roofline bounds memory-hungry kernels.

use crate::arch::CpuDescriptor;
use crate::sampler::{profile, MemoryProfile};
use hetsel_ipda::{analyze, assess, store_sharing_risk, KernelAccessInfo, Schedule, SharingRisk};
use hetsel_ir::{trips, Binding, Kernel};
use hetsel_mca::parallel_iter_cycles_opts;

/// How the kernel's hot loop was vectorised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorMode {
    /// No profitable SIMD schedule found.
    Scalar,
    /// Innermost sequential loop vectorised.
    Inner,
    /// Vectorised across the parallel dimension (outer-loop vectorisation /
    /// straight-line SIMD over the thread's chunk).
    Outer,
}

/// What limited the kernel on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuBound {
    /// Core pipelines / latency.
    Compute,
    /// Chip memory bandwidth.
    Dram,
}

/// Full timing report for one host execution.
#[derive(Debug, Clone)]
pub struct CpuRun {
    /// Kernel name.
    pub kernel: String,
    /// Threads used.
    pub threads: u32,
    /// Effective cycles per parallel iteration (one thread, after
    /// vectorisation, before SMT scaling).
    pub cycles_per_iter: f64,
    /// Compute wall time, seconds.
    pub compute_s: f64,
    /// DRAM roofline wall time, seconds.
    pub dram_s: f64,
    /// Fork/schedule/join overhead, seconds.
    pub overhead_s: f64,
    /// Vectorisation applied.
    pub vector_mode: VectorMode,
    /// SIMD factor achieved (1.0 for scalar).
    pub vector_factor: f64,
    /// Sampled memory profile.
    pub profile: MemoryProfile,
    /// The dominant limit.
    pub bound: CpuBound,
}

impl CpuRun {
    /// End-to-end region time, seconds.
    pub fn total_s(&self) -> f64 {
        self.compute_s.max(self.dram_s) + self.overhead_s
    }
}

/// Dominant element size of the kernel's arrays (bytes).
fn dominant_elem_bytes(kernel: &Kernel) -> u32 {
    kernel
        .arrays
        .iter()
        .map(|a| a.elem_bytes)
        .max()
        .unwrap_or(4)
}

/// Distinct memory streams one thread drives. Accesses to the same array
/// with the same loop-variable coefficients share a stream only when their
/// constant offsets fall in the same cache line — a 3-D stencil's ±k taps
/// share a line, but its ±row taps are separate address sequences the
/// prefetcher must track independently.
fn stream_count(info: &KernelAccessInfo, binding: &Binding, line_bytes: u32) -> u32 {
    let mut sigs = std::collections::BTreeSet::new();
    for a in &info.accesses {
        let sig = match &a.affine {
            Some(aff) => {
                let mut s = format!("a{}", a.array.0);
                for v in aff.loop_vars() {
                    s.push_str(&format!(";{}={}", v, aff.coeff(v)));
                }
                let bucket = aff
                    .offset()
                    .eval(binding)
                    .map(|o| o * i64::from(a.elem_bytes) / i64::from(line_bytes))
                    .unwrap_or(0);
                s.push_str(&format!(";o={bucket}"));
                s
            }
            None => format!("irr{}/{}", a.array.0, a.enclosing.len()),
        };
        sigs.insert(sig);
    }
    sigs.len() as u32
}

/// Effective fraction of peak memory bandwidth: when the active streams per
/// core (streams per thread × SMT threads) exceed the prefetcher's
/// capacity, sustained bandwidth collapses toward demand-miss throughput.
fn bandwidth_efficiency(
    cpu: &CpuDescriptor,
    streams_per_thread: u32,
    threads_per_core: f64,
) -> f64 {
    let active = f64::from(streams_per_thread) * threads_per_core.max(1.0);
    let cap = f64::from(cpu.prefetch_streams);
    if active <= cap {
        1.0
    } else {
        (cap / active).sqrt().clamp(0.35, 1.0)
    }
}

/// Decides the vector schedule for the kernel's hot statements.
fn vector_decision(kernel: &Kernel, binding: &Binding, cpu: &CpuDescriptor) -> (VectorMode, f64) {
    let info = analyze(kernel);
    let elem = dominant_elem_bytes(kernel);
    let lanes = cpu.vector_lanes(elem);
    let core = &cpu.core;

    // The hot statements are the deepest ones; find their innermost loop.
    let max_depth = info
        .accesses
        .iter()
        .map(|a| a.enclosing.len())
        .max()
        .unwrap_or(0);
    let hot = info
        .accesses
        .iter()
        .filter(|a| a.enclosing.len() == max_depth)
        .collect::<Vec<_>>();
    if hot.is_empty() {
        return (VectorMode::Scalar, 1.0);
    }
    let innermost = hot[0].enclosing.last().copied();
    let Some((inner_var, inner_parallel)) = innermost else {
        return (VectorMode::Scalar, 1.0);
    };

    let vec_info = assess(kernel, &info, binding);

    // Inner-loop vectorisation of a sequential loop.
    if !inner_parallel {
        if let Some(vi) = vec_info.get(&inner_var) {
            if vi.legal {
                let mut f = lanes * core.vector_efficiency;
                if vi.has_reduction {
                    f *= core.vector_reduction_efficiency;
                }
                return (VectorMode::Inner, f.max(1.0));
            }
        }
    }

    // Outer-loop vectorisation: every hot access must be unit-stride or
    // uniform across the innermost *parallel* dimension.
    let thread_ok = hot.iter().all(|a| {
        matches!(
            a.thread_stride.resolve(binding),
            Some(0) | Some(1) | Some(-1)
        )
    });
    if thread_ok {
        if inner_parallel {
            // Straight-line body: ordinary SIMD over the thread's chunk,
            // available on both generations.
            let f = lanes * core.vector_efficiency;
            return (VectorMode::Outer, f.max(1.0));
        }
        if cpu.outer_loop_vectorization {
            // Unroll-and-jam the parallel loop over the sequential inner
            // loop: each lane keeps its own accumulator, so reductions cost
            // nothing extra, but the jam carries some overhead.
            let f = lanes * core.vector_efficiency * 0.8;
            return (VectorMode::Outer, f.max(1.0));
        }
    }
    (VectorMode::Scalar, 1.0)
}

/// Simulates one host execution of the kernel with `threads` OpenMP threads
/// under the default `schedule(static)` block schedule.
/// Returns `None` if the binding leaves the kernel unresolved.
///
/// ```
/// use hetsel_ir::{cexpr, Binding, KernelBuilder, Transfer};
///
/// let mut kb = KernelBuilder::new("axpy");
/// let x = kb.array("x", 4, &["n".into()], Transfer::In);
/// let y = kb.array("y", 4, &["n".into()], Transfer::InOut);
/// let i = kb.parallel_loop(0, "n");
/// let rhs = cexpr::add(cexpr::mul(cexpr::scalar("a"), kb.load(x, &[i.into()])),
///                      kb.load(y, &[i.into()]));
/// kb.store(y, &[i.into()], rhs);
/// kb.end_loop();
/// let kernel = kb.finish();
///
/// let cpu = hetsel_cpusim::power9_host();
/// let run = hetsel_cpusim::simulate(&kernel, &Binding::new().with("n", 1 << 20), &cpu, 160)
///     .expect("binding is complete");
/// assert!(run.total_s() > 0.0);
/// assert_eq!(run.threads, 160);
/// ```
pub fn simulate(
    kernel: &Kernel,
    binding: &Binding,
    cpu: &CpuDescriptor,
    threads: u32,
) -> Option<CpuRun> {
    simulate_with_schedule(kernel, binding, cpu, threads, Schedule::Block)
}

/// As [`simulate`], with an explicit OpenMP loop schedule. A cyclic
/// schedule (`schedule(static, chunk)`) interleaves threads over the
/// iteration space: small-chunk cyclic schedules put adjacent iterations'
/// stores on different threads, and IPDA's inter-thread stride analysis
/// diagnoses the resulting **false sharing** (paper §II.C) — charged here
/// as a coherence round-trip per affected store.
pub fn simulate_with_schedule(
    kernel: &Kernel,
    binding: &Binding,
    cpu: &CpuDescriptor,
    threads: u32,
    schedule: Schedule,
) -> Option<CpuRun> {
    debug_assert_eq!(cpu.validate(), Ok(()));
    let p = kernel.parallel_iterations(binding)?;
    if p == 0 || threads == 0 {
        return None;
    }
    let threads_used = u64::from(threads).min(p).max(1) as u32;
    let chunk = p.div_ceil(u64::from(threads_used));

    let prof = profile(kernel, binding, cpu, threads_used)?;
    let tc = trips::resolve(kernel, binding);
    let trip_fn = |l: &hetsel_ir::Loop| tc.of(l);

    // MCA per-iteration cycles with the sampled effective load latency:
    // once with the reduction chains carried (in-order bound), once broken
    // (fully unrolled bound); the compiled code sits at the unroll point.
    let lat = Some(prof.avg_load_latency);
    let cpi_serial = parallel_iter_cycles_opts(kernel, &cpu.core, &trip_fn, lat, true);
    let cpi_tput = parallel_iter_cycles_opts(kernel, &cpu.core, &trip_fn, lat, false);
    let base_cpi = cpi_tput.max(cpi_serial / cpu.unroll);

    let (vector_mode, vector_factor) = vector_decision(kernel, binding, cpu);
    let tlb_cycles_per_iter = prof.accesses_per_iter * prof.tlb_miss_ratio * cpu.tlb_miss_penalty;

    // False sharing under cyclic schedules: each store whose sharing window
    // is below a cache line costs a cross-core coherence round-trip per
    // execution (invalidate + refetch, ~2x memory latency).
    let line = cpu.caches.first().map(|c| c.line_bytes).unwrap_or(128);
    let info = analyze(kernel);
    let mut false_sharing_per_iter = 0.0;
    for a in info.accesses.iter().filter(|a| a.is_store) {
        if store_sharing_risk(a, binding, schedule, line, chunk) == SharingRisk::FalseSharing {
            let mut weight = 1.0;
            for (v, parallel) in &a.enclosing {
                if !*parallel {
                    weight *= tc.get(*v).max(0.0);
                }
            }
            false_sharing_per_iter += weight * 2.0 * cpu.mem_latency;
        }
    }
    let cycles_per_iter = base_cpi / vector_factor + tlb_cycles_per_iter + false_sharing_per_iter;

    // SMT: more threads per core raise core throughput sub-linearly.
    let threads_per_core = f64::from(threads_used) / f64::from(cpu.cores);
    let smt_slowdown = if threads_per_core > 1.0 {
        threads_per_core / cpu.smt_multiplier(threads_per_core)
    } else {
        1.0
    };

    let thread_cycles = cycles_per_iter * chunk as f64 * smt_slowdown;
    let compute_s = thread_cycles / (cpu.clock_ghz * 1e9);
    let streams = stream_count(&info, binding, line);
    let bw_eff = bandwidth_efficiency(cpu, streams, threads_per_core);
    let dram_s = p as f64 * prof.dram_bytes_per_iter / (cpu.mem_bandwidth_gbs * 1e9 * bw_eff);
    let o = &cpu.omp;
    let overhead_s = (o.par_startup
        + o.schedule_static
        + o.synchronization
        + o.fork_per_thread_cycles * f64::from(threads_used))
        / (cpu.clock_ghz * 1e9);

    let bound = if dram_s > compute_s {
        CpuBound::Dram
    } else {
        CpuBound::Compute
    };
    Some(CpuRun {
        kernel: kernel.name.clone(),
        threads: threads_used,
        cycles_per_iter,
        compute_s,
        dram_s,
        overhead_s,
        vector_mode,
        vector_factor,
        profile: prof,
        bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{power8_host, power9_host};
    use hetsel_ipda::Schedule;
    use hetsel_polybench::{find_kernel, Dataset};

    fn run(name: &str, ds: Dataset, cpu: &CpuDescriptor, threads: u32) -> CpuRun {
        let (k, binding) = find_kernel(name).unwrap();
        simulate(&k, &binding(ds), cpu, threads).unwrap()
    }

    #[test]
    fn gemm_times_are_plausible() {
        let r = run("gemm", Dataset::Benchmark, &power9_host(), 160);
        // 1.77e12 FMAs of naive (untiled) f32 GEMM on a 20-core 3 GHz
        // machine: the column walk of B makes it memory/TLB-heavy, so
        // anywhere from seconds to low hundreds of seconds is credible.
        assert!(r.total_s() > 1.0 && r.total_s() < 200.0, "{}", r.total_s());
    }

    #[test]
    fn more_threads_is_faster_but_sublinear() {
        let t4 = run("gemm", Dataset::Test, &power9_host(), 4);
        let t160 = run("gemm", Dataset::Test, &power9_host(), 160);
        assert!(t160.total_s() < t4.total_s());
        // 40x threads cannot give 40x: SMT8 on 20 cores.
        assert!(t160.total_s() > t4.total_s() / 40.0);
    }

    #[test]
    fn gemm_vectorizes_outer_on_p9_not_p8() {
        let p9 = run("gemm", Dataset::Test, &power9_host(), 160);
        // GEMM's inner k-loop walks B with stride n: inner vectorisation is
        // illegal, but every access is unit/uniform across j.
        assert_eq!(p9.vector_mode, VectorMode::Outer);
        assert!(p9.vector_factor > 2.0);
        let p8 = run("gemm", Dataset::Test, &power8_host(), 160);
        assert_eq!(p8.vector_mode, VectorMode::Scalar);
    }

    #[test]
    fn row_dot_products_vectorize_inner_everywhere() {
        // atax.k1 / mvt.k1: unit-stride inner reduction.
        for cpu in [power8_host(), power9_host()] {
            let r = run("mvt.k1", Dataset::Test, &cpu, 160);
            assert_eq!(r.vector_mode, VectorMode::Inner, "{}", cpu.name);
        }
    }

    #[test]
    fn p9_beats_p8_on_corr_kernels() {
        // The paper's CORR flip: POWER9's vector support makes the host
        // dramatically better on these reduction kernels.
        let p8 = run("corr.corr", Dataset::Benchmark, &power8_host(), 160);
        let p9 = run("corr.corr", Dataset::Benchmark, &power9_host(), 160);
        assert!(
            p9.total_s() < p8.total_s() * 0.7,
            "p9 {} vs p8 {}",
            p9.total_s(),
            p8.total_s()
        );
    }

    #[test]
    fn conv2d_is_memory_bound_at_160_threads() {
        let r = run("2dconv", Dataset::Benchmark, &power9_host(), 160);
        assert_eq!(r.bound, CpuBound::Dram);
        // Milliseconds, not seconds.
        assert!(r.total_s() < 0.5, "{}", r.total_s());
    }

    #[test]
    fn overhead_dominates_nothing_substantial() {
        let r = run("gemm", Dataset::Benchmark, &power9_host(), 160);
        assert!(r.overhead_s < r.total_s() * 0.01);
    }

    #[test]
    fn unresolved_binding_returns_none() {
        let (k, _) = find_kernel("gemm").unwrap();
        assert!(simulate(&k, &Binding::new(), &power9_host(), 4).is_none());
    }

    #[test]
    fn cyclic_unit_chunk_pays_false_sharing() {
        // A store-only kernel: under schedule(static,1) adjacent f32 stores
        // from different threads share a 128B line; under the block
        // schedule they do not.
        use hetsel_ir::{cexpr, KernelBuilder, Transfer};
        let mut kb = KernelBuilder::new("fs");
        let a = kb.array("a", 4, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.store(a, &[i.into()], cexpr::lit(1.0));
        kb.end_loop();
        let k = kb.finish();
        let b = Binding::new().with("n", 1 << 20);
        let cpu = power9_host();
        let block = simulate_with_schedule(&k, &b, &cpu, 160, Schedule::Block).unwrap();
        let cyclic =
            simulate_with_schedule(&k, &b, &cpu, 160, Schedule::Cyclic { chunk: 1 }).unwrap();
        assert!(
            cyclic.compute_s > block.compute_s * 3.0,
            "cyclic {} vs block {}",
            cyclic.compute_s,
            block.compute_s
        );
        // A line-sized chunk removes the sharing.
        let chunk32 =
            simulate_with_schedule(&k, &b, &cpu, 160, Schedule::Cyclic { chunk: 32 }).unwrap();
        assert!((chunk32.compute_s - block.compute_s).abs() / block.compute_s < 0.2);
    }

    #[test]
    fn threads_capped_by_iterations() {
        let (k, binding) = find_kernel("atax.k1").unwrap();
        let r = simulate(&k, &binding(Dataset::Mini), &power9_host(), 160).unwrap();
        assert_eq!(r.threads, 64); // Mini has only 64 parallel iterations
    }
}
