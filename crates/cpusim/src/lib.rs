//! # hetsel-cpusim — a multicore CPU timing simulator
//!
//! The stand-in for the paper's POWER8/POWER9 hosts: where the paper
//! *measures* OpenMP region time on hardware, this crate *simulates* it,
//! producing the "actual" CPU side of every model-vs-actual comparison.
//!
//! The simulator deliberately models what the paper's analytical CPU model
//! (Liao/Chapman + LLVM-MCA) abstracts away, so that model error is
//! meaningful:
//!
//! * a trace-driven **cache hierarchy and TLB** ([`sampler`]) fed with the
//!   real addresses of a sampled thread chunk — MCA has "a lack of a cache
//!   hierarchy and memory type model" (paper, Section IV.A.1);
//! * compiler **unrolling and vectorisation** as schedule transformations,
//!   including POWER9's outer-loop vectorisation (the CORR story);
//! * **SMT throughput sharing** across the 8 hardware threads per core;
//! * a chip **DRAM bandwidth roofline**.
//!
//! Per-iteration pipeline behaviour still comes from the same `hetsel-mca`
//! engine the model uses — the simulator just feeds it measured effective
//! latencies instead of a flat L1 number.

#![warn(missing_docs)]

pub mod arch;
pub mod cache;
pub mod calibrate;
pub mod engine;
pub mod fault;
pub mod sampler;

pub use arch::{
    power8_host, power9_host, table2_overheads, xeon_host, CacheLevel, CpuDescriptor, OmpOverheads,
};
pub use cache::{Cache, Hierarchy, Tlb};
pub use calibrate::{calibrate, CalibratedOverheads};
pub use engine::{simulate, simulate_with_schedule, CpuBound, CpuRun, VectorMode};
pub use fault::simulate_with_faults;
pub use hetsel_ipda::Schedule;
pub use sampler::{profile, MemoryProfile};
