//! EPCC-style overhead calibration against the simulated host.
//!
//! The paper obtains its Table II constants by running the EPCC OpenMP
//! micro-benchmark suite on the real machine. This module closes the same
//! loop against the simulator: it constructs overhead-dominated
//! micro-kernels, "measures" them at several thread counts and iteration
//! counts, and fits the constants a model should use — so the analytical
//! model's parameters can always be re-derived from the platform they are
//! supposed to describe, instead of drifting.

use crate::arch::CpuDescriptor;
use crate::engine::simulate;
use hetsel_ir::{cexpr, Binding, Kernel, KernelBuilder, Transfer};

/// Constants recovered by the calibration run (cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedOverheads {
    /// Fixed region overhead at zero threads: startup + schedule + join.
    pub fixed_cycles: f64,
    /// Marginal cost per additional thread (fork/join scaling).
    pub fork_per_thread_cycles: f64,
    /// Marginal cost per parallel iteration of a trivial body.
    pub per_iter_cycles: f64,
}

/// A micro-kernel in the EPCC spirit: a parallel loop whose body is one
/// store — all overhead, almost no work.
fn micro_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("epcc.parallel_for");
    let a = kb.array("a", 4, &["n".into()], Transfer::Alloc);
    let i = kb.parallel_loop(0, "n");
    kb.store(a, &[i.into()], cexpr::lit(1.0));
    kb.end_loop();
    kb.finish()
}

/// Least-squares slope and intercept of `y` over `x`.
fn fit_line(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, sy / n);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

/// Runs the calibration: measures the micro-kernel over thread counts (to
/// fit the fork scaling) and over iteration counts (to fit the
/// per-iteration overhead), returning constants in cycles.
pub fn calibrate(cpu: &CpuDescriptor) -> CalibratedOverheads {
    let k = micro_kernel();
    let hz = cpu.clock_ghz * 1e9;

    // Thread sweep at a fixed, overhead-dominated size. Iterations must be
    // at least the largest thread count so every thread participates.
    let n = i64::from(cpu.max_threads());
    let b = Binding::new().with("n", n);
    let mut pts = Vec::new();
    for t in [
        1u32,
        2,
        4,
        8,
        16,
        32,
        cpu.max_threads() / 2,
        cpu.max_threads(),
    ] {
        let r = simulate(&k, &b, cpu, t).expect("micro-kernel simulates");
        pts.push((f64::from(t), r.total_s() * hz));
    }
    let (fork_per_thread, fixed) = fit_line(&pts);

    // Iteration sweep at one thread: slope is the per-iteration cost of
    // the trivial body (the model's Loop_overhead_per_iter analogue).
    let mut pts = Vec::new();
    for n in [256i64, 1024, 4096, 16384, 65536] {
        let b = Binding::new().with("n", n);
        let r = simulate(&k, &b, cpu, 1).expect("micro-kernel simulates");
        pts.push((n as f64, r.total_s() * hz));
    }
    let (per_iter, _) = fit_line(&pts);

    CalibratedOverheads {
        fixed_cycles: fixed,
        fork_per_thread_cycles: fork_per_thread,
        per_iter_cycles: per_iter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{power8_host, power9_host};

    #[test]
    fn fit_line_recovers_exact_lines() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (slope, intercept) = fit_line(&pts);
        assert!((slope - 2.0).abs() < 1e-9);
        assert!((intercept - 3.0).abs() < 1e-9);
    }

    /// The EPCC loop closes: constants measured against the simulator match
    /// the constants the simulator was configured with (and which the
    /// analytical model uses).
    #[test]
    fn calibration_recovers_configured_overheads() {
        for cpu in [power9_host(), power8_host()] {
            let c = calibrate(&cpu);
            let o = &cpu.omp;
            let configured_fixed = o.par_startup + o.schedule_static + o.synchronization;
            assert!(
                (c.fork_per_thread_cycles - o.fork_per_thread_cycles).abs()
                    < 0.15 * o.fork_per_thread_cycles,
                "{}: fork/thread {} vs configured {}",
                cpu.name,
                c.fork_per_thread_cycles,
                o.fork_per_thread_cycles
            );
            assert!(
                (c.fixed_cycles - configured_fixed).abs() < configured_fixed,
                "{}: fixed {} vs configured {}",
                cpu.name,
                c.fixed_cycles,
                configured_fixed
            );
            // Per-iteration cost of a one-store body: positive, small.
            assert!(
                c.per_iter_cycles > 0.0 && c.per_iter_cycles < 100.0,
                "{}",
                c.per_iter_cycles
            );
        }
    }

    #[test]
    fn degenerate_fit_does_not_panic() {
        let (s, i) = fit_line(&[(1.0, 5.0), (1.0, 7.0)]);
        assert_eq!(s, 0.0);
        assert_eq!(i, 6.0);
    }
}
