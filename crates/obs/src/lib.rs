//! # hetsel-obs — decision telemetry for the offloading framework
//!
//! The paper's selling point is that the dispatch decision is cheap enough
//! to take at every region launch; this crate makes every such decision
//! *observable* without giving that cheapness back. Five independent layers:
//!
//! * [`trace`] — a dependency-free structured tracing facade: named spans
//!   with typed key/value fields, dispatched to a pluggable process-wide
//!   [`Subscriber`] (null, stderr pretty-printer, bounded in-memory ring
//!   buffer, JSONL writer). When no subscriber is installed a span is one
//!   relaxed atomic load — cold paths annotate freely, hot paths stay hot.
//! * [`metrics`] — a process-wide registry of named [`Counter`]s,
//!   [`Gauge`]s and log-scale latency [`Histogram`]s (p50/p95/p99).
//!   Counters and gauges are always live (one relaxed RMW each); duration
//!   timers are gated behind [`metrics::set_timing`] so the instrumented
//!   cache-hit decision path never pays for a clock read it did not ask for.
//! * [`flight`] — the decision flight recorder: a fixed-capacity,
//!   lock-free ring of structured [`DecisionEvent`]s (verdicts, dispatch
//!   completions, fallbacks, breaker transitions), gated behind
//!   [`flight::set_flight_recording`] with the same one-relaxed-load
//!   disabled path.
//! * [`mod@accuracy`] — the accuracy observatory: per-`(region, device)`
//!   streaming predicted-vs-observed error statistics (Welford
//!   mean/variance, signed bias, misprediction-flip counter).
//! * [`export`] — the ops surface: Prometheus-style text exposition with
//!   a validator, versioned JSONL snapshots of all of the above, and
//!   snapshot diffing.
//!
//! Metric names follow the dotted `hetsel.<crate>.<name>` convention
//! documented in DESIGN.md §"Observability".

#![warn(missing_docs)]

pub mod accuracy;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod trace;

pub use accuracy::{accuracy, AccuracyObservatory, AccuracyRow};
pub use export::{
    diff_snapshots, jsonl_snapshot, prometheus_exposition, validate_exposition, SnapshotDiff,
    SNAPSHOT_VERSION,
};
pub use flight::{
    flight_recorder, flight_recording_enabled, record_event, set_flight_recording, DecisionEvent,
    EventKind, FlightRecorder,
};
pub use metrics::{
    registry, shard_metric_name, Counter, Gauge, HistTimer, Histogram, HistogramSummary,
    MetricsSnapshot, Registry,
};
pub use trace::{
    set_subscriber, span, span_with, subscriber_installed, tracing_enabled, Field, FieldValue,
    JsonlSubscriber, NullSubscriber, RingBufferSubscriber, SpanGuard, SpanRecord, StderrSubscriber,
    Subscriber,
};

/// Escapes a string for inclusion in a JSON document (used by both the
/// JSONL subscriber and the metrics snapshot renderer).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Caches a registry handle in a function-local static so hot paths touch
/// the registry's lock exactly once per metric per process.
///
/// ```
/// let hits = hetsel_obs::static_counter!("hetsel.example.hits");
/// hits.inc();
/// ```
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// As [`static_counter!`] for histograms.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// As [`static_counter!`] for gauges.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::registry().gauge($name))
    }};
}
