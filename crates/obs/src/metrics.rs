//! The process-wide metrics registry.
//!
//! Three instrument kinds, all lock-free after creation:
//!
//! * [`Counter`] — monotone `u64` (decisions taken, cache hits, fallbacks);
//! * [`Gauge`] — last-write-wins `i64` (cache occupancy, capacities);
//! * [`Histogram`] — 64 power-of-two buckets over `u64` nanosecond samples,
//!   with count/sum/min/max and p50/p95/p99 estimates. A value in bucket
//!   `b` satisfies `2^b <= v < 2^(b+1)`, so a reported percentile is an
//!   upper bound within 2× of the true order statistic.
//!
//! Counters and gauges are always live. Duration *timers* — the things
//! that need a clock read — are additionally gated behind [`set_timing`],
//! so hot paths (the cache-hit decision) pay nothing for histograms unless
//! telemetry was explicitly requested.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use std::time::Instant;

use crate::json_escape;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and per-run dumps).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// Number of power-of-two buckets: covers the full `u64` range.
const BUCKETS: usize = 64;

/// A log-scale histogram over `u64` samples (nanoseconds by convention).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Folds one sample in. Zero samples land in the first bucket.
    pub fn record(&self, value: u64) {
        let bucket = (value | 1).ilog2() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a duration timer that records into this histogram when
    /// dropped — but only if [`timing_enabled`]; otherwise the timer is
    /// inert and no clock is read.
    pub fn start_timer(self: &Arc<Histogram>) -> HistTimer {
        HistTimer {
            start: timing_enabled().then(|| (Instant::now(), Arc::clone(self))),
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated `p`-th percentile (0 < p <= 100): the upper bound of the
    /// bucket holding that order statistic, clamped to the observed max.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if b + 1 >= BUCKETS {
                    u64::MAX
                } else {
                    (1u64 << (b + 1)) - 1
                };
                return upper.min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A consistent point-in-time summary.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time histogram digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th percentile estimate.
    pub p95: u64,
    /// 99th percentile estimate.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// RAII duration timer for a histogram; see [`Histogram::start_timer`].
pub struct HistTimer {
    start: Option<(Instant, Arc<Histogram>)>,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.start.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Gate for duration timers (default off).
static TIMING: AtomicBool = AtomicBool::new(false);

/// Enables or disables duration timers process-wide. Counters and gauges
/// are unaffected (always live).
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::Release);
}

/// True while duration timers read the clock.
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// The registry: name → instrument, get-or-create. Handles are `Arc`s, so
/// hot paths resolve a name once (see [`static_counter!`](crate::static_counter))
/// and then touch only the atomic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Registry lookups recover from lock poisoning
/// (`PoisonError::into_inner`): the maps only ever gain complete entries
/// under the write lock and the instruments themselves are atomics, so a
/// panicked holder cannot leave torn state — and one dead thread must not
/// cascade panics into every later snapshot or export.
fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().unwrap_or_else(PoisonError::into_inner).get(name) {
        return Arc::clone(found);
    }
    let mut w = map.write().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// A point-in-time snapshot of every instrument, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Zeroes every instrument without invalidating outstanding handles.
    pub fn reset(&self) {
        for c in self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            h.reset();
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// The canonical name of one stripe's instrument in a sharded structure:
/// `<base>.<index>.<leaf>`, e.g.
/// `shard_metric_name("hetsel.core.cache.shard", 3, "hits")` →
/// `"hetsel.core.cache.shard.3.hits"`. Keeping the scheme in one place
/// means every sharded subsystem names its per-shard metrics the same way
/// and dashboards can glob on `<base>.*`.
pub fn shard_metric_name(base: &str, index: usize, leaf: &str) -> String {
    format!("{base}.{index}.{leaf}")
}

/// The canonical name of a per-device instrument: `<base>.<device>`, e.g.
/// `device_metric_name("hetsel.core.decisions", "v100")` →
/// `"hetsel.core.decisions.v100"`. The `device` segment must be the
/// fleet's interned device label — routing every per-device metric name
/// through this one helper (and every label through the fleet) is what
/// keeps metric names and serialized documents agreeing on a device's
/// spelling.
pub fn device_metric_name(base: &str, device: &str) -> String {
    format!("{base}.{device}")
}

/// The canonical name of a per-device instrument with a leaf:
/// `<base>.<device>.<leaf>`, e.g.
/// `device_leaf_metric_name("hetsel.core.breaker", "v100", "state")` →
/// `"hetsel.core.breaker.v100.state"`.
pub fn device_leaf_metric_name(base: &str, device: &str, leaf: &str) -> String {
    format!("{base}.{device}.{leaf}")
}

/// A rendered snapshot of the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` per histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Compact single-object JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_escape(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            ));
        }
        out.push_str("}}");
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (k, v) in &self.counters {
                writeln!(f, "  {k:<48} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (k, v) in &self.gauges {
                writeln!(f, "  {k:<48} {v}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms (ns):")?;
            for (k, h) in &self.histograms {
                writeln!(
                    f,
                    "  {k:<48} n={} mean={:.0} p50={} p95={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("hetsel.test.c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("hetsel.test.c").get(), 5, "same instrument");
        let g = r.gauge("hetsel.test.g");
        g.set(-3);
        g.add(5);
        assert_eq!(g.get(), 2);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // A power-of-two bucket bounds the true order statistic within 2x.
        assert!(s.p50 >= 500 && s.p50 <= 1000, "p50={}", s.p50);
        assert!(s.p95 >= 950 && s.p95 <= 1000, "p95={}", s.p95);
        assert!(s.p99 >= 990 && s.p99 <= 1000, "p99={}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn histogram_edge_values() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0, "empty histogram");
        h.record(0);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert!(s.p50 <= s.max);
    }

    #[test]
    fn snapshot_renders_json_and_text() {
        let r = Registry::new();
        r.counter("hetsel.test.snap").add(7);
        r.gauge("hetsel.test.level").set(3);
        r.histogram("hetsel.test.lat").record(100);
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"hetsel.test.snap\":7"));
        assert!(json.contains("\"hetsel.test.level\":3"));
        assert!(json.contains("\"count\":1"));
        let text = snap.to_string();
        assert!(text.contains("hetsel.test.snap"));
        assert!(text.contains("histograms"));
    }

    #[test]
    fn shard_metric_names_follow_the_convention() {
        assert_eq!(
            shard_metric_name("hetsel.core.cache.shard", 0, "hits"),
            "hetsel.core.cache.shard.0.hits"
        );
        let r = Registry::new();
        r.gauge(&shard_metric_name("hetsel.test.shard", 7, "len"))
            .set(3);
        assert_eq!(r.gauge("hetsel.test.shard.7.len").get(), 3);
    }

    #[test]
    fn device_metric_names_follow_the_convention() {
        assert_eq!(
            device_metric_name("hetsel.core.decisions", "v100"),
            "hetsel.core.decisions.v100"
        );
        assert_eq!(
            device_leaf_metric_name("hetsel.core.breaker", "gpu", "state"),
            "hetsel.core.breaker.gpu.state"
        );
        let r = Registry::new();
        r.counter(&device_metric_name("hetsel.test.decisions", "k80"))
            .inc();
        assert_eq!(r.counter("hetsel.test.decisions.k80").get(), 1);
    }

    #[test]
    fn poisoned_registry_still_snapshots_and_creates() {
        let r = Registry::new();
        r.counter("hetsel.test.poison.hits").inc();
        // Poison every map by dying while holding its write lock.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _c = r.counters.write().unwrap();
            panic!("holder dies");
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = r.gauges.write().unwrap();
            panic!("holder dies");
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _h = r.histograms.write().unwrap();
            panic!("holder dies");
        }));
        assert!(r.counters.is_poisoned());
        // snapshot, get-or-create, and reset all keep working.
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("hetsel.test.poison.hits".to_string(), 1)]
        );
        r.counter("hetsel.test.poison.more").inc();
        r.gauge("hetsel.test.poison.depth").set(3);
        r.histogram("hetsel.test.poison.ns").record(10);
        assert_eq!(r.snapshot().counters.len(), 2);
        r.reset();
        assert_eq!(r.counter("hetsel.test.poison.hits").get(), 0);
    }

    #[test]
    fn timer_gated_on_timing_flag() {
        let h = Arc::new(Histogram::new());
        // Default off in unit scope unless another test enabled it; force.
        set_timing(false);
        drop(h.start_timer());
        assert_eq!(h.count(), 0);
        set_timing(true);
        drop(h.start_timer());
        assert_eq!(h.count(), 1);
        set_timing(false);
    }
}
