//! The exportable ops surface: Prometheus-style text exposition, versioned
//! JSONL snapshots, and snapshot diffing.
//!
//! Everything here renders from point-in-time values ([`MetricsSnapshot`],
//! drained [`DecisionEvent`]s, [`AccuracyRow`]s) so an exporter thread can
//! serve scrapes without touching any hot path. Formats:
//!
//! * **Exposition** — one `# TYPE` comment per metric followed by its
//!   samples, with the crate's dotted names mapped onto the Prometheus
//!   grammar (`hetsel.core.cache.hit` → `hetsel_core_cache_hit`).
//!   Histograms surface as summaries (`{quantile="…"}`, `_sum`, `_count`).
//!   [`validate_exposition`] re-parses the text and is what CI runs.
//! * **JSONL snapshots** — [`jsonl_snapshot`] emits one self-describing
//!   line per section (`metrics`, `flight`, `accuracy`), each carrying the
//!   schema version [`SNAPSHOT_VERSION`] and a caller-supplied tag, so a
//!   log collector can ship them and a reader can dispatch on `kind`.
//! * **Diffing** — [`diff_snapshots`] reports counter/gauge deltas and
//!   added/removed instruments between two snapshots (what changed during
//!   a run, without assuming the registry started empty).

use crate::flight::DecisionEvent;
use crate::json_escape;
use crate::metrics::MetricsSnapshot;
use crate::AccuracyRow;

/// Schema version stamped on every JSONL snapshot line.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Maps a dotted metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other invalid characters become
/// underscores, and a leading digit is prefixed.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        let valid = valid && !(i == 0 && c.is_ascii_digit());
        if valid {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders a [`MetricsSnapshot`] as Prometheus-style text exposition.
pub fn prometheus_exposition(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    out
}

/// Checks that `text` is well-formed exposition as produced by
/// [`prometheus_exposition`]: every sample line parses as
/// `name[{labels}] value`, its metric was declared by a preceding
/// `# TYPE` line, and names obey the Prometheus grammar. Returns the
/// number of sample lines on success.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {}: TYPE without a name", lineno + 1))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {}: TYPE without a kind", lineno + 1))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("line {}: unknown TYPE kind {kind:?}", lineno + 1));
            }
            if !valid_prom_name(name) {
                return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
            }
            declared.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (HELP etc.) are fine
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: sample without a value", lineno + 1))?;
        value_part
            .parse::<f64>()
            .map_err(|_| format!("line {}: non-numeric value {value_part:?}", lineno + 1))?;
        let base = name_part.split('{').next().unwrap_or(name_part);
        if !valid_prom_name(base) {
            return Err(format!("line {}: invalid sample name {base:?}", lineno + 1));
        }
        let declared_for = declared.iter().any(|d| {
            base == d
                || base
                    .strip_prefix(d.as_str())
                    .is_some_and(|suffix| matches!(suffix, "_sum" | "_count" | "_bucket"))
        });
        if !declared_for {
            return Err(format!(
                "line {}: sample {base:?} has no preceding # TYPE declaration",
                lineno + 1
            ));
        }
        samples += 1;
    }
    Ok(samples)
}

fn valid_prom_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One JSONL line carrying a metrics snapshot.
pub fn jsonl_metrics_line(tag: &str, snap: &MetricsSnapshot) -> String {
    format!(
        "{{\"v\":{SNAPSHOT_VERSION},\"kind\":\"metrics\",\"tag\":\"{}\",\"metrics\":{}}}",
        json_escape(tag),
        snap.to_json()
    )
}

/// One JSONL line carrying a flight-recorder drain.
pub fn jsonl_flight_line(tag: &str, events: &[DecisionEvent]) -> String {
    let body: Vec<String> = events.iter().map(DecisionEvent::to_json).collect();
    format!(
        "{{\"v\":{SNAPSHOT_VERSION},\"kind\":\"flight\",\"tag\":\"{}\",\"events\":[{}]}}",
        json_escape(tag),
        body.join(",")
    )
}

/// One JSONL line carrying an accuracy-table snapshot.
pub fn jsonl_accuracy_line(tag: &str, rows: &[AccuracyRow]) -> String {
    let body: Vec<String> = rows.iter().map(AccuracyRow::to_json).collect();
    format!(
        "{{\"v\":{SNAPSHOT_VERSION},\"kind\":\"accuracy\",\"tag\":\"{}\",\"rows\":[{}]}}",
        json_escape(tag),
        body.join(",")
    )
}

/// The full versioned snapshot: three JSONL lines (`metrics`, `flight`,
/// `accuracy`), each independently parseable.
pub fn jsonl_snapshot(
    tag: &str,
    snap: &MetricsSnapshot,
    events: &[DecisionEvent],
    rows: &[AccuracyRow],
) -> String {
    format!(
        "{}\n{}\n{}\n",
        jsonl_metrics_line(tag, snap),
        jsonl_flight_line(tag, events),
        jsonl_accuracy_line(tag, rows)
    )
}

/// What changed between two [`MetricsSnapshot`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDiff {
    /// Counter deltas (`after − before`) for counters present in both,
    /// nonzero deltas only.
    pub counter_deltas: Vec<(String, i64)>,
    /// Gauge deltas for gauges present in both, nonzero only.
    pub gauge_deltas: Vec<(String, i64)>,
    /// Instrument names (any kind) present only in `after`.
    pub added: Vec<String>,
    /// Instrument names present only in `before`.
    pub removed: Vec<String>,
    /// Histogram count deltas for histograms present in both, nonzero only.
    pub histogram_count_deltas: Vec<(String, i64)>,
}

impl SnapshotDiff {
    /// True when the two snapshots were identical.
    pub fn is_empty(&self) -> bool {
        self.counter_deltas.is_empty()
            && self.gauge_deltas.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
            && self.histogram_count_deltas.is_empty()
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        fn kv(pairs: &[(String, i64)]) -> String {
            let body: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
                .collect();
            format!("{{{}}}", body.join(","))
        }
        fn names(list: &[String]) -> String {
            let body: Vec<String> = list
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect();
            format!("[{}]", body.join(","))
        }
        format!(
            "{{\"counter_deltas\":{},\"gauge_deltas\":{},\"histogram_count_deltas\":{},\"added\":{},\"removed\":{}}}",
            kv(&self.counter_deltas),
            kv(&self.gauge_deltas),
            kv(&self.histogram_count_deltas),
            names(&self.added),
            names(&self.removed),
        )
    }
}

/// Diffs two snapshots of the same registry taken at different times.
pub fn diff_snapshots(before: &MetricsSnapshot, after: &MetricsSnapshot) -> SnapshotDiff {
    fn saturate(after: u64, before: u64) -> i64 {
        if after >= before {
            i64::try_from(after - before).unwrap_or(i64::MAX)
        } else {
            i64::try_from(before - after)
                .map(|d| -d)
                .unwrap_or(i64::MIN)
        }
    }

    let mut diff = SnapshotDiff::default();
    let b_counters: std::collections::BTreeMap<&str, u64> = before
        .counters
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    for (name, v) in &after.counters {
        match b_counters.get(name.as_str()) {
            Some(prev) if *prev != *v => {
                diff.counter_deltas
                    .push((name.clone(), saturate(*v, *prev)));
            }
            Some(_) => {}
            None => diff.added.push(name.clone()),
        }
    }
    let a_counters: std::collections::BTreeSet<&str> =
        after.counters.iter().map(|(k, _)| k.as_str()).collect();
    for (name, _) in &before.counters {
        if !a_counters.contains(name.as_str()) {
            diff.removed.push(name.clone());
        }
    }

    let b_gauges: std::collections::BTreeMap<&str, i64> = before
        .gauges
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    for (name, v) in &after.gauges {
        match b_gauges.get(name.as_str()) {
            Some(prev) if *prev != *v => {
                diff.gauge_deltas
                    .push((name.clone(), v.saturating_sub(*prev)));
            }
            Some(_) => {}
            None => diff.added.push(name.clone()),
        }
    }
    let a_gauges: std::collections::BTreeSet<&str> =
        after.gauges.iter().map(|(k, _)| k.as_str()).collect();
    for (name, _) in &before.gauges {
        if !a_gauges.contains(name.as_str()) {
            diff.removed.push(name.clone());
        }
    }

    let b_hists: std::collections::BTreeMap<&str, u64> = before
        .histograms
        .iter()
        .map(|(k, h)| (k.as_str(), h.count))
        .collect();
    for (name, h) in &after.histograms {
        match b_hists.get(name.as_str()) {
            Some(prev) if *prev != h.count => {
                diff.histogram_count_deltas
                    .push((name.clone(), saturate(h.count, *prev)));
            }
            Some(_) => {}
            None => diff.added.push(name.clone()),
        }
    }
    let a_hists: std::collections::BTreeSet<&str> =
        after.histograms.iter().map(|(k, _)| k.as_str()).collect();
    for (name, _) in &before.histograms {
        if !a_hists.contains(name.as_str()) {
            diff.removed.push(name.clone());
        }
    }

    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{DecisionEvent, EventKind};
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("hetsel.core.cache.hit").add(12);
        r.gauge("hetsel.core.cache.len").set(4);
        r.histogram("hetsel.core.decide.ns").record(101);
        r
    }

    #[test]
    fn exposition_roundtrips_through_the_validator() {
        let text = prometheus_exposition(&sample_registry().snapshot());
        assert!(text.contains("# TYPE hetsel_core_cache_hit counter"));
        assert!(text.contains("hetsel_core_cache_hit 12"));
        assert!(text.contains("hetsel_core_decide_ns{quantile=\"0.5\"}"));
        assert!(text.contains("hetsel_core_decide_ns_count 1"));
        // counter + gauge + 3 quantiles + sum + count
        assert_eq!(validate_exposition(&text), Ok(7));
    }

    #[test]
    fn validator_rejects_malformed_exposition() {
        assert!(
            validate_exposition("orphan_sample 1\n").is_err(),
            "undeclared"
        );
        assert!(
            validate_exposition("# TYPE bad.name counter\nbad.name 1\n").is_err(),
            "dotted name"
        );
        assert!(
            validate_exposition("# TYPE m counter\nm not_a_number\n").is_err(),
            "bad value"
        );
        assert!(
            validate_exposition("# TYPE m wat\nm 1\n").is_err(),
            "unknown kind"
        );
        assert_eq!(
            validate_exposition(""),
            Ok(0),
            "empty text is vacuously valid"
        );
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(
            prometheus_name("hetsel.core.cache.hit"),
            "hetsel_core_cache_hit"
        );
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert!(valid_prom_name(&prometheus_name("7.weird-name!")));
    }

    #[test]
    fn jsonl_snapshot_emits_three_tagged_lines() {
        let snap = sample_registry().snapshot();
        let ev = DecisionEvent::new(EventKind::Decide, "gemm");
        let obs = crate::AccuracyObservatory::new();
        obs.observe("gemm", "v100", 1.1, 1.0, false);
        let text = jsonl_snapshot("t0", &snap, &[ev], &obs.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (line, kind) in lines.iter().zip(["metrics", "flight", "accuracy"]) {
            assert!(line.starts_with(&format!("{{\"v\":{SNAPSHOT_VERSION},\"kind\":\"{kind}\"")));
            assert!(line.contains("\"tag\":\"t0\""));
            assert!(line.ends_with('}'));
        }
        assert!(lines[1].contains("\"region\":\"gemm\""));
        assert!(lines[2].contains("\"device\":\"v100\""));
    }

    #[test]
    fn diff_reports_deltas_and_membership_changes() {
        let r = sample_registry();
        let before = r.snapshot();
        assert!(diff_snapshots(&before, &before).is_empty());
        r.counter("hetsel.core.cache.hit").add(5);
        r.gauge("hetsel.core.cache.len").set(2);
        r.counter("hetsel.core.cache.miss").inc();
        r.histogram("hetsel.core.decide.ns").record(99);
        let after = r.snapshot();
        let diff = diff_snapshots(&before, &after);
        assert_eq!(
            diff.counter_deltas,
            vec![("hetsel.core.cache.hit".to_string(), 5)]
        );
        assert_eq!(
            diff.gauge_deltas,
            vec![("hetsel.core.cache.len".to_string(), -2)]
        );
        assert_eq!(diff.added, vec!["hetsel.core.cache.miss".to_string()]);
        assert_eq!(
            diff.histogram_count_deltas,
            vec![("hetsel.core.decide.ns".to_string(), 1)]
        );
        assert!(diff.removed.is_empty());
        let j = diff.to_json();
        assert!(j.contains("\"hetsel.core.cache.hit\":5"));
        assert!(j.contains("\"removed\":[]"));
    }
}
