//! The accuracy observatory: streaming predicted-vs-observed error
//! statistics per `(region, device)`.
//!
//! The analytical model is only trustworthy while its predictions keep
//! matching what devices actually do; this module is the measurement half
//! of that loop (the correction-fitting half is ROADMAP item 3). Every
//! dispatch completion — and every ground-truth measurement the adaptive
//! selector takes — feeds one observation:
//!
//! * the **signed relative error** `(predicted − observed) / observed`
//!   accumulated with Welford's streaming algorithm (numerically stable
//!   mean and variance, O(1) state per cell);
//! * the **signed bias** in seconds, `mean(predicted − observed)` —
//!   positive means the model over-predicts that device;
//! * a **misprediction-flip counter**: observations where correcting the
//!   executed device's prediction to its observed runtime would have
//!   flipped the verdict against the losing candidate.
//!
//! Cells are keyed by `(region, device-label)` strings so the observatory
//! stays dependency-free; `hetsel-core` routes the fleet's interned labels
//! here, which keeps the spellings identical to every other per-device
//! metric name. Updates take a per-cell mutex — observations happen on
//! dispatch *completion*, never on the cache-hit decide path.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

use crate::json_escape;

/// Welford accumulator plus bias and flip tallies for one cell.
#[derive(Debug, Default, Clone, Copy)]
struct Cell {
    count: u64,
    mean: f64,
    m2: f64,
    bias_sum_s: f64,
    flips: u64,
}

impl Cell {
    fn observe(&mut self, predicted_s: f64, observed_s: f64, flip: bool) {
        if !(predicted_s.is_finite() && observed_s.is_finite()) || observed_s <= 0.0 {
            return;
        }
        let rel = (predicted_s - observed_s) / observed_s;
        self.count += 1;
        let delta = rel - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (rel - self.mean);
        self.bias_sum_s += predicted_s - observed_s;
        if flip {
            self.flips += 1;
        }
    }
}

/// A point-in-time reading of one `(region, device)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Region (kernel) name.
    pub region: String,
    /// Device label (the fleet's interned spelling).
    pub device: String,
    /// Observations folded in.
    pub samples: u64,
    /// Mean signed relative error `(predicted − observed) / observed`.
    pub mean_rel_error: f64,
    /// Sample variance of the signed relative error (0 while `samples < 2`).
    pub rel_error_variance: f64,
    /// Mean signed bias in seconds (`predicted − observed`).
    pub mean_bias_s: f64,
    /// Observations where the corrected prediction flips the verdict.
    pub flips: u64,
}

impl AccuracyRow {
    /// One-line JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"region\":\"{}\",\"device\":\"{}\",\"samples\":{},\"mean_rel_error\":{:?},\"rel_error_variance\":{:?},\"mean_bias_s\":{:?},\"flips\":{}}}",
            json_escape(&self.region),
            json_escape(&self.device),
            self.samples,
            self.mean_rel_error,
            self.rel_error_variance,
            self.mean_bias_s,
            self.flips,
        )
    }
}

/// `(region, device)` — the observatory's cell key.
type CellKey = (String, String);

/// The per-`(region, device)` accuracy table.
#[derive(Debug, Default)]
pub struct AccuracyObservatory {
    cells: RwLock<BTreeMap<CellKey, Arc<Mutex<Cell>>>>,
}

impl AccuracyObservatory {
    /// An empty observatory (tests; production code uses [`accuracy`]).
    pub fn new() -> AccuracyObservatory {
        AccuracyObservatory::default()
    }

    /// Finds or creates a cell. The table's locks recover from poisoning
    /// (`PoisonError::into_inner`): the map and the `Copy` cell contents
    /// are mutated in single assignments, so a panicked holder can leave
    /// at worst a stale value behind — never a torn one — and an ops
    /// surface must keep answering after one observer thread dies.
    fn cell(&self, region: &str, device: &str) -> Arc<Mutex<Cell>> {
        let key = (region.to_string(), device.to_string());
        if let Some(found) = self
            .cells
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Arc::clone(found);
        }
        let mut w = self.cells.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(w.entry(key).or_default())
    }

    /// Folds one observation in: the runtime the model predicted for
    /// `device` on `region` against what was actually observed (simulated
    /// or measured), plus whether correcting the prediction would have
    /// flipped the verdict.
    pub fn observe(
        &self,
        region: &str,
        device: &str,
        predicted_s: f64,
        observed_s: f64,
        flip: bool,
    ) {
        self.cell(region, device)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe(predicted_s, observed_s, flip);
    }

    /// The current reading for one cell, if it has any samples.
    pub fn lookup(&self, region: &str, device: &str) -> Option<AccuracyRow> {
        let key = (region.to_string(), device.to_string());
        let cell = {
            let cells = self.cells.read().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(cells.get(&key)?)
        };
        let c = *cell.lock().unwrap_or_else(PoisonError::into_inner);
        (c.count > 0).then(|| row(&key.0, &key.1, &c))
    }

    /// Every non-empty cell, sorted by `(region, device)`.
    pub fn snapshot(&self) -> Vec<AccuracyRow> {
        self.cells
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter_map(|((region, device), cell)| {
                let c = *cell.lock().unwrap_or_else(PoisonError::into_inner);
                (c.count > 0).then(|| row(region, device, &c))
            })
            .collect()
    }

    /// Number of cells with at least one sample.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when no cell has samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes every cell without invalidating the table.
    pub fn reset(&self) {
        for cell in self
            .cells
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            *cell.lock().unwrap_or_else(PoisonError::into_inner) = Cell::default();
        }
    }
}

fn row(region: &str, device: &str, c: &Cell) -> AccuracyRow {
    AccuracyRow {
        region: region.to_string(),
        device: device.to_string(),
        samples: c.count,
        mean_rel_error: c.mean,
        rel_error_variance: if c.count > 1 {
            c.m2 / (c.count - 1) as f64
        } else {
            0.0
        },
        mean_bias_s: if c.count > 0 {
            c.bias_sum_s / c.count as f64
        } else {
            0.0
        },
        flips: c.flips,
    }
}

/// The process-wide observatory.
pub fn accuracy() -> &'static AccuracyObservatory {
    static OBSERVATORY: OnceLock<AccuracyObservatory> = OnceLock::new();
    OBSERVATORY.get_or_init(AccuracyObservatory::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_mean_and_variance() {
        let obs = AccuracyObservatory::new();
        // predicted = observed * (1 + r) for a known error series.
        let errors = [0.10, -0.05, 0.20, 0.00, -0.15];
        for r in errors {
            obs.observe("gemm", "v100", 1.0 + r, 1.0, false);
        }
        let got = obs.lookup("gemm", "v100").unwrap();
        let n = errors.len() as f64;
        let mean: f64 = errors.iter().sum::<f64>() / n;
        let var: f64 = errors.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert_eq!(got.samples, errors.len() as u64);
        assert!((got.mean_rel_error - mean).abs() < 1e-12);
        assert!((got.rel_error_variance - var).abs() < 1e-12);
        assert!((got.mean_bias_s - mean).abs() < 1e-12, "observed = 1.0");
    }

    #[test]
    fn flips_count_and_snapshot_sorts() {
        let obs = AccuracyObservatory::new();
        obs.observe("mvt", "host", 2.0, 1.0, true);
        obs.observe("mvt", "host", 2.0, 1.0, false);
        obs.observe("atax", "v100", 1.0, 2.0, true);
        let rows = obs.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            (rows[0].region.as_str(), rows[0].device.as_str()),
            ("atax", "v100")
        );
        assert_eq!(rows[1].flips, 1);
        assert!(
            rows[1].mean_bias_s > 0.0,
            "over-prediction is positive bias"
        );
        assert!(
            rows[0].mean_bias_s < 0.0,
            "under-prediction is negative bias"
        );
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let obs = AccuracyObservatory::new();
        obs.observe("r", "d", f64::NAN, 1.0, false);
        obs.observe("r", "d", 1.0, 0.0, false);
        obs.observe("r", "d", 1.0, f64::INFINITY, false);
        assert!(obs.lookup("r", "d").is_none());
        assert!(obs.is_empty());
        obs.observe("r", "d", 1.0, 1.0, false);
        assert_eq!(obs.len(), 1);
        obs.reset();
        assert!(obs.is_empty());
    }

    #[test]
    fn poisoned_observatory_still_snapshots_and_observes() {
        let obs = AccuracyObservatory::new();
        obs.observe("gemm", "v100", 1.1, 1.0, false);
        // Kill one holder of the cell mutex and one of the table's write
        // lock: both poison, neither may take down later readers.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cell = obs.cell("gemm", "v100");
            let _guard = cell.lock().unwrap();
            panic!("holder dies");
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = obs.cells.write().unwrap();
            panic!("holder dies");
        }));
        assert!(obs.cells.is_poisoned());
        assert_eq!(obs.snapshot().len(), 1);
        obs.observe("gemm", "v100", 1.2, 1.0, false);
        assert_eq!(obs.lookup("gemm", "v100").unwrap().samples, 2);
        obs.reset();
        assert!(obs.is_empty());
    }

    #[test]
    fn row_json_is_wellformed() {
        let obs = AccuracyObservatory::new();
        obs.observe("gemm", "v100", 1.1, 1.0, true);
        let j = obs.lookup("gemm", "v100").unwrap().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"region\":\"gemm\""));
        assert!(j.contains("\"samples\":1"));
        assert!(j.contains("\"flips\":1"));
    }
}
