//! The decision flight recorder: a fixed-capacity, lock-free ring buffer
//! of structured [`DecisionEvent`]s.
//!
//! Aggregate counters answer "how many"; the flight recorder answers
//! "what happened, in order": every decide verdict, dispatch completion,
//! fallback and breaker transition lands in the ring as a fixed-size
//! event, and an operator can [`drain`](FlightRecorder::drain) or
//! [`snapshot`](FlightRecorder::snapshot) the last `capacity` of them at
//! any time — including while writers are still recording.
//!
//! The recorder follows the crate's gating discipline:
//!
//! * **Disabled** (the default), [`record_event`] is a single relaxed
//!   atomic load and the event-building closure never runs — the decide
//!   hot path stays allocation-free and effectively untouched (pinned by
//!   `zero_alloc.rs` in `hetsel-core`).
//! * **Enabled**, recording is *lock-free and allocation-free*: a slot is
//!   claimed with one `fetch_add` on the write cursor and the event is
//!   serialized into that slot's fixed array of atomic words under a
//!   per-slot sequence lock. No mutex, no heap, no syscall — writers can
//!   never block each other or a reader.
//!
//! Readers validate each slot's sequence word before and after copying
//! the payload, so a concurrent overwrite is detected and the slot is
//! skipped rather than surfaced torn. (If the ring wraps more than once
//! during a single read the oldest events are simply gone — it is a
//! flight recorder, not a reliable log.)

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::json_escape;

/// Bytes of region name stored inline in an event (longer names truncate).
pub const REGION_BYTES: usize = 24;

/// Number of payload words a slot carries (excluding the sequence word).
const WORDS: usize = 9;

/// Default capacity of the process-wide recorder (events, power of two).
/// Sized so the whole ring (80 B/slot) stays L2-resident: a writer that
/// cycles through the ring re-touches warm lines instead of streaming
/// through megabytes, which is what keeps the recorded cache-hit decide
/// within its overhead budget (see `results/obs_report.json`).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1 << 12;

/// What a [`DecisionEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A `DecisionEngine` verdict (cache hit or miss — see
    /// [`DecisionEvent::cache_hit`]).
    Decide = 0,
    /// A dispatch that ran to completion on some device;
    /// [`DecisionEvent::simulated_s`] holds the observed runtime.
    DispatchComplete = 1,
    /// A dispatch fallback; [`DecisionEvent::detail`] holds the reason
    /// code (`FallbackReason` ordinal in `hetsel-core`).
    Fallback = 2,
    /// A circuit-breaker state transition; [`DecisionEvent::detail`]
    /// holds the *new* state's gauge value (0 closed, 1 open, 2 half-open).
    BreakerTransition = 3,
    /// A request shed by an admission-controlled front-end (`hetsel-serve`)
    /// before it reached the engine; [`DecisionEvent::detail`] holds the
    /// shed-reason code (`ShedReason` ordinal in `hetsel-serve`).
    Shed = 4,
    /// An online-calibration correction changed (or, in shadow mode,
    /// would have changed) a freshly evaluated verdict relative to the
    /// uncalibrated models. [`DecisionEvent::detail`] is 1 when the
    /// correction was actually applied (active mode), 0 for a shadow-mode
    /// would-flip; the predicted fields carry the *raw* (uncorrected)
    /// predictions the flip was measured against.
    CalibrationFlip = 5,
}

impl EventKind {
    /// Stable lowercase name (used in JSON).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Decide => "decide",
            EventKind::DispatchComplete => "dispatch",
            EventKind::Fallback => "fallback",
            EventKind::BreakerTransition => "breaker",
            EventKind::Shed => "shed",
            EventKind::CalibrationFlip => "calib_flip",
        }
    }

    fn from_u8(v: u8) -> EventKind {
        match v {
            1 => EventKind::DispatchComplete,
            2 => EventKind::Fallback,
            3 => EventKind::BreakerTransition,
            4 => EventKind::Shed,
            5 => EventKind::CalibrationFlip,
            _ => EventKind::Decide,
        }
    }
}

/// One structured entry in the flight recorder. Fixed-size and `Copy` so
/// recording never allocates; the region name is stored inline (truncated
/// to [`REGION_BYTES`] on a UTF-8 boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionEvent {
    /// Recorder-assigned global sequence number (filled on read; writers
    /// need not set it). Establishes the total order across threads.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Caller's logical-tick timestamp (the dispatcher's logical clock for
    /// dispatch/breaker events; 0 where no logical clock applies).
    pub tick: u64,
    /// Region name bytes, NUL-padded (see [`DecisionEvent::region_str`]).
    pub region: [u8; REGION_BYTES],
    /// The decision cache key's precomputed binding hash (0 when the
    /// event is not tied to a specific binding).
    pub binding_hash: u64,
    /// The `DeviceId` payload the event concerns (`u16::MAX` when none).
    pub device: u16,
    /// True when the verdict offloads to the accelerator named by
    /// `device`; false for a host verdict. Meaningful for decide and
    /// dispatch events.
    pub verdict_accel: bool,
    /// Whether the decision was answered from the cache (decide events).
    pub cache_hit: bool,
    /// Kind-specific detail code: fallback reason ordinal for
    /// [`EventKind::Fallback`], new breaker-state gauge value for
    /// [`EventKind::BreakerTransition`], 0 otherwise.
    pub detail: u8,
    /// Predicted host runtime, seconds (NaN when unknown).
    pub predicted_cpu_s: f64,
    /// Predicted accelerator runtime, seconds (NaN when unknown).
    pub predicted_accel_s: f64,
    /// Simulated/observed runtime, seconds (dispatch events; NaN
    /// otherwise).
    pub simulated_s: f64,
}

impl DecisionEvent {
    /// A blank event of the given kind for `region`, everything else
    /// zeroed/NaN. Callers fill the fields that apply.
    #[inline]
    pub fn new(kind: EventKind, region: &str) -> DecisionEvent {
        DecisionEvent {
            seq: 0,
            kind,
            tick: 0,
            region: pack_region(region),
            binding_hash: 0,
            device: u16::MAX,
            verdict_accel: false,
            cache_hit: false,
            detail: 0,
            predicted_cpu_s: f64::NAN,
            predicted_accel_s: f64::NAN,
            simulated_s: f64::NAN,
        }
    }

    /// The stored region name (truncation-aware, never panics).
    pub fn region_str(&self) -> &str {
        let end = self
            .region
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(REGION_BYTES);
        std::str::from_utf8(&self.region[..end]).unwrap_or("")
    }

    /// One-line JSON rendering (the JSONL snapshot format).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"kind\":\"{}\",\"tick\":{},\"region\":\"{}\",\"binding_hash\":{},\"device\":{}",
            self.seq,
            self.kind.name(),
            self.tick,
            json_escape(self.region_str()),
            self.binding_hash,
            self.device,
        );
        out.push_str(&format!(
            ",\"verdict\":\"{}\",\"cache_hit\":{},\"detail\":{}",
            if self.verdict_accel { "accel" } else { "host" },
            self.cache_hit,
            self.detail,
        ));
        for (key, v) in [
            ("predicted_cpu_s", self.predicted_cpu_s),
            ("predicted_accel_s", self.predicted_accel_s),
            ("simulated_s", self.simulated_s),
        ] {
            if v.is_finite() {
                out.push_str(&format!(",\"{key}\":{v:?}"));
            } else {
                out.push_str(&format!(",\"{key}\":null"));
            }
        }
        out.push('}');
        out
    }

    #[inline]
    fn encode(&self) -> [u64; WORDS] {
        let packed = self.kind as u64
            | (self.device as u64) << 8
            | (self.verdict_accel as u64) << 24
            | (self.cache_hit as u64) << 25
            | (self.detail as u64) << 32;
        let mut w = [0u64; WORDS];
        w[0] = packed;
        w[1] = self.tick;
        w[2] = self.binding_hash;
        w[3] = self.predicted_cpu_s.to_bits();
        w[4] = self.predicted_accel_s.to_bits();
        w[5] = self.simulated_s.to_bits();
        for (i, chunk) in self.region.chunks_exact(8).enumerate() {
            w[6 + i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        w
    }

    fn decode(seq: u64, w: &[u64; WORDS]) -> DecisionEvent {
        let mut region = [0u8; REGION_BYTES];
        for (i, slot) in region.chunks_exact_mut(8).enumerate() {
            slot.copy_from_slice(&w[6 + i].to_le_bytes());
        }
        DecisionEvent {
            seq,
            kind: EventKind::from_u8((w[0] & 0xff) as u8),
            tick: w[1],
            region,
            binding_hash: w[2],
            device: ((w[0] >> 8) & 0xffff) as u16,
            verdict_accel: (w[0] >> 24) & 1 == 1,
            cache_hit: (w[0] >> 25) & 1 == 1,
            detail: ((w[0] >> 32) & 0xff) as u8,
            predicted_cpu_s: f64::from_bits(w[3]),
            predicted_accel_s: f64::from_bits(w[4]),
            simulated_s: f64::from_bits(w[5]),
        }
    }
}

/// Truncates `region` onto a UTF-8 boundary and NUL-pads it.
#[inline]
fn pack_region(region: &str) -> [u8; REGION_BYTES] {
    let mut out = [0u8; REGION_BYTES];
    let mut end = region.len().min(REGION_BYTES);
    while end > 0 && !region.is_char_boundary(end) {
        end -= 1;
    }
    out[..end].copy_from_slice(&region.as_bytes()[..end]);
    out
}

/// One ring slot: a per-slot sequence lock over a fixed word array.
/// `seq == 0` means empty/in-flight; `seq == ticket + 1` means the slot
/// holds the event with global sequence number `ticket`.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    const fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; WORDS],
        }
    }
}

/// The fixed-capacity, lock-free event ring. See the module docs for the
/// write/read protocol.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    mask: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("total_recorded", &self.total_recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events; `capacity` is
    /// rounded up to a power of two (minimum 2).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(2).next_power_of_two();
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            cursor: AtomicU64::new(0),
            mask: cap - 1,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (monotone; survives drains).
    pub fn total_recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records one event: claims a ticket, invalidates the target slot,
    /// stores the payload words and re-validates. Lock-free and
    /// allocation-free.
    #[inline]
    pub fn record(&self, ev: &DecisionEvent) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & self.mask];
        // Invalidate, then publish each payload word with Release: a reader
        // whose (relaxed-load + acquire-fence) copy observed any new word
        // therefore also observes the invalidation — or the final
        // re-validation value — on its sequence re-check, so a torn copy
        // can never validate. This keeps the writer free of locked RMW
        // cycles beyond the one ticket `fetch_add` (the hot decide path
        // pays for exactly one).
        slot.seq.store(0, Ordering::Relaxed);
        for (w, v) in slot.words.iter().zip(ev.encode()) {
            w.store(v, Ordering::Release);
        }
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Copies out every currently-valid event, oldest first, without
    /// consuming them. Safe to call while writers are recording: slots
    /// mid-overwrite are skipped, never surfaced torn.
    pub fn snapshot(&self) -> Vec<DecisionEvent> {
        let mut out: Vec<DecisionEvent> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            let mut w = [0u64; WORDS];
            for (dst, src) in w.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            // The acquire fence orders the payload loads before the
            // re-check: an unchanged sequence proves the copy is whole.
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                out.push(DecisionEvent::decode(s1 - 1, &w));
            }
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// As [`snapshot`](FlightRecorder::snapshot), but consumes: each
    /// returned event's slot is atomically cleared (a slot that a writer
    /// overwrote in the meantime is left alone, so no new event is lost).
    pub fn drain(&self) -> Vec<DecisionEvent> {
        let events = self.snapshot();
        for ev in &events {
            let slot = &self.slots[(ev.seq as usize) & self.mask];
            // Clear only if the slot still holds the event we returned.
            let _ = slot
                .seq
                .compare_exchange(ev.seq + 1, 0, Ordering::AcqRel, Ordering::Relaxed);
        }
        events
    }

    /// Drops all retained events (the total-recorded count is preserved).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
    }

    /// Number of currently-valid events (point-in-time estimate under
    /// concurrent writes).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.seq.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// --- the global recorder --------------------------------------------------

/// Fast-path switch: every [`record_event`] call starts (and, while
/// disabled, ends) with this single relaxed load.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// Enables or disables flight recording process-wide (default off).
pub fn set_flight_recording(on: bool) {
    RECORDING.store(on, Ordering::Release);
}

/// True while [`record_event`] forwards events to the global recorder.
#[inline]
pub fn flight_recording_enabled() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// The process-wide recorder ([`DEFAULT_FLIGHT_CAPACITY`] events).
pub fn flight_recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY))
}

/// Records an event into the global recorder. The closure runs only when
/// recording is enabled, so callers may gather fields freely — the
/// disabled path is one relaxed atomic load and constructs nothing.
#[inline]
pub fn record_event(build: impl FnOnce() -> DecisionEvent) {
    if !flight_recording_enabled() {
        return;
    }
    flight_recorder().record(&build());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool as StdAtomicBool;
    use std::sync::Arc;
    use std::thread;

    fn ev(region: &str, tick: u64) -> DecisionEvent {
        let mut e = DecisionEvent::new(EventKind::Decide, region);
        e.tick = tick;
        e.binding_hash = 0xdead_beef;
        e.device = 1;
        e.verdict_accel = true;
        e.cache_hit = true;
        e.predicted_cpu_s = 1.5;
        e.predicted_accel_s = 0.25;
        e
    }

    #[test]
    fn event_roundtrips_through_words() {
        let e = ev("gemm", 42);
        let decoded = DecisionEvent::decode(7, &e.encode());
        assert_eq!(decoded.seq, 7);
        assert_eq!(decoded.kind, EventKind::Decide);
        assert_eq!(decoded.tick, 42);
        assert_eq!(decoded.region_str(), "gemm");
        assert_eq!(decoded.binding_hash, 0xdead_beef);
        assert_eq!(decoded.device, 1);
        assert!(decoded.verdict_accel && decoded.cache_hit);
        assert_eq!(decoded.predicted_cpu_s, 1.5);
        assert_eq!(decoded.predicted_accel_s, 0.25);
        assert!(decoded.simulated_s.is_nan());
    }

    #[test]
    fn region_truncates_on_char_boundary() {
        let long = "a".repeat(REGION_BYTES + 10);
        assert_eq!(
            DecisionEvent::new(EventKind::Decide, &long)
                .region_str()
                .len(),
            REGION_BYTES
        );
        // A multi-byte char straddling the boundary is dropped whole.
        let tricky = format!("{}é", "a".repeat(REGION_BYTES - 1));
        let packed = DecisionEvent::new(EventKind::Decide, &tricky);
        assert_eq!(packed.region_str(), &"a".repeat(REGION_BYTES - 1));
    }

    #[test]
    fn ring_keeps_newest_in_seq_order() {
        let r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(&ev("r", i));
        }
        assert_eq!(r.total_recorded(), 10);
        let got = r.snapshot();
        assert_eq!(got.len(), 4);
        let seqs: Vec<u64> = got.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(got[0].tick, 6);
    }

    #[test]
    fn drain_consumes_and_preserves_totals() {
        let r = FlightRecorder::new(8);
        r.record(&ev("a", 1));
        r.record(&ev("b", 2));
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 2);
        assert!(r.drain().is_empty());
        r.record(&ev("c", 3));
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn event_json_is_wellformed() {
        let j = ev("gemm", 9).to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"kind\":\"decide\""));
        assert!(j.contains("\"region\":\"gemm\""));
        assert!(j.contains("\"simulated_s\":null"));
        assert!(j.contains("\"predicted_accel_s\":0.25"));
    }

    #[test]
    fn disabled_gate_skips_the_build_closure() {
        set_flight_recording(false);
        let ran = StdAtomicBool::new(false);
        record_event(|| {
            ran.store(true, Ordering::Relaxed);
            ev("never", 0)
        });
        assert!(!ran.load(Ordering::Relaxed));
    }

    #[test]
    fn concurrent_writers_and_reader_never_tear() {
        let r = Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    for i in 0..5_000u64 {
                        // Each writer stamps a self-consistent pair so a
                        // torn read is detectable.
                        let mut e = ev("stress", i);
                        e.binding_hash = t * 1_000_000 + i;
                        e.predicted_cpu_s = e.binding_hash as f64;
                        r.record(&e);
                    }
                })
            })
            .collect();
        let reader = {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..200 {
                    for e in r.snapshot() {
                        assert_eq!(
                            e.predicted_cpu_s, e.binding_hash as f64,
                            "torn event surfaced"
                        );
                        seen += 1;
                    }
                }
                seen
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        assert!(reader.join().unwrap() > 0);
        assert_eq!(r.total_recorded(), 20_000);
    }
}
