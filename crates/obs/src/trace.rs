//! The structured tracing facade.
//!
//! A [`span`] marks a timed region of work with a static name and typed
//! key/value [`Field`]s; the guard records its duration on drop and hands
//! the finished [`SpanRecord`] to the process-wide [`Subscriber`]. The
//! facade is *off by default*: until [`set_subscriber`] installs a real
//! subscriber, opening a span costs one relaxed atomic load and constructs
//! nothing — field closures are not even invoked. This is what keeps the
//! instrumented decision path within the <5% overhead budget.

use std::cell::Cell;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

use crate::json_escape;

/// A typed field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:?}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    /// Renders the value as a JSON fragment.
    fn to_json(&self) -> String {
        match self {
            FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
            FieldValue::F64(v) if !v.is_finite() => "null".to_string(),
            other => other.to_string(),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// A key/value pair attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub key: &'static str,
    /// Field value.
    pub value: FieldValue,
}

/// Builds a [`Field`] from anything convertible to a [`FieldValue`].
pub fn field(key: &'static str, value: impl Into<FieldValue>) -> Field {
    Field {
        key,
        value: value.into(),
    }
}

/// A finished span as delivered to a [`Subscriber`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static span name (dotted, e.g. `hetsel.core.decide`).
    pub name: &'static str,
    /// Nesting depth on the emitting thread (0 = top level).
    pub depth: usize,
    /// Start offset in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub duration_ns: u64,
    /// Attached fields, in attachment order.
    pub fields: Vec<Field>,
}

impl SpanRecord {
    /// One-line JSON rendering (the JSONL subscriber's format).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"span\":\"{}\",\"depth\":{},\"start_ns\":{},\"duration_ns\":{}",
            json_escape(self.name),
            self.depth,
            self.start_ns,
            self.duration_ns
        );
        for f in &self.fields {
            out.push_str(&format!(
                ",\"{}\":{}",
                json_escape(f.key),
                f.value.to_json()
            ));
        }
        out.push('}');
        out
    }
}

/// Receives finished spans. Implementations must be cheap or buffer
/// internally; spans arrive from arbitrary threads.
pub trait Subscriber: Send + Sync {
    /// Whether the facade should emit spans at all while this subscriber is
    /// installed. The [`NullSubscriber`] answers `false`, turning the whole
    /// facade back into a single atomic load.
    fn enabled(&self) -> bool {
        true
    }

    /// Delivers one finished span.
    fn on_span(&self, span: &SpanRecord);
}

/// The do-nothing subscriber: spans are never constructed while installed.
#[derive(Debug, Default)]
pub struct NullSubscriber;

impl Subscriber for NullSubscriber {
    fn enabled(&self) -> bool {
        false
    }
    fn on_span(&self, _span: &SpanRecord) {}
}

/// Pretty-prints finished spans to stderr, indented by nesting depth.
/// Because spans report on *close*, children print before their parents.
#[derive(Debug, Default)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        let mut line = format!("[trace] {}{}", "  ".repeat(span.depth), span.name);
        if !span.fields.is_empty() {
            line.push_str(" {");
            for (i, f) in span.fields.iter().enumerate() {
                if i > 0 {
                    line.push_str(", ");
                }
                line.push_str(&format!("{}={}", f.key, f.value));
            }
            line.push('}');
        }
        line.push_str(&format!("  {}", fmt_ns(span.duration_ns)));
        eprintln!("{line}");
    }
}

/// Formats nanoseconds compactly.
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Keeps the last `capacity` spans in memory — the flight recorder used by
/// tests and the `explain` binary's `--trace` mode.
#[derive(Debug)]
pub struct RingBufferSubscriber {
    capacity: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
}

impl RingBufferSubscriber {
    /// A ring holding at most `capacity` spans (minimum 1); older spans are
    /// dropped as newer ones arrive.
    pub fn new(capacity: usize) -> RingBufferSubscriber {
        RingBufferSubscriber {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// The retained spans, oldest first, *without* consuming them —
    /// repeated snapshots observe the same spans until they age out or
    /// are [`drain`](RingBufferSubscriber::drain)ed. Telemetry reads must
    /// survive a panicked writer, so a poisoned ring is read as-is: every
    /// span in it was pushed whole under the lock.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Takes the retained spans, oldest first, leaving the ring empty.
    /// The take-and-clear is atomic with respect to concurrent
    /// `on_span` deliveries: a span is returned by exactly one drain.
    pub fn drain(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.buf.lock().unwrap_or_else(PoisonError::into_inner)).into()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained spans.
    pub fn clear(&self) {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

impl Subscriber for RingBufferSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        if buf.len() >= self.capacity {
            buf.pop_front();
        }
        buf.push_back(span.clone());
    }
}

/// Writes one JSON object per span to the wrapped writer (JSONL). Lines are
/// flushed per span so a crash loses at most the span in flight.
pub struct JsonlSubscriber<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSubscriber<W> {
    /// Wraps a writer (a `File`, a `Vec<u8>`, a `BufWriter`, ...).
    pub fn new(writer: W) -> JsonlSubscriber<W> {
        JsonlSubscriber {
            writer: Mutex::new(writer),
        }
    }

    /// Consumes the subscriber and returns the writer.
    pub fn into_inner(self) -> W {
        self.writer
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<W: Write + Send> Subscriber for JsonlSubscriber<W> {
    fn on_span(&self, span: &SpanRecord) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // Telemetry must never take the program down: IO errors are dropped.
        let _ = writeln!(w, "{}", span.to_json());
        let _ = w.flush();
    }
}

// --- the global dispatch point -------------------------------------------

/// Fast-path switch: true only while a real (non-null) subscriber is
/// installed. Every `span()` call starts with this single relaxed load.
static TRACING: AtomicBool = AtomicBool::new(false);

static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// The process epoch all `start_ns` offsets are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Installs (or with `None` removes) the process-wide subscriber. Passing a
/// [`NullSubscriber`] is equivalent to `None`: the facade stays disabled.
pub fn set_subscriber(sub: Option<Arc<dyn Subscriber>>) {
    let enabled = sub.as_ref().is_some_and(|s| s.enabled());
    *SUBSCRIBER.write().unwrap_or_else(PoisonError::into_inner) = sub;
    TRACING.store(enabled, Ordering::Release);
}

/// True while spans are being recorded (a real subscriber is installed).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// True if any subscriber (including the null one) is installed.
pub fn subscriber_installed() -> bool {
    SUBSCRIBER
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

struct ActiveSpan {
    name: &'static str,
    depth: usize,
    start: Instant,
    start_ns: u64,
    fields: Vec<Field>,
}

/// RAII guard for an open span: records its duration and dispatches on
/// drop. When tracing is disabled the guard is inert and free.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attaches a field to the open span (no-op when tracing is disabled).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(a) = &mut self.active {
            a.fields.push(field(key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let duration_ns = active.start.elapsed().as_nanos() as u64;
        DEPTH.with(|d| d.set(active.depth));
        let record = SpanRecord {
            name: active.name,
            depth: active.depth,
            start_ns: active.start_ns,
            duration_ns,
            fields: active.fields,
        };
        if let Some(sub) = SUBSCRIBER
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            sub.on_span(&record);
        }
    }
}

/// Opens a span with no initial fields.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new)
}

/// Opens a span whose fields are built by `fields` — the closure runs only
/// when tracing is enabled, so callers may format freely.
#[inline]
pub fn span_with(name: &'static str, fields: impl FnOnce() -> Vec<Field>) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { active: None };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let start = Instant::now();
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            depth,
            start,
            start_ns: start.duration_since(epoch()).as_nanos() as u64,
            fields: fields(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_values_render() {
        assert_eq!(field("k", 3i64).value.to_string(), "3");
        assert_eq!(field("k", true).value.to_string(), "true");
        assert_eq!(field("k", "x").value.to_json(), "\"x\"");
        assert_eq!(field("k", f64::NAN).value.to_json(), "null");
    }

    #[test]
    fn span_record_json_is_wellformed() {
        let r = SpanRecord {
            name: "hetsel.test.span",
            depth: 1,
            start_ns: 5,
            duration_ns: 42,
            fields: vec![field("region", "gemm"), field("iters", 10u64)],
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"span\":\"hetsel.test.span\""));
        assert!(j.contains("\"region\":\"gemm\""));
        assert!(j.contains("\"iters\":10"));
    }

    #[test]
    fn disabled_facade_is_inert() {
        // No subscriber installed in this process at unit-test time: the
        // guard must be inert and the field closure must not run.
        if subscriber_installed() {
            return; // another test owns the global; covered by integration tests
        }
        let mut ran = false;
        {
            let mut g = span_with("hetsel.test.never", || {
                ran = true;
                vec![]
            });
            g.record("k", 1i64);
        }
        assert!(!ran);
    }

    #[test]
    fn fmt_ns_ranges() {
        assert_eq!(fmt_ns(500), "500ns");
        assert!(fmt_ns(50_000).ends_with("µs"));
        assert!(fmt_ns(50_000_000).ends_with("ms"));
        assert!(fmt_ns(50_000_000_000).ends_with('s'));
    }

    #[test]
    fn poisoned_ring_still_snapshots_and_records() {
        let ring = RingBufferSubscriber::new(4);
        let record = SpanRecord {
            name: "hetsel.test.poison",
            depth: 0,
            start_ns: 0,
            duration_ns: 1,
            fields: vec![],
        };
        ring.on_span(&record);
        // A holder that dies with the lock poisons it...
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = ring.buf.lock().unwrap();
            panic!("holder dies mid-critical-section");
        }));
        assert!(ring.buf.is_poisoned());
        // ...but the ops surface keeps answering: reads, writes, drains.
        assert_eq!(ring.snapshot().len(), 1);
        ring.on_span(&record);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
    }
}
