//! Integration tests for the tracing facade and metrics registry: the
//! concurrency and global-state behaviour unit tests cannot cover.

use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use hetsel_obs::{
    registry, set_subscriber, span, span_with, trace::field, tracing_enabled, JsonlSubscriber,
    NullSubscriber, RingBufferSubscriber,
};

/// The subscriber slot is process-global; tests that install one must not
/// interleave. (Cargo runs tests in this binary on multiple threads.)
fn subscriber_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn counters_are_exact_under_thread_fanout() {
    let c = registry().counter("hetsel.test.concurrent");
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                for _ in 0..per_thread {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.get(), threads as u64 * per_thread);
}

#[test]
fn histogram_is_consistent_under_thread_fanout() {
    let h = registry().histogram("hetsel.test.concurrent_hist");
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for v in 0..5_000u64 {
                    h.record(v * 4 + t);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let s = h.summary();
    assert_eq!(s.count, 20_000);
    assert_eq!(s.min, 0);
    assert_eq!(s.max, 4 * 4999 + 3);
    // Sum of 0..20000 shifted: exact because every sample value 0..=19999
    // appears exactly once across the four threads.
    assert_eq!(s.sum, (0..20_000u64).sum::<u64>());
    assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
}

#[test]
fn ring_buffer_truncates_to_capacity() {
    let _guard = subscriber_lock();
    let ring = Arc::new(RingBufferSubscriber::new(4));
    set_subscriber(Some(ring.clone()));
    assert!(tracing_enabled());
    for i in 0..10u64 {
        let mut g = span("hetsel.test.ring");
        g.record("i", i);
    }
    set_subscriber(None);
    let spans = ring.snapshot();
    assert_eq!(spans.len(), 4, "ring kept only the newest spans");
    // Oldest-first order, holding the last four emissions (6..=9).
    for (slot, span) in spans.iter().enumerate() {
        assert_eq!(span.name, "hetsel.test.ring");
        assert_eq!(span.fields[0].value, field("i", 6 + slot as u64).value);
    }
    ring.clear();
    assert!(ring.is_empty());
}

#[test]
fn ring_buffer_drain_vs_snapshot_under_concurrent_emitters() {
    let _guard = subscriber_lock();
    let ring = Arc::new(RingBufferSubscriber::new(1 << 14));
    set_subscriber(Some(ring.clone()));
    let emitters = 4;
    let per_thread = 2_000u64;
    let handles: Vec<_> = (0..emitters)
        .map(|_| {
            thread::spawn(move || {
                for i in 0..per_thread {
                    let mut g = span("hetsel.test.drain");
                    g.record("i", i);
                }
            })
        })
        .collect();
    // Drain concurrently with the emitters: snapshot() must never consume,
    // drain() must hand each span to exactly one caller.
    let mut drained = Vec::new();
    while handles.iter().any(|h| !h.is_finished()) {
        let peek = ring.snapshot();
        let taken = ring.drain();
        assert!(
            taken.len() >= peek.len(),
            "drain lost spans a snapshot had already observed"
        );
        drained.extend(taken);
    }
    for h in handles {
        h.join().unwrap();
    }
    set_subscriber(None);
    drained.extend(ring.drain());
    assert_eq!(
        drained.len() as u64,
        emitters as u64 * per_thread,
        "every span drained exactly once (capacity was never exceeded)"
    );
    assert!(ring.is_empty() && ring.snapshot().is_empty());
    assert!(drained.iter().all(|s| s.name == "hetsel.test.drain"));
}

#[test]
fn null_subscriber_keeps_facade_disabled() {
    let _guard = subscriber_lock();
    set_subscriber(Some(Arc::new(NullSubscriber)));
    assert!(
        !tracing_enabled(),
        "null subscriber must not enable tracing"
    );
    let mut closure_ran = false;
    drop(span_with("hetsel.test.null", || {
        closure_ran = true;
        vec![]
    }));
    assert!(!closure_ran, "field closure must not run while disabled");
    set_subscriber(None);
}

#[test]
fn jsonl_subscriber_emits_parseable_lines() {
    let _guard = subscriber_lock();
    let shared = Arc::new(JsonlSubscriber::new(Vec::<u8>::new()));
    set_subscriber(Some(shared.clone()));
    {
        let mut outer = span("hetsel.test.outer");
        outer.record("region", "gemm");
        let _inner = span("hetsel.test.inner");
    }
    set_subscriber(None);
    let bytes = Arc::into_inner(shared).unwrap().into_inner();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    // Spans close inner-first; depth reflects nesting.
    assert!(lines[0].contains("\"span\":\"hetsel.test.inner\""));
    assert!(lines[0].contains("\"depth\":1"));
    assert!(lines[1].contains("\"span\":\"hetsel.test.outer\""));
    assert!(lines[1].contains("\"depth\":0"));
    assert!(lines[1].contains("\"region\":\"gemm\""));
    for l in &lines {
        assert!(l.starts_with('{') && l.ends_with('}'));
        assert!(l.contains("\"duration_ns\":"));
    }
}
