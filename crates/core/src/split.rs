//! Cooperative CPU+GPU execution: splitting one parallel loop between the
//! host and the accelerator.
//!
//! The paper's introduction motivates the whole line of work with
//! cooperative schemes: "For some tasks, a split of the computation between
//! CPU and GPU execution leads to better performance" (Valero-Lara et al.).
//! This module extends the selector from a binary choice to a *fractional*
//! one: give the GPU a fraction `f` of the parallel iterations and the host
//! the rest, overlap them, and finish when the slower side finishes:
//!
//! ```text
//! T(f) = max( T_gpu(f), T_cpu(1 − f) )
//! ```
//!
//! Both sides decompose into a fixed part (fork/launch/latency, transfers
//! of data every iteration touches) and a part proportional to the share of
//! iterations, all taken from the same analytical models the binary
//! selector uses — so the split decision is still "solving an equation",
//! evaluated over a fraction grid at runtime.

use crate::platform::Platform;
use hetsel_ipda::analyze;
use hetsel_ir::{Binding, Kernel};
use hetsel_models::{CoalescingMode, TripMode};

/// The outcome of a split analysis.
#[derive(Debug, Clone, Copy)]
pub struct SplitDecision {
    /// Fraction of parallel iterations assigned to the GPU (0.0 = pure
    /// host, 1.0 = pure GPU).
    pub gpu_fraction: f64,
    /// Predicted wall time of the cooperative execution, seconds.
    pub predicted_s: f64,
    /// Predicted pure-host time, seconds.
    pub host_only_s: f64,
    /// Predicted pure-GPU time, seconds.
    pub gpu_only_s: f64,
}

impl SplitDecision {
    /// Predicted gain of splitting over the better single device.
    pub fn gain_over_best_single(&self) -> f64 {
        self.host_only_s.min(self.gpu_only_s) / self.predicted_s
    }

    /// True if a strict split (neither 0 nor 1) is predicted to win.
    pub fn is_cooperative(&self) -> bool {
        self.gpu_fraction > 0.0 && self.gpu_fraction < 1.0
    }
}

/// Decomposed time model of one device: `time(share) = fixed + var × share`.
#[derive(Debug, Clone, Copy)]
struct LinearTime {
    fixed: f64,
    var: f64,
}

impl LinearTime {
    fn at(&self, share: f64) -> f64 {
        if share <= 0.0 {
            0.0
        } else {
            self.fixed + self.var * share
        }
    }
}

/// Builds the host-side linear time model from the CPU prediction:
/// overheads are fixed, chunk work scales with the share of iterations.
fn cpu_linear(
    kernel: &Kernel,
    binding: &Binding,
    platform: &Platform,
    trip_mode: TripMode,
) -> Option<LinearTime> {
    let p = hetsel_models::cpu::predict(
        kernel,
        binding,
        &platform.cpu_model,
        platform.host_threads,
        trip_mode,
    )?;
    let m = &platform.cpu_model;
    let threads = u64::from(platform.host_threads).min(kernel.parallel_iterations(binding)?) as f64;
    let fixed_cycles = m.par_startup
        + m.fork_per_thread * threads
        + m.schedule_overhead_static
        + m.synchronization_overhead;
    let fixed = fixed_cycles / (m.freq_ghz * 1e9);
    let var = (p.seconds - fixed).max(0.0);
    Some(LinearTime { fixed, var })
}

/// Builds the GPU-side linear time model: launch overhead and transfers of
/// *unsliceable* arrays are fixed; kernel cycles and sliceable transfers
/// scale with the share. An array is sliceable when its outermost dimension
/// is indexed (only) by the outermost parallel loop variable — each side
/// can then map just its row range, as cooperative implementations do.
fn gpu_linear(
    kernel: &Kernel,
    binding: &Binding,
    platform: &Platform,
    trip_mode: TripMode,
    coal_mode: CoalescingMode,
) -> Option<LinearTime> {
    let g =
        hetsel_models::gpu::predict(kernel, binding, &platform.gpu_model, trip_mode, coal_mode)?;
    let dev = &platform.gpu_model.device;

    // Classify each array: sliceable iff every access's outermost index
    // expression is exactly the outermost parallel variable.
    let outer_var = kernel.parallel_loops().first().map(|l| l.var)?;
    let info = analyze(kernel);
    let mut sliceable = vec![true; kernel.arrays.len()];
    let mut touched = vec![false; kernel.arrays.len()];
    let mut mark = |r: &hetsel_ir::ArrayRef| {
        touched[r.array.0] = true;
        let ok = matches!(r.index.first(), Some(hetsel_ir::Expr::Var(v)) if *v == outer_var)
            && r.index.len() == kernel.array(r.array).extents.len();
        if !ok {
            sliceable[r.array.0] = false;
        }
    };
    kernel.walk_assigns(|_, a| {
        a.rhs.for_each_load(&mut mark);
        if let hetsel_ir::Lhs::Array(r) = &a.lhs {
            mark(r);
        }
    });
    let _ = info;

    let mut fixed_bytes = 0.0;
    let mut var_bytes = 0.0;
    for (i, decl) in kernel.arrays.iter().enumerate() {
        let bytes = decl.bytes(binding)? as f64;
        let ways =
            f64::from(u8::from(decl.transfer.to_device()) + u8::from(decl.transfer.from_device()));
        if touched[i] && sliceable[i] {
            var_bytes += bytes * ways;
        } else {
            fixed_bytes += bytes * ways;
        }
    }
    let bw = dev.bus.bandwidth_gbs * 1e9;
    let fixed = dev.launch_overhead_us * 1e-6 + dev.bus.latency_us * 1e-6 * 2.0 + fixed_bytes / bw;
    let var = g.kernel_seconds + var_bytes / bw;
    Some(LinearTime { fixed, var })
}

/// Finds the best GPU fraction on a uniform grid (the decision remains a
/// handful of closed-form evaluations).
pub fn best_split(
    kernel: &Kernel,
    binding: &Binding,
    platform: &Platform,
    steps: u32,
) -> Option<SplitDecision> {
    let cpu = cpu_linear(kernel, binding, platform, TripMode::Runtime)?;
    let gpu = gpu_linear(
        kernel,
        binding,
        platform,
        TripMode::Runtime,
        CoalescingMode::Ipda,
    )?;
    let steps = steps.max(2);
    let mut best = (1.0, gpu.at(1.0)); // pure GPU as the starting candidate
    for s in 0..=steps {
        let f = f64::from(s) / f64::from(steps);
        let t = gpu.at(f).max(cpu.at(1.0 - f));
        if t < best.1 {
            best = (f, t);
        }
    }
    Some(SplitDecision {
        gpu_fraction: best.0,
        predicted_s: best.1,
        host_only_s: cpu.at(1.0),
        gpu_only_s: gpu.at(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_polybench::{find_kernel, Dataset};

    fn split(name: &str, ds: Dataset) -> SplitDecision {
        let (k, binding) = find_kernel(name).unwrap();
        best_split(&k, &binding(ds), &Platform::power9_v100(), 64).unwrap()
    }

    #[test]
    fn split_never_worse_than_either_pure_choice() {
        for name in ["gemm", "2dconv", "atax.k1", "corr.corr", "syrk"] {
            for ds in [Dataset::Test, Dataset::Benchmark] {
                let d = split(name, ds);
                assert!(
                    d.predicted_s <= d.host_only_s + 1e-12 && d.predicted_s <= d.gpu_only_s + 1e-12,
                    "{name}/{ds}: split {:?}",
                    d
                );
                assert!((0.0..=1.0).contains(&d.gpu_fraction));
            }
        }
    }

    #[test]
    fn balanced_kernels_choose_a_strict_split() {
        // corr.std benchmark is a near-tie between devices: cooperation
        // should beat both.
        let d = split("corr.std", Dataset::Benchmark);
        assert!(d.is_cooperative(), "{d:?}");
        assert!(d.gain_over_best_single() > 1.05, "{d:?}");
    }

    #[test]
    fn lopsided_kernels_stay_single_device() {
        // Benchmark GEMM is overwhelmingly GPU-favoured: nearly everything
        // should go to the GPU.
        let d = split("gemm", Dataset::Benchmark);
        assert!(d.gpu_fraction > 0.85, "{d:?}");
    }

    #[test]
    fn fraction_grid_is_monotone_in_resolution() {
        let (k, binding) = find_kernel("2dconv").unwrap();
        let b = binding(Dataset::Benchmark);
        let p = Platform::power9_v100();
        let coarse = best_split(&k, &b, &p, 4).unwrap();
        let fine = best_split(&k, &b, &p, 256).unwrap();
        assert!(fine.predicted_s <= coarse.predicted_s + 1e-12);
    }
}
