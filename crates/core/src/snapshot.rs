//! Persistent compiled-model snapshots.
//!
//! Compiling an [`AttributeDatabase`](crate::AttributeDatabase) is the cold
//! path of the whole framework: IPDA, the MCA scheduling analysis, the
//! instruction-loadout lowering and the expression compiler all run per
//! region × device. This module persists the *result* of that work — every
//! compiled artifact the decide path needs — in a versioned binary container
//! so a fresh process reloads in microseconds instead of recompiling.
//!
//! ## Container format (DESIGN.md §3.10)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "HSNP"
//! 4       2     format version, u16 LE
//! 6       1     payload kind (1 = attribute database, 2 = calibration)
//! 7       8     fleet model-parameter fingerprint, u64 LE (0 = none)
//! 15      8     payload length, u64 LE
//! 23      8     FNV/fmix64 checksum of the payload, u64 LE
//! 31      ...   payload
//! ```
//!
//! The checksum is a word-folded FNV with a length fold and the MurmurHash3
//! `fmix64` finalizer — the same hash family as the decision cache's key
//! (`CacheKey`), so one hashing discipline covers both the hot path and the
//! persistence path. The fingerprint binds an attribute-database snapshot to
//! the exact model configuration (host parameters, thread count, trip and
//! coalescing modes, and every fleet accelerator's parameter sheet) it was
//! compiled under: loading a snapshot into a differently-configured selector
//! is a typed error, never a silently wrong model.
//!
//! The attribute-database payload (format v2) is a region *index* — count,
//! then `(name, blob_len)` per region in name order — followed by the
//! regions' blobs, concatenated. Each blob stores its kernel once (the
//! region's compiled models share the decoded copy) and decodes
//! independently of every other blob, which is what makes near-zero-cost
//! reload possible: a load validates the container and parses the index,
//! then materializes a region only when it is first asked about. A fresh
//! process answering one request decodes one region, not the suite.
//!
//! Every failure mode — short read, foreign file, stale version, flipped
//! bit, wrong fleet — maps to a distinct [`SnapshotError`] variant and the
//! callers fall back to a full recompile; corruption can cost time, never
//! correctness.

use hetsel_ir::SnapError;
use std::fmt;

/// Why a snapshot could not be used. Callers treat every variant the same
/// way — recompile from source IR — but the variant names the root cause
/// for logs and metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The snapshot file could not be read or written.
    Io(String),
    /// The container or payload failed validation (bad magic, stale
    /// version, checksum or fingerprint mismatch, malformed payload).
    Format(SnapError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Format(e) => write!(f, "snapshot format error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapError> for SnapshotError {
    fn from(e: SnapError) -> SnapshotError {
        SnapshotError::Format(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e.to_string())
    }
}
