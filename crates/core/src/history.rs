//! Profile feedback: letting observed runtimes refine future decisions.
//!
//! The paper's related-work discussion concedes that profiling "could
//! compliment our methodology by feeding the program attribute database
//! with more actionable data over time" (§V.A). This module implements
//! that complement: a [`ProfileHistory`] records the measured outcome of
//! each (region, binding) execution, and an [`AdaptiveSelector`] prefers
//! remembered ground truth over the analytical prediction when available —
//! falling back to the models for never-seen configurations, so the
//! zero-profile cold-start property of the paper's approach is preserved.

use crate::selector::{Decision, Device, Measured, Policy, Selector};
use hetsel_ir::{Binding, Kernel};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Key identifying one runtime configuration of a region.
fn key(region: &str, binding: &Binding) -> String {
    format!("{region}@{binding}")
}

/// A remembered execution outcome.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct HistoryRecord {
    /// Host time observed, seconds.
    pub cpu_s: f64,
    /// GPU time observed, seconds.
    pub gpu_s: f64,
    /// How many observations were folded in.
    pub samples: u32,
}

impl HistoryRecord {
    /// The faster device according to the record.
    pub fn best_device(&self) -> Device {
        if self.cpu_s <= self.gpu_s {
            Device::Host
        } else {
            Device::Gpu
        }
    }
}

/// Thread-safe store of observed outcomes, keyed by region and binding.
#[derive(Debug, Default)]
pub struct ProfileHistory {
    records: RwLock<HashMap<String, HistoryRecord>>,
}

impl ProfileHistory {
    /// An empty history.
    pub fn new() -> ProfileHistory {
        ProfileHistory::default()
    }

    /// Folds an observation into the history (running average).
    pub fn observe(&self, region: &str, binding: &Binding, measured: Measured) {
        let mut map = self.records.write();
        let e = map.entry(key(region, binding)).or_insert(HistoryRecord {
            cpu_s: measured.cpu_s,
            gpu_s: measured.gpu_s,
            samples: 0,
        });
        let n = f64::from(e.samples);
        e.cpu_s = (e.cpu_s * n + measured.cpu_s) / (n + 1.0);
        e.gpu_s = (e.gpu_s * n + measured.gpu_s) / (n + 1.0);
        e.samples += 1;
    }

    /// Looks up the record for a configuration.
    pub fn lookup(&self, region: &str, binding: &Binding) -> Option<HistoryRecord> {
        self.records.read().get(&key(region, binding)).copied()
    }

    /// Number of distinct configurations remembered.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// True if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// Serialisable snapshot (persist alongside the attribute database).
    pub fn export(&self) -> HistoryExport {
        let map = self.records.read();
        let mut entries: Vec<(String, HistoryRecord)> =
            map.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        HistoryExport { entries }
    }

    /// Restores a snapshot.
    pub fn import(export: &HistoryExport) -> ProfileHistory {
        let h = ProfileHistory::new();
        {
            let mut map = h.records.write();
            for (k, v) in &export.entries {
                map.insert(k.clone(), *v);
            }
        }
        h
    }
}

/// Serialisable form of a [`ProfileHistory`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct HistoryExport {
    /// `(key, record)` pairs in key order.
    pub entries: Vec<(String, HistoryRecord)>,
}

/// A selector that layers profile feedback over the analytical models.
#[derive(Debug)]
pub struct AdaptiveSelector {
    /// The underlying model-driven selector.
    pub selector: Selector,
    /// Observed outcomes.
    pub history: ProfileHistory,
}

impl AdaptiveSelector {
    /// Wraps a selector with an empty history.
    pub fn new(selector: Selector) -> AdaptiveSelector {
        AdaptiveSelector {
            selector,
            history: ProfileHistory::new(),
        }
    }

    /// Decides: remembered ground truth wins; otherwise the models decide.
    pub fn select(&self, kernel: &Kernel, binding: &Binding) -> Decision {
        if let Some(rec) = self.history.lookup(&kernel.name, binding) {
            return Decision {
                region: kernel.name.clone(),
                device: rec.best_device(),
                policy: Policy::ModelDriven,
                predicted_cpu_s: Some(rec.cpu_s),
                predicted_gpu_s: Some(rec.gpu_s),
                cpu_error: None,
                gpu_error: None,
            };
        }
        self.selector.select_kernel(kernel, binding)
    }

    /// Executes (simulates) under the current decision and feeds the
    /// outcome back; returns the decision and what it cost.
    pub fn run_and_learn(&self, kernel: &Kernel, binding: &Binding) -> Option<(Decision, f64)> {
        let d = self.select(kernel, binding);
        let m = self.selector.measure(kernel, binding)?;
        self.history.observe(&kernel.name, binding, m);
        Some((d.clone(), m.on(d.device)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use hetsel_polybench::{find_kernel, Dataset};

    #[test]
    fn observe_and_lookup_roundtrip() {
        let h = ProfileHistory::new();
        let b = Binding::new().with("n", 100);
        assert!(h.lookup("k", &b).is_none());
        h.observe(
            "k",
            &b,
            Measured {
                cpu_s: 2.0,
                gpu_s: 1.0,
            },
        );
        let r = h.lookup("k", &b).unwrap();
        assert_eq!(r.best_device(), Device::Gpu);
        assert_eq!(r.samples, 1);
        // Different binding: separate record.
        assert!(h.lookup("k", &Binding::new().with("n", 200)).is_none());
    }

    #[test]
    fn observations_average() {
        let h = ProfileHistory::new();
        let b = Binding::new().with("n", 1);
        h.observe(
            "k",
            &b,
            Measured {
                cpu_s: 1.0,
                gpu_s: 3.0,
            },
        );
        h.observe(
            "k",
            &b,
            Measured {
                cpu_s: 3.0,
                gpu_s: 1.0,
            },
        );
        let r = h.lookup("k", &b).unwrap();
        assert_eq!(r.samples, 2);
        assert!((r.cpu_s - 2.0).abs() < 1e-12);
        assert!((r.gpu_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn export_import_roundtrip() {
        let h = ProfileHistory::new();
        h.observe(
            "a",
            &Binding::new().with("n", 5),
            Measured {
                cpu_s: 1.0,
                gpu_s: 2.0,
            },
        );
        h.observe(
            "b",
            &Binding::new().with("m", 7),
            Measured {
                cpu_s: 4.0,
                gpu_s: 3.0,
            },
        );
        let json = serde_json::to_string(&h.export()).unwrap();
        let back = ProfileHistory::import(&serde_json::from_str(&json).unwrap());
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.lookup("a", &Binding::new().with("n", 5))
                .unwrap()
                .gpu_s,
            2.0
        );
    }

    /// One observation corrects the paper's convolution misprediction: the
    /// model keeps 3dconv on the host, the measurement flips it to the GPU
    /// for every subsequent launch.
    #[test]
    fn feedback_fixes_the_conv_misprediction() {
        let (kernel, binding) = find_kernel("3dconv").unwrap();
        let b = binding(Dataset::Benchmark);
        let adaptive = AdaptiveSelector::new(Selector::new(Platform::power9_v100()));

        let first = adaptive.select(&kernel, &b);
        assert_eq!(first.device, Device::Host, "cold start follows the model");

        adaptive.run_and_learn(&kernel, &b).unwrap();
        let second = adaptive.select(&kernel, &b);
        assert_eq!(second.device, Device::Gpu, "history corrects the model");
    }
}
