//! Profile feedback: letting observed runtimes refine future decisions.
//!
//! The paper's related-work discussion concedes that profiling "could
//! compliment our methodology by feeding the program attribute database
//! with more actionable data over time" (§V.A). This module implements
//! that complement: a [`ProfileHistory`] records the measured outcome of
//! each (region, binding) execution, and an [`AdaptiveSelector`] feeds
//! every measurement into the online [`Calibrator`] —
//! the corrected models then decide. Never-seen configurations have no
//! published correction (factor exactly 1.0), so the zero-profile
//! cold-start property of the paper's approach is preserved bit for bit.

use crate::calib::{CalibrationMode, Calibrator, CalibratorConfig};
use crate::selector::{Decision, Device, Measured, Selector};
use hetsel_ir::{Binding, Kernel};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Key identifying one runtime configuration of a region, scoped to the
/// parameters the region actually depends on.
///
/// The original key stringified the *whole* binding, so two semantically
/// identical configurations — same region, same values for every parameter
/// the region reads — produced different keys whenever the surrounding
/// program bound extra, irrelevant symbols (a shared binding table is the
/// normal case in a multi-region program). Profile feedback then silently
/// never hit. The key is now built from the region's own parameter list:
/// irrelevant symbols cannot perturb it, unbound required parameters are
/// recorded explicitly (`p=?`), and the parameter list is normalised
/// (sorted, deduplicated) so callers need not agree on ordering.
fn scoped_key(region: &str, params: &[String], binding: &Binding) -> String {
    let mut parts: Vec<String> = params
        .iter()
        .map(|p| match binding.get(p) {
            Some(v) => format!("{p}={v}"),
            None => format!("{p}=?"),
        })
        .collect();
    parts.sort();
    parts.dedup();
    format!("{region}@{{{}}}", parts.join(","))
}

/// As [`scoped_key`], additionally scoped to a fleet device label — the
/// key shape for per-device records in an N-device fleet, where a bare
/// "accelerator time" is ambiguous. Both key families coexist in one
/// history (and one [`HistoryExport`]): `region@{…}` for kind-level pair
/// records, `region@{…}::<device>` for device-scoped ones.
fn scoped_device_key(region: &str, params: &[String], binding: &Binding, device: &str) -> String {
    format!("{}::{device}", scoped_key(region, params, binding))
}

/// A remembered execution outcome.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct HistoryRecord {
    /// Host time observed, seconds.
    pub cpu_s: f64,
    /// GPU time observed, seconds.
    pub gpu_s: f64,
    /// How many observations were folded in.
    pub samples: u32,
}

impl HistoryRecord {
    /// The faster device according to the record.
    pub fn best_device(&self) -> Device {
        if self.cpu_s <= self.gpu_s {
            Device::Host
        } else {
            Device::Gpu
        }
    }
}

/// Thread-safe store of observed outcomes, keyed by region and binding.
#[derive(Debug, Default)]
pub struct ProfileHistory {
    records: RwLock<HashMap<String, HistoryRecord>>,
}

impl ProfileHistory {
    /// An empty history.
    pub fn new() -> ProfileHistory {
        ProfileHistory::default()
    }

    /// The canonical fold, device-scoped: `device: None` updates the
    /// kind-level pair record, `Some(label)` the record scoped to the
    /// named fleet device (e.g. `"v100"`). Every other observe spelling
    /// is a thin wrapper over this one. `params` is the region's
    /// parameter list (e.g. [`Kernel::params`]); symbols in `binding`
    /// outside it do not affect which record is updated.
    pub fn observe_on(
        &self,
        region: &str,
        params: &[String],
        binding: &Binding,
        device: Option<&str>,
        measured: Measured,
    ) {
        let key = match device {
            None => scoped_key(region, params, binding),
            Some(d) => scoped_device_key(region, params, binding, d),
        };
        let mut map = self.records.write();
        let e = map.entry(key).or_insert(HistoryRecord {
            cpu_s: measured.cpu_s,
            gpu_s: measured.gpu_s,
            samples: 0,
        });
        let n = f64::from(e.samples);
        e.cpu_s = (e.cpu_s * n + measured.cpu_s) / (n + 1.0);
        e.gpu_s = (e.gpu_s * n + measured.gpu_s) / (n + 1.0);
        e.samples += 1;
    }

    /// Folds a kind-level observation into the history (running average):
    /// [`ProfileHistory::observe_on`] with no device scope.
    pub fn observe(&self, region: &str, params: &[String], binding: &Binding, measured: Measured) {
        self.observe_on(region, params, binding, None, measured);
    }

    /// Folds a *device-scoped* observation: [`ProfileHistory::observe_on`]
    /// with the named fleet device. The measurement's accelerator side was
    /// taken on that device, and only lookups naming the same device
    /// ([`ProfileHistory::lookup_for`]) see it; kind-level records are
    /// untouched.
    pub fn observe_for(
        &self,
        region: &str,
        params: &[String],
        binding: &Binding,
        device: &str,
        measured: Measured,
    ) {
        self.observe_on(region, params, binding, Some(device), measured);
    }

    /// The canonical lookup, device-scoped exactly like
    /// [`ProfileHistory::observe_on`]: `None` resolves the kind-level pair
    /// record, `Some(label)` the device-scoped one. Hits and misses are
    /// counted under `hetsel.core.history.lookup.{hit,miss}`.
    pub fn lookup_on(
        &self,
        region: &str,
        params: &[String],
        binding: &Binding,
        device: Option<&str>,
    ) -> Option<HistoryRecord> {
        let key = match device {
            None => scoped_key(region, params, binding),
            Some(d) => scoped_device_key(region, params, binding, d),
        };
        let found = self.records.read().get(&key).copied();
        match found {
            Some(_) => hetsel_obs::static_counter!("hetsel.core.history.lookup.hit").inc(),
            None => hetsel_obs::static_counter!("hetsel.core.history.lookup.miss").inc(),
        }
        found
    }

    /// Looks up the kind-level record for a configuration:
    /// [`ProfileHistory::lookup_on`] with no device scope.
    pub fn lookup(
        &self,
        region: &str,
        params: &[String],
        binding: &Binding,
    ) -> Option<HistoryRecord> {
        self.lookup_on(region, params, binding, None)
    }

    /// Device-scoped counterpart of [`ProfileHistory::lookup`]:
    /// [`ProfileHistory::lookup_on`] with the named device — only records
    /// written under the same device label resolve.
    pub fn lookup_for(
        &self,
        region: &str,
        params: &[String],
        binding: &Binding,
        device: &str,
    ) -> Option<HistoryRecord> {
        self.lookup_on(region, params, binding, Some(device))
    }

    /// Number of distinct configurations remembered.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// True if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// Serialisable snapshot (persist alongside the attribute database).
    pub fn export(&self) -> HistoryExport {
        let map = self.records.read();
        let mut entries: Vec<(String, HistoryRecord)> =
            map.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        HistoryExport { entries }
    }

    /// Restores a snapshot.
    pub fn import(export: &HistoryExport) -> ProfileHistory {
        let h = ProfileHistory::new();
        {
            let mut map = h.records.write();
            for (k, v) in &export.entries {
                map.insert(k.clone(), *v);
            }
        }
        h
    }
}

/// Serialisable form of a [`ProfileHistory`].
///
/// # Export schema
///
/// The document is one `entries` array of `[key, record]` pairs, sorted
/// by key. Two key families coexist in the same export:
///
/// * `region@{p1=v1,p2=?}` — kind-level pair records written by
///   [`ProfileHistory::observe`]; `gpu_s` is the accelerator-kind time
///   (the primary accelerator on an N-device fleet).
/// * `region@{p1=v1,p2=?}::<device>` — device-scoped records written by
///   [`ProfileHistory::observe_for`]; `gpu_s` was measured on the named
///   fleet device (e.g. `::v100`), `cpu_s` on the host.
///
/// Parameter lists inside `{…}` are sorted and deduplicated, and unbound
/// required parameters appear as `p=?`, so semantically equal
/// configurations always share a key. Each record is
/// `{"cpu_s": f64, "gpu_s": f64, "samples": u32}` holding running
/// averages over `samples` observations. [`ProfileHistory::import`]
/// restores both families losslessly; `import(export()).export()` is
/// byte-identical (see the `device_scoped_records_roundtrip_through_export`
/// test).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct HistoryExport {
    /// `(key, record)` pairs in key order.
    pub entries: Vec<(String, HistoryRecord)>,
}

/// A selector that layers profile feedback over the analytical models —
/// since the calibration redesign, a thin harness over the shared
/// [`Calibrator`]: measurements feed per-`(region, device, binding-class)`
/// corrections, and [`AdaptiveSelector::select`] is simply the calibrated
/// [`Selector::decide`]. The old private history-beats-model heuristic is
/// gone; what replaced it generalises it (the greedy calibration profile
/// trusts a single observation fully, so one measurement still corrects a
/// misprediction) while keeping every decision on the one decision path —
/// explainable, cacheable, and observable like any other.
#[derive(Debug)]
pub struct AdaptiveSelector {
    /// The underlying selector, in Active calibration mode with the
    /// greedy profile ([`CalibratorConfig::greedy`]).
    pub selector: Selector,
    /// Observed outcomes, kept as the exportable record of what was
    /// measured (the calibrator holds the derived corrections; see
    /// [`Calibrator::snapshot`] / [`Calibrator::absorb`] for persisting
    /// those directly).
    pub history: ProfileHistory,
}

impl AdaptiveSelector {
    /// Wraps a selector with an empty history and a fresh greedy
    /// calibrator in Active mode (replacing whatever calibration the
    /// selector carried): no sample gate, no clamp — after one measured
    /// run the corrected prediction *is* the observation.
    pub fn new(selector: Selector) -> AdaptiveSelector {
        AdaptiveSelector {
            selector: selector
                .with_calibration(CalibrationMode::Active)
                .with_calibrator(Arc::new(Calibrator::new(CalibratorConfig::greedy()))),
            history: ProfileHistory::new(),
        }
    }

    /// Decides through the calibrated models: configurations that have
    /// been measured decide on their corrected (observation-equal, under
    /// the greedy profile) predictions; never-seen ones are bit-for-bit
    /// the uncalibrated model decision.
    pub fn select(&self, kernel: &Kernel, binding: &Binding) -> Decision {
        self.selector.decide(kernel, binding)
    }

    /// Executes (simulates) under the current decision and feeds the
    /// outcome back; returns the decision and what it cost.
    ///
    /// Three sinks learn from every measurement: the [`ProfileHistory`]
    /// folds the raw outcome, the shared [`Calibrator`] folds one
    /// raw-prediction-vs-observed sample per device side the decision's
    /// [`CalibrationTag`](crate::CalibrationTag) carries (this is what
    /// future [`AdaptiveSelector::select`] calls decide on), and the
    /// process-wide accuracy observatory ([`hetsel_obs::accuracy()`])
    /// scores prediction quality, with the misprediction flip (decided
    /// side ≠ measured-fastest side) charged to the side the decision
    /// chose.
    pub fn run_and_learn(&self, kernel: &Kernel, binding: &Binding) -> Option<(Decision, f64)> {
        let d = self.select(kernel, binding);
        let m = self.selector.measure(kernel, binding)?;
        self.history
            .observe(&kernel.name, &kernel.params(), binding, m);
        if let Some(tag) = d.calibration {
            let cal = self.selector.calibrator();
            let fleet = self.selector.fleet();
            if let Some(raw) = tag.raw_cpu_s {
                cal.observe(
                    &kernel.name,
                    fleet.host_label_arc(),
                    tag.class,
                    raw,
                    m.cpu_s,
                );
            }
            if let (Some(raw), Some(id)) = (tag.raw_gpu_s, fleet.primary_accelerator()) {
                cal.observe(
                    &kernel.name,
                    fleet.label_arc(id).expect("primary id resolves"),
                    tag.class,
                    raw,
                    m.gpu_s,
                );
            }
        }
        let observed_best = if m.cpu_s <= m.gpu_s {
            Device::Host
        } else {
            Device::Gpu
        };
        let flip = d.device != observed_best;
        let fleet = self.selector.fleet();
        if let Some(p) = d.predicted_cpu_s {
            hetsel_obs::accuracy().observe(
                &kernel.name,
                fleet.host_label_arc(),
                p,
                m.cpu_s,
                flip && d.device == Device::Host,
            );
        }
        if let (Some(p), Some(id)) = (d.predicted_gpu_s, fleet.primary_accelerator()) {
            hetsel_obs::accuracy().observe(
                &kernel.name,
                fleet.label_arc(id).expect("primary id resolves"),
                p,
                m.gpu_s,
                flip && d.device == Device::Gpu,
            );
        }
        Some((d.clone(), m.on(d.device)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use hetsel_polybench::{find_kernel, Dataset};

    fn params(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn observe_and_lookup_roundtrip() {
        let h = ProfileHistory::new();
        let p = params(&["n"]);
        let b = Binding::new().with("n", 100);
        assert!(h.lookup("k", &p, &b).is_none());
        h.observe(
            "k",
            &p,
            &b,
            Measured {
                cpu_s: 2.0,
                gpu_s: 1.0,
            },
        );
        let r = h.lookup("k", &p, &b).unwrap();
        assert_eq!(r.best_device(), Device::Gpu);
        assert_eq!(r.samples, 1);
        // Different binding: separate record.
        assert!(h.lookup("k", &p, &Binding::new().with("n", 200)).is_none());
    }

    /// The key-normalisation fix: bindings that agree on every parameter the
    /// region reads must hit the same record, no matter what irrelevant
    /// symbols the surrounding program bound, in what order the parameter
    /// list arrives, or whether it carries duplicates.
    #[test]
    fn semantically_equal_bindings_share_a_record() {
        let h = ProfileHistory::new();
        let m = Measured {
            cpu_s: 1.0,
            gpu_s: 2.0,
        };
        let clean = Binding::new().with("n", 64).with("m", 8);
        h.observe("k", &params(&["n", "m"]), &clean, m);

        // Same configuration, binding padded with unrelated symbols.
        let padded = clean
            .clone()
            .with("other_region_extent", 4096)
            .with("zz", 1);
        let r = h
            .lookup("k", &params(&["n", "m"]), &padded)
            .expect("padded binding must hit");
        assert_eq!(r.samples, 1);

        // Parameter list order and duplicates are immaterial.
        assert!(h.lookup("k", &params(&["m", "n", "n"]), &clean).is_some());

        // A padded *observation* folds into the same record too.
        h.observe("k", &params(&["m", "n"]), &padded, m);
        assert_eq!(h.len(), 1);
        assert_eq!(
            h.lookup("k", &params(&["n", "m"]), &clean).unwrap().samples,
            2
        );

        // But changing a *relevant* value still separates records.
        let other = clean.clone().with("n", 65);
        assert!(h.lookup("k", &params(&["n", "m"]), &other).is_none());
    }

    #[test]
    fn lookup_hits_and_misses_are_counted() {
        let h = ProfileHistory::new();
        let p = params(&["n"]);
        let b = Binding::new().with("n", 7);
        let registry = hetsel_obs::registry();
        let hits = registry.counter("hetsel.core.history.lookup.hit");
        let misses = registry.counter("hetsel.core.history.lookup.miss");
        let (h0, m0) = (hits.get(), misses.get());
        h.lookup("k", &p, &b);
        h.observe(
            "k",
            &p,
            &b,
            Measured {
                cpu_s: 1.0,
                gpu_s: 2.0,
            },
        );
        h.lookup("k", &p, &b);
        assert!(hits.get() > h0, "hit counted");
        assert!(misses.get() > m0, "miss counted");
    }

    #[test]
    fn observations_average() {
        let h = ProfileHistory::new();
        let p = params(&["n"]);
        let b = Binding::new().with("n", 1);
        h.observe(
            "k",
            &p,
            &b,
            Measured {
                cpu_s: 1.0,
                gpu_s: 3.0,
            },
        );
        h.observe(
            "k",
            &p,
            &b,
            Measured {
                cpu_s: 3.0,
                gpu_s: 1.0,
            },
        );
        let r = h.lookup("k", &p, &b).unwrap();
        assert_eq!(r.samples, 2);
        assert!((r.cpu_s - 2.0).abs() < 1e-12);
        assert!((r.gpu_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn export_import_roundtrip() {
        let h = ProfileHistory::new();
        h.observe(
            "a",
            &params(&["n"]),
            &Binding::new().with("n", 5),
            Measured {
                cpu_s: 1.0,
                gpu_s: 2.0,
            },
        );
        h.observe(
            "b",
            &params(&["m"]),
            &Binding::new().with("m", 7),
            Measured {
                cpu_s: 4.0,
                gpu_s: 3.0,
            },
        );
        let json = serde_json::to_string(&h.export()).unwrap();
        let back = ProfileHistory::import(&serde_json::from_str(&json).unwrap());
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.lookup("a", &params(&["n"]), &Binding::new().with("n", 5))
                .unwrap()
                .gpu_s,
            2.0
        );
    }

    #[test]
    fn device_scoped_records_roundtrip_through_export() {
        let h = ProfileHistory::new();
        let p = params(&["n"]);
        let b = Binding::new().with("n", 9);
        h.observe(
            "k",
            &p,
            &b,
            Measured {
                cpu_s: 2.0,
                gpu_s: 1.0,
            },
        );
        h.observe_for(
            "k",
            &p,
            &b,
            "v100",
            Measured {
                cpu_s: 2.0,
                gpu_s: 0.5,
            },
        );
        h.observe_for(
            "k",
            &p,
            &b,
            "k80",
            Measured {
                cpu_s: 2.0,
                gpu_s: 4.0,
            },
        );
        assert_eq!(h.len(), 3, "kind-level and device-scoped records coexist");
        // Device scoping separates records and lookups.
        assert_eq!(
            h.lookup_for("k", &p, &b, "v100").unwrap().best_device(),
            Device::Gpu
        );
        assert_eq!(
            h.lookup_for("k", &p, &b, "k80").unwrap().best_device(),
            Device::Host
        );
        assert!(h.lookup_for("k", &p, &b, "p100").is_none());
        // The kind-level record is untouched by device-scoped observations.
        assert_eq!(h.lookup("k", &p, &b).unwrap().gpu_s, 1.0);
        // Both key families survive an export/import cycle losslessly.
        let json = serde_json::to_string(&h.export()).unwrap();
        let back = ProfileHistory::import(&serde_json::from_str(&json).unwrap());
        assert_eq!(back.export(), h.export(), "export round-trips");
        assert_eq!(back.lookup_for("k", &p, &b, "k80").unwrap().gpu_s, 4.0);
    }

    #[test]
    fn run_and_learn_feeds_the_accuracy_observatory() {
        let (kernel, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Test);
        let adaptive = AdaptiveSelector::new(Selector::new(Platform::power9_v100()));
        adaptive.run_and_learn(&kernel, &b).unwrap();
        let obs = hetsel_obs::accuracy();
        let host = obs.lookup("gemm", "host").expect("host side scored");
        assert!(host.samples >= 1);
        let accel = obs.lookup("gemm", "gpu").expect("accelerator side scored");
        assert!(accel.samples >= 1);
    }

    /// One observation corrects the paper's convolution misprediction: the
    /// model keeps 3dconv on the host, the measurement flips it to the GPU
    /// for every subsequent launch.
    #[test]
    fn feedback_fixes_the_conv_misprediction() {
        let (kernel, binding) = find_kernel("3dconv").unwrap();
        let b = binding(Dataset::Benchmark);
        let adaptive = AdaptiveSelector::new(Selector::new(Platform::power9_v100()));

        let first = adaptive.select(&kernel, &b);
        assert_eq!(first.device, Device::Host, "cold start follows the model");

        adaptive.run_and_learn(&kernel, &b).unwrap();
        let second = adaptive.select(&kernel, &b);
        assert_eq!(second.device, Device::Gpu, "history corrects the model");
    }
}
