//! Experimental platforms: a host, an accelerator, and the model parameter
//! sets describing them.
//!
//! The paper evaluates two machines: POWER8 + Tesla K80 over PCIe 3.0, and
//! POWER9 (AC922) + Tesla V100 over NVLink 2.0. A [`Platform`] bundles the
//! timing simulators (standing in for the hardware) with the analytical
//! models' parameter tables for the same hardware.

use hetsel_cpusim::CpuDescriptor;
use hetsel_gpusim::GpuDescriptor;
use hetsel_models::{CpuModelParams, GpuModelParams};

/// One heterogeneous node: host + accelerator + model parameters.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Display name.
    pub name: &'static str,
    /// Host hardware model (ground truth).
    pub cpu: CpuDescriptor,
    /// Accelerator hardware model (ground truth).
    pub gpu: GpuDescriptor,
    /// Analytical CPU model parameters (Table II).
    pub cpu_model: CpuModelParams,
    /// Analytical GPU model parameters (Table III).
    pub gpu_model: GpuModelParams,
    /// OpenMP threads the host runs with.
    pub host_threads: u32,
}

impl Platform {
    /// The paper's newer platform: POWER9 (AC922) + Tesla V100 on NVLink 2,
    /// host at its full 160 threads.
    pub fn power9_v100() -> Platform {
        Platform {
            name: "POWER9 + V100 (NVLink2)",
            cpu: hetsel_cpusim::power9_host(),
            gpu: hetsel_gpusim::tesla_v100(),
            cpu_model: hetsel_models::power9_params(),
            gpu_model: hetsel_models::v100_params(),
            host_threads: 160,
        }
    }

    /// The intermediate generation: POWER8 + Tesla P100 on NVLink 1.0 (the
    /// "Minsky" S822LC, chronologically between the paper's two systems).
    pub fn power8_p100() -> Platform {
        Platform {
            name: "POWER8 + P100 (NVLink1)",
            cpu: hetsel_cpusim::power8_host(),
            gpu: hetsel_gpusim::tesla_p100(),
            cpu_model: hetsel_models::power8_params(),
            gpu_model: hetsel_models::p100_params(),
            host_threads: 160,
        }
    }

    /// The paper's older platform: POWER8 + Tesla K80 on PCIe 3.0.
    pub fn power8_k80() -> Platform {
        Platform {
            name: "POWER8 + K80 (PCIe3)",
            cpu: hetsel_cpusim::power8_host(),
            gpu: hetsel_gpusim::tesla_k80(),
            cpu_model: hetsel_models::power8_params(),
            gpu_model: hetsel_models::k80_params(),
            host_threads: 160,
        }
    }

    /// An x86 node: dual-socket Skylake Xeon + V100 over PCIe 3.0 — the
    /// host class the paper could not evaluate because of LLVM-MCA's
    /// backend requirements; here it is one more descriptor.
    pub fn xeon_v100() -> Platform {
        let mut gpu = hetsel_gpusim::tesla_v100();
        gpu.bus = hetsel_gpusim::pcie3(); // x86 nodes attach V100s over PCIe
        let mut gpu_model = hetsel_models::v100_params();
        gpu_model.device = gpu.clone();
        Platform {
            name: "Xeon + V100 (PCIe3)",
            cpu: hetsel_cpusim::xeon_host(),
            gpu,
            cpu_model: hetsel_models::cpu::CpuModelParams {
                name: "Xeon Gold 6148",
                freq_ghz: 2.4,
                tlb_entries: 1536,
                tlb_miss_penalty: 20.0,
                page_bytes: 4 * 1024,
                loop_overhead_per_iter: 4.0,
                schedule_overhead_static: 8000.0,
                synchronization_overhead: 3500.0,
                par_startup: 2500.0,
                fork_per_thread: 18_000.0,
                cores: 40,
                smt_benefit: 1.3,
                unroll: 4.0,
                core: hetsel_mca::skylake(),
                outer_loop_vectorization: true,
            },
            gpu_model,
            host_threads: 80,
        }
    }

    /// Same platform with a restricted host thread count (the paper's
    /// 4-thread configuration of Figures 6–7).
    pub fn with_threads(mut self, threads: u32) -> Platform {
        self.host_threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let p9 = Platform::power9_v100();
        assert_eq!(p9.host_threads, 160);
        assert_eq!(p9.cpu.name, "POWER9 (AC922)");
        assert_eq!(p9.gpu.name, "Tesla V100");
        assert_eq!(p9.gpu_model.device.name, "Tesla V100");
        let p8 = Platform::power8_k80();
        assert_eq!(p8.gpu.bus.name, "PCIe 3.0 x16");
    }

    #[test]
    fn xeon_platform_decides_the_suite() {
        use crate::selector::Selector;
        let sel = Selector::new(Platform::xeon_v100());
        // The framework runs end to end on the x86 host the paper could not
        // evaluate: sane decisions on a compute kernel and a tiny kernel.
        let (k, binding) = hetsel_polybench::find_kernel("gemm").unwrap();
        let b = binding(hetsel_polybench::Dataset::Benchmark);
        let d = sel.decide(&k, &b);
        assert_eq!(d.device, crate::selector::Device::Gpu);
        let m = sel.measure(&k, &b).unwrap();
        assert!(m.cpu_s > 0.0 && m.gpu_s > 0.0);
    }

    #[test]
    fn pascal_platform_exists() {
        let p = Platform::power8_p100();
        assert_eq!(p.gpu.name, "Tesla P100");
        assert_eq!(p.gpu.bus.name, "NVLink 1.0");
    }

    #[test]
    fn with_threads_restricts() {
        let p = Platform::power9_v100().with_threads(4);
        assert_eq!(p.host_threads, 4);
    }
}
