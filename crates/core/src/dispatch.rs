//! The fault-tolerant dispatch runtime.
//!
//! [`DecisionEngine`] answers *where* a region should run; [`Dispatcher`]
//! actually *runs* it there — against the timing simulators, which may be
//! carrying a seeded [`FaultPlan`] — and deals with everything the decision
//! layer assumes away:
//!
//! * **Device health**: every execution attempt feeds a per-device circuit
//!   breaker (closed → open after K consecutive failures → half-open probe
//!   with exponential backoff). Breaker time is the dispatcher's *logical
//!   tick clock* (one tick per dispatch), not wall time, so transitions are
//!   deterministic and replayable.
//! * **Retry**: transient faults are retried on the same device up to a
//!   bounded number of attempts, charging exponential backoff to the
//!   simulated time. Permanent faults fail the device over immediately.
//! * **Failover**: when the decided device is broken (breaker open) or
//!   exhausts its attempts, the request degrades to the other device with a
//!   typed [`FallbackReason`]. The host is the last resort and is never
//!   fully load-shed: if every breaker rejects the request, the dispatcher
//!   forces a host probe rather than dropping the request.
//! * **Deadlines**: [`Dispatcher::dispatch_within`] bounds the decision
//!   phase; a missed budget degrades to the compiler default (see
//!   [`DecisionEngine::decide_request`]) and the outcome records it.
//!
//! Under a no-fault plan a dispatch is exactly a decide plus one simulator
//! run: decisions are bit-for-bit those of [`DecisionEngine::decide`], no
//! draws are taken, and none of the dispatcher's fault/retry/fallback
//! counters move.
//!
//! Everything in a [`DispatchOutcome`] is deterministic: same seeds, same
//! request sequence → the same outcomes, bit for bit. Wall-clock latency is
//! only ever exported through the (timing-gated) histogram
//! `hetsel.core.dispatch.ns`, never stored in an outcome.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::attributes::RegionAttributes;
use crate::explain::{DispatchTerms, Explanation};
use crate::selector::{Decision, DecisionEngine, DecisionRequest, Device};
use hetsel_fault::{FaultKind, FaultPlan, InjectedFailure};
use hetsel_ir::Binding;
use parking_lot::Mutex;

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// Logical ticks (dispatches) an open breaker waits before offering a
    /// half-open probe.
    pub open_backoff: u64,
    /// Backoff ceiling: each failed probe doubles the wait, capped here.
    pub max_backoff: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_backoff: 8,
            max_backoff: 256,
        }
    }
}

/// Retry tuning for transient faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Attempts per device per dispatch, including the first (min 1).
    pub max_attempts: u32,
    /// Simulated backoff before the first retry, seconds; doubles per
    /// retry. Charged to [`DispatchOutcome::simulated_s`].
    pub base_backoff_s: f64,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            max_attempts: 3,
            base_backoff_s: 1e-4,
        }
    }
}

/// Full dispatcher configuration: one fault plan per device plus breaker
/// and retry tuning. The default injects no faults at all.
#[derive(Debug, Clone, Default)]
pub struct DispatcherConfig {
    /// Fault plan applied to GPU execution attempts.
    pub gpu_faults: FaultPlan,
    /// Fault plan applied to host execution attempts.
    pub cpu_faults: FaultPlan,
    /// Circuit-breaker tuning (shared by both devices).
    pub breaker: BreakerConfig,
    /// Transient-fault retry tuning.
    pub retry: RetryConfig,
}

impl DispatcherConfig {
    /// Builder: inject `plan` on GPU attempts.
    pub fn with_gpu_faults(mut self, plan: FaultPlan) -> DispatcherConfig {
        self.gpu_faults = plan;
        self
    }

    /// Builder: inject `plan` on host attempts.
    pub fn with_cpu_faults(mut self, plan: FaultPlan) -> DispatcherConfig {
        self.cpu_faults = plan;
        self
    }

    /// Builder: breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> DispatcherConfig {
        self.breaker = breaker;
        self
    }

    /// Builder: retry tuning.
    pub fn with_retry(mut self, retry: RetryConfig) -> DispatcherConfig {
        self.retry = retry;
        self
    }
}

/// Circuit-breaker state (see DESIGN.md §3.4 for the transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow freely.
    Closed,
    /// Tripped: requests are rejected until the backoff elapses.
    Open,
    /// Probing: exactly one request is allowed through; its result decides
    /// between re-opening (with doubled backoff) and closing.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (`"closed"` / `"open"` / `"half_open"`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// The value exported on the `hetsel.core.breaker.<device>.state`
    /// gauge: 0 closed, 1 open, 2 half-open.
    pub fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a dispatch did not (or could not) run where the decision said.
/// The outcome records the *first* reason; every occurrence is counted
/// under `hetsel.core.dispatch.fallback.<metric_key>`.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The decision deadline expired; the request degraded to the compiler
    /// default before any device was tried.
    DeadlineExceeded,
    /// A breaker rejected the request on this device.
    BreakerOpen {
        /// The device whose breaker was open.
        device: Device,
    },
    /// The device exhausted its attempts (or faulted permanently).
    DeviceFault {
        /// The faulting device.
        device: Device,
        /// The final fault kind on that device.
        kind: FaultKind,
    },
}

impl FallbackReason {
    /// Stable dotted suffix for the fallback counter.
    pub fn metric_key(&self) -> &'static str {
        match self {
            FallbackReason::DeadlineExceeded => "deadline_exceeded",
            FallbackReason::BreakerOpen { .. } => "breaker_open",
            FallbackReason::DeviceFault { .. } => "device_fault",
        }
    }
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::DeadlineExceeded => write!(f, "decision deadline exceeded"),
            FallbackReason::BreakerOpen { device } => {
                write!(f, "{device} breaker open")
            }
            FallbackReason::DeviceFault { device, kind } => {
                write!(f, "{kind} fault on {device}")
            }
        }
    }
}

/// How one dispatched request actually ran. Every field is deterministic
/// under fixed seeds — outcomes from two identical runs compare equal with
/// `==`, which is what the soak tests assert.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchOutcome {
    /// The decision that routed the request (deadline degradation
    /// included).
    pub decision: Decision,
    /// The device the request finally ran on (may differ from
    /// `decision.device` after a fallback).
    pub device: Device,
    /// Execution attempts across all devices (≥ 1).
    pub attempts: u32,
    /// Transient-fault retries among those attempts.
    pub retries: u32,
    /// First reason the request left the decided path, if it did.
    pub fallback: Option<FallbackReason>,
    /// Simulated execution time of the successful run, seconds, including
    /// fault-plan jitter and accumulated retry backoff.
    pub simulated_s: f64,
}

impl DispatchOutcome {
    /// True iff the request ran where the decision pointed, first try, no
    /// faults.
    pub fn clean(&self) -> bool {
        self.fallback.is_none() && self.retries == 0 && self.device == self.decision.device
    }
}

/// Why a dispatch produced no execution at all.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// The region is not in the attribute database.
    UnknownRegion {
        /// The unknown region name.
        region: String,
    },
    /// Every candidate device faulted past its retry budget.
    AllDevicesFailed {
        /// The region that could not be run.
        region: String,
    },
    /// The binding does not resolve the region on any device — a modelling
    /// limitation, not a device fault (breakers are not charged).
    Unsimulatable {
        /// The region that could not be simulated.
        region: String,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::UnknownRegion { region } => {
                write!(f, "region `{region}` is not in the attribute database")
            }
            DispatchError::AllDevicesFailed { region } => {
                write!(f, "every device failed executing region `{region}`")
            }
            DispatchError::Unsimulatable { region } => {
                write!(f, "region `{region}` does not resolve on any device")
            }
        }
    }
}

impl std::error::Error for DispatchError {}

/// Point-in-time view of one device's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceHealthSnapshot {
    /// The device observed.
    pub device: Device,
    /// Current breaker state.
    pub state: BreakerState,
    /// Consecutive failures while closed (resets on success).
    pub consecutive_failures: u32,
    /// Successful execution attempts, lifetime.
    pub successes: u64,
    /// Faulted execution attempts, lifetime.
    pub failures: u64,
    /// Times the breaker tripped open (including re-opens from half-open).
    pub trips: u64,
    /// Current open-state backoff, logical ticks.
    pub backoff: u64,
}

/// Mutable breaker core, behind the health record's mutex.
#[derive(Debug)]
struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
    backoff: u64,
    /// True while a half-open probe is in flight (only one is admitted).
    probing: bool,
}

/// One device's health record: the breaker plus lifetime tallies. Tallies
/// are atomics outside the lock so snapshots are cheap.
#[derive(Debug)]
struct DeviceHealth {
    device: Device,
    core: Mutex<BreakerCore>,
    successes: AtomicU64,
    failures: AtomicU64,
    trips: AtomicU64,
}

impl DeviceHealth {
    fn new(device: Device, cfg: &BreakerConfig) -> DeviceHealth {
        hetsel_obs::registry()
            .gauge(&format!("hetsel.core.breaker.{}.state", device.name()))
            .set(BreakerState::Closed.gauge_value());
        DeviceHealth {
            device,
            core: Mutex::new(BreakerCore {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: 0,
                backoff: cfg.open_backoff.max(1),
                probing: false,
            }),
            successes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            trips: AtomicU64::new(0),
        }
    }

    fn publish_state(&self, state: BreakerState) {
        hetsel_obs::registry()
            .gauge(&format!("hetsel.core.breaker.{}.state", self.device.name()))
            .set(state.gauge_value());
    }

    /// May a request execute on this device at logical time `now`? An open
    /// breaker whose backoff elapsed transitions to half-open and admits
    /// exactly one probe.
    fn admit(&self, now: u64) -> bool {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now >= core.opened_at.saturating_add(core.backoff) {
                    core.state = BreakerState::HalfOpen;
                    core.probing = true;
                    self.publish_state(BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if core.probing {
                    false
                } else {
                    core.probing = true;
                    true
                }
            }
        }
    }

    /// Forces an open breaker into a half-open probe regardless of backoff
    /// — the last-resort host path, which is never fully load-shed.
    fn force_probe(&self) {
        let mut core = self.core.lock();
        if core.state == BreakerState::Open {
            core.state = BreakerState::HalfOpen;
            core.probing = true;
            self.publish_state(BreakerState::HalfOpen);
        }
    }

    fn on_success(&self, cfg: &BreakerConfig) {
        self.successes.fetch_add(1, Ordering::Relaxed);
        let mut core = self.core.lock();
        core.consecutive_failures = 0;
        match core.state {
            BreakerState::Closed => {}
            // A successful probe (or a success from a request admitted just
            // before a concurrent trip) heals the breaker and resets the
            // backoff ladder.
            BreakerState::HalfOpen | BreakerState::Open => {
                core.state = BreakerState::Closed;
                core.probing = false;
                core.backoff = cfg.open_backoff.max(1);
                self.publish_state(BreakerState::Closed);
            }
        }
    }

    fn on_failure(&self, cfg: &BreakerConfig, now: u64) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => {
                core.consecutive_failures += 1;
                if core.consecutive_failures >= cfg.failure_threshold.max(1) {
                    core.state = BreakerState::Open;
                    core.opened_at = now;
                    core.backoff = cfg.open_backoff.max(1);
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    hetsel_obs::registry()
                        .counter(&format!("hetsel.core.breaker.{}.trip", self.device.name()))
                        .inc();
                    self.publish_state(BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                // Failed probe: back to open with doubled (capped) backoff.
                core.state = BreakerState::Open;
                core.opened_at = now;
                core.backoff = core.backoff.saturating_mul(2).min(cfg.max_backoff.max(1));
                core.probing = false;
                self.trips.fetch_add(1, Ordering::Relaxed);
                hetsel_obs::registry()
                    .counter(&format!("hetsel.core.breaker.{}.trip", self.device.name()))
                    .inc();
                self.publish_state(BreakerState::Open);
            }
            // A failure from an attempt admitted before the trip: the
            // breaker is already open, nothing more to record.
            BreakerState::Open => {}
        }
    }

    fn snapshot(&self) -> DeviceHealthSnapshot {
        let core = self.core.lock();
        DeviceHealthSnapshot {
            device: self.device,
            state: core.state,
            consecutive_failures: core.consecutive_failures,
            successes: self.successes.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            trips: self.trips.load(Ordering::Relaxed),
            backoff: core.backoff,
        }
    }
}

/// How one execution attempt sequence on a single device ended.
enum ExecFailure {
    /// The device faulted past its retry budget; the final fault kind.
    Fault(FaultKind),
    /// The binding does not resolve — no device fault, breakers untouched.
    Unresolvable,
}

/// The fault-tolerant dispatch runtime: a [`DecisionEngine`] plus the
/// health/retry/failover machinery described in the module docs.
///
/// ```
/// use hetsel_core::{DecisionRequest, Dispatcher, DispatcherConfig, DecisionEngine, Selector, Platform};
///
/// let kernels: Vec<_> = hetsel_polybench::suite().into_iter().flat_map(|b| b.kernels).collect();
/// let engine = DecisionEngine::new(Selector::new(Platform::power9_v100()), &kernels);
/// let dispatcher = Dispatcher::new(engine, DispatcherConfig::default());
/// let binding = hetsel_polybench::find_kernel("gemm").unwrap().1(hetsel_polybench::Dataset::Test);
/// let outcome = dispatcher.dispatch(&DecisionRequest::new("gemm", binding)).unwrap();
/// assert!(outcome.clean() && outcome.simulated_s > 0.0);
/// ```
#[derive(Debug)]
pub struct Dispatcher {
    engine: DecisionEngine,
    config: DispatcherConfig,
    gpu: DeviceHealth,
    cpu: DeviceHealth,
    /// Logical breaker clock: one tick per dispatch.
    clock: AtomicU64,
    /// Fault-plan draw sequence, shared by both devices so every attempt
    /// consumes a unique draw.
    draws: AtomicU64,
}

impl Dispatcher {
    /// Wraps `engine` with the dispatch runtime under `config`.
    pub fn new(engine: DecisionEngine, config: DispatcherConfig) -> Dispatcher {
        let gpu = DeviceHealth::new(Device::Gpu, &config.breaker);
        let cpu = DeviceHealth::new(Device::Host, &config.breaker);
        Dispatcher {
            engine,
            config,
            gpu,
            cpu,
            clock: AtomicU64::new(0),
            draws: AtomicU64::new(0),
        }
    }

    /// The wrapped decision engine.
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The dispatcher's configuration.
    pub fn config(&self) -> &DispatcherConfig {
        &self.config
    }

    /// Current breaker state of `device`.
    pub fn breaker_state(&self, device: Device) -> BreakerState {
        self.health_of(device).core.lock().state
    }

    /// Current health snapshot of `device`.
    pub fn health(&self, device: Device) -> DeviceHealthSnapshot {
        self.health_of(device).snapshot()
    }

    /// Re-publishes both breaker-state gauges (they are also kept current
    /// on every transition); returns the snapshots.
    pub fn publish_health(&self) -> (DeviceHealthSnapshot, DeviceHealthSnapshot) {
        for health in [&self.cpu, &self.gpu] {
            let snapshot = health.snapshot();
            health.publish_state(snapshot.state);
        }
        (self.cpu.snapshot(), self.gpu.snapshot())
    }

    /// Decides and executes `request`: the full fault-tolerant path. See
    /// the module docs for the exact failover order.
    pub fn dispatch(&self, request: &DecisionRequest) -> Result<DispatchOutcome, DispatchError> {
        let _timer = hetsel_obs::static_histogram!("hetsel.core.dispatch.ns").start_timer();
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let (decision, deadline_degraded) =
            self.engine.decide_request_inner(request).ok_or_else(|| {
                DispatchError::UnknownRegion {
                    region: request.region().to_string(),
                }
            })?;
        let attrs = self
            .engine
            .database()
            .region(request.region())
            .expect("region decided, so it is in the database");

        let mut fallback: Option<FallbackReason> = None;
        if deadline_degraded {
            self.note_fallback(&mut fallback, FallbackReason::DeadlineExceeded);
        }
        let mut attempts = 0u32;
        let mut retries = 0u32;
        let mut backoff_s = 0.0f64;
        let mut any_fault = false;
        let mut unresolvable = false;
        let mut host_attempted = false;

        for device in [decision.device, decision.device.other()] {
            let health = self.health_of(device);
            if !health.admit(now) {
                self.note_fallback(&mut fallback, FallbackReason::BreakerOpen { device });
                continue;
            }
            if device == Device::Host {
                host_attempted = true;
            }
            match self.execute(
                device,
                attrs,
                request.binding(),
                now,
                &mut attempts,
                &mut retries,
                &mut backoff_s,
            ) {
                Ok(run_s) => {
                    return Ok(DispatchOutcome {
                        decision,
                        device,
                        attempts,
                        retries,
                        fallback,
                        simulated_s: run_s + backoff_s,
                    })
                }
                Err(ExecFailure::Fault(kind)) => {
                    any_fault = true;
                    self.note_fallback(&mut fallback, FallbackReason::DeviceFault { device, kind });
                }
                Err(ExecFailure::Unresolvable) => unresolvable = true,
            }
        }

        // Last resort: the host is never fully load-shed. If its breaker
        // rejected the request above, force a half-open probe and try once
        // more — a healthy host must complete the request no matter how
        // broken the GPU is.
        if !host_attempted {
            self.cpu.force_probe();
            match self.execute(
                Device::Host,
                attrs,
                request.binding(),
                now,
                &mut attempts,
                &mut retries,
                &mut backoff_s,
            ) {
                Ok(run_s) => {
                    return Ok(DispatchOutcome {
                        decision,
                        device: Device::Host,
                        attempts,
                        retries,
                        fallback,
                        simulated_s: run_s + backoff_s,
                    })
                }
                Err(ExecFailure::Fault(kind)) => {
                    any_fault = true;
                    self.note_fallback(
                        &mut fallback,
                        FallbackReason::DeviceFault {
                            device: Device::Host,
                            kind,
                        },
                    );
                }
                Err(ExecFailure::Unresolvable) => unresolvable = true,
            }
        }

        let region = request.region().to_string();
        if unresolvable && !any_fault {
            Err(DispatchError::Unsimulatable { region })
        } else {
            Err(DispatchError::AllDevicesFailed { region })
        }
    }

    /// As [`Dispatcher::dispatch`], additionally producing the full
    /// [`Explanation`] with its [`DispatchTerms`] filled in: what the models
    /// said, where the request ran, how many attempts it took, and the
    /// breaker states left behind. The model breakdown reflects the
    /// engine's own policy (a `policy_override` on the request changes the
    /// outcome's decision, not the explanation's model evidence).
    pub fn dispatch_explained(
        &self,
        request: &DecisionRequest,
    ) -> Result<(DispatchOutcome, Explanation), DispatchError> {
        let outcome = self.dispatch(request)?;
        let mut explanation = self
            .engine
            .explain(request.region(), request.binding())
            .expect("region dispatched, so it explains");
        explanation.dispatch = Some(DispatchTerms {
            device: outcome.device.name().to_string(),
            attempts: outcome.attempts,
            retries: outcome.retries,
            fallback: outcome.fallback.map(|f| f.metric_key().to_string()),
            simulated_s: outcome.simulated_s,
            gpu_breaker: self.breaker_state(Device::Gpu).name().to_string(),
            cpu_breaker: self.breaker_state(Device::Host).name().to_string(),
        });
        Ok((outcome, explanation))
    }

    /// As [`Dispatcher::dispatch`] with an explicit decision deadline,
    /// overriding any deadline the request already carries.
    pub fn dispatch_within(
        &self,
        request: &DecisionRequest,
        deadline: Duration,
    ) -> Result<DispatchOutcome, DispatchError> {
        self.dispatch(&request.clone().with_deadline(deadline))
    }

    fn health_of(&self, device: Device) -> &DeviceHealth {
        match device {
            Device::Gpu => &self.gpu,
            Device::Host => &self.cpu,
        }
    }

    fn plan_of(&self, device: Device) -> &FaultPlan {
        match device {
            Device::Gpu => &self.config.gpu_faults,
            Device::Host => &self.config.cpu_faults,
        }
    }

    /// Records a fallback event: counts every occurrence, keeps the first
    /// reason for the outcome.
    fn note_fallback(&self, slot: &mut Option<FallbackReason>, reason: FallbackReason) {
        hetsel_obs::registry()
            .counter(&format!(
                "hetsel.core.dispatch.fallback.{}",
                reason.metric_key()
            ))
            .inc();
        if slot.is_none() {
            *slot = Some(reason);
        }
    }

    /// Runs the region on one device with bounded transient retries.
    /// Returns the successful run's simulated seconds (jitter included);
    /// backoff is accumulated into `backoff_s` by the caller's accounting.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        device: Device,
        attrs: &RegionAttributes,
        binding: &Binding,
        now: u64,
        attempts: &mut u32,
        retries: &mut u32,
        backoff_s: &mut f64,
    ) -> Result<f64, ExecFailure> {
        let plan = self.plan_of(device);
        let health = self.health_of(device);
        let platform = &self.engine.selector().platform;
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            *attempts += 1;
            // The no-fault fast path takes no draw: a healthy dispatcher
            // consumes no randomness and leaves the draw sequence (and
            // all fault counters) untouched.
            let seq = if plan.is_none() {
                0
            } else {
                self.draws.fetch_add(1, Ordering::Relaxed)
            };
            let result = match device {
                Device::Host => hetsel_cpusim::simulate_with_faults(
                    &attrs.kernel,
                    binding,
                    &platform.cpu,
                    platform.host_threads,
                    plan,
                    seq,
                )
                .map(|r| r.total_s()),
                Device::Gpu => hetsel_gpusim::simulate_with_faults(
                    &attrs.kernel,
                    binding,
                    &platform.gpu,
                    plan,
                    seq,
                )
                .map(|r| r.total_s()),
            };
            match result {
                Ok(run_s) => {
                    health.on_success(&self.config.breaker);
                    return Ok(run_s);
                }
                Err(InjectedFailure::Unresolvable) => return Err(ExecFailure::Unresolvable),
                Err(InjectedFailure::Fault(fault)) => {
                    hetsel_obs::registry()
                        .counter(&format!("hetsel.core.dispatch.faults.{}", device.name()))
                        .inc();
                    health.on_failure(&self.config.breaker, now);
                    match fault.kind {
                        FaultKind::Transient if attempt < max_attempts => {
                            *retries += 1;
                            hetsel_obs::static_counter!("hetsel.core.dispatch.retries").inc();
                            // Exponential backoff, charged to simulated time
                            // (shift capped well below overflow).
                            *backoff_s += self.config.retry.base_backoff_s
                                * f64::from(1u32 << (attempt - 1).min(20));
                        }
                        kind => return Err(ExecFailure::Fault(kind)),
                    }
                }
                #[allow(unreachable_patterns)]
                Err(_) => return Err(ExecFailure::Unresolvable),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::selector::{Policy, Selector};
    use hetsel_polybench::{find_kernel, Dataset};

    fn engine() -> DecisionEngine {
        let (k, _) = find_kernel("gemm").unwrap();
        DecisionEngine::new(
            Selector::new(Platform::power9_v100()),
            std::slice::from_ref(&k),
        )
    }

    fn gemm_request(ds: Dataset) -> DecisionRequest {
        let (_, binding) = find_kernel("gemm").unwrap();
        DecisionRequest::new("gemm", binding(ds))
    }

    fn breaker() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_backoff: 4,
            max_backoff: 16,
        }
    }

    #[test]
    fn healthy_dispatch_is_exactly_the_decision() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let request = gemm_request(Dataset::Test);
        let outcome = dispatcher.dispatch(&request).unwrap();
        let decision = dispatcher
            .engine()
            .decide("gemm", request.binding())
            .unwrap();
        assert_eq!(outcome.decision, decision);
        assert_eq!(outcome.device, decision.device);
        assert!(outcome.clean());
        assert_eq!((outcome.attempts, outcome.retries), (1, 0));
        assert!(outcome.simulated_s > 0.0);
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Closed);
        assert_eq!(dispatcher.breaker_state(Device::Host), BreakerState::Closed);
    }

    #[test]
    fn unknown_region_is_a_typed_error() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let err = dispatcher
            .dispatch(&DecisionRequest::new("missing", Binding::new()))
            .unwrap_err();
        assert_eq!(
            err,
            DispatchError::UnknownRegion {
                region: "missing".into()
            }
        );
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn unresolvable_binding_is_not_a_device_fault() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let err = dispatcher
            .dispatch(&DecisionRequest::new("gemm", Binding::new()))
            .unwrap_err();
        assert_eq!(
            err,
            DispatchError::Unsimulatable {
                region: "gemm".into()
            }
        );
        // No breaker was charged: the failure is a modelling limitation.
        assert_eq!(dispatcher.health(Device::Gpu).failures, 0);
        assert_eq!(dispatcher.health(Device::Host).failures, 0);
    }

    #[test]
    fn permanent_gpu_fault_fails_over_to_the_host() {
        let config = DispatcherConfig::default()
            .with_gpu_faults(FaultPlan::permanent(7, 1.0))
            .with_breaker(breaker());
        let dispatcher = Dispatcher::new(engine(), config);
        // Benchmark-size gemm decides GPU; the injected fault forces host.
        let outcome = dispatcher
            .dispatch(&gemm_request(Dataset::Benchmark))
            .unwrap();
        assert_eq!(outcome.decision.device, Device::Gpu);
        assert_eq!(outcome.device, Device::Host);
        assert_eq!(
            outcome.fallback,
            Some(FallbackReason::DeviceFault {
                device: Device::Gpu,
                kind: FaultKind::Permanent,
            })
        );
        assert_eq!(outcome.retries, 0, "permanent faults are not retried");
    }

    #[test]
    fn breaker_opens_after_threshold_and_sheds_load() {
        let config = DispatcherConfig::default()
            .with_gpu_faults(FaultPlan::permanent(11, 1.0))
            .with_breaker(breaker());
        let dispatcher = Dispatcher::new(engine(), config);
        let request = gemm_request(Dataset::Benchmark);
        // Three dispatches = three GPU failures = the threshold.
        for _ in 0..3 {
            let outcome = dispatcher.dispatch(&request).unwrap();
            assert_eq!(outcome.device, Device::Host);
        }
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        assert_eq!(dispatcher.health(Device::Gpu).trips, 1);
        // While open, the GPU is not even attempted: the fallback reason
        // becomes BreakerOpen and the host serves directly.
        let outcome = dispatcher.dispatch(&request).unwrap();
        assert_eq!(outcome.device, Device::Host);
        assert_eq!(
            outcome.fallback,
            Some(FallbackReason::BreakerOpen {
                device: Device::Gpu
            })
        );
        assert_eq!(outcome.attempts, 1, "only the host ran");
    }

    #[test]
    fn breaker_recovers_through_a_half_open_probe() {
        // Transient p=1 then p=0 is impossible within one plan, so trip the
        // breaker with a plan, then rebuild a dispatcher sharing no state —
        // instead: use a plan whose failures stop mattering because the
        // backoff admits a probe and the probe's draw is deterministic.
        // Simplest deterministic route: permanent faults to trip it, then
        // verify the half-open transition fires at the right logical tick.
        let config = DispatcherConfig::default()
            .with_gpu_faults(FaultPlan::permanent(13, 1.0))
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                open_backoff: 3,
                max_backoff: 8,
            });
        let dispatcher = Dispatcher::new(engine(), config);
        let request = gemm_request(Dataset::Benchmark);
        for _ in 0..2 {
            dispatcher.dispatch(&request).unwrap();
        }
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        let opened_at = 1u64; // second dispatch, now = 1
                              // Dispatches at now = 2, 3 are still inside the backoff window
                              // (2 and 3 < opened_at + 3 = 4): load-shed, no GPU attempt.
        for _ in 0..2 {
            let outcome = dispatcher.dispatch(&request).unwrap();
            assert_eq!(outcome.attempts, 1);
            assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        }
        // now = 4 = opened_at + backoff: half-open probe admitted; it fails
        // (p=1), so the breaker re-opens with doubled backoff.
        let before = dispatcher.health(Device::Gpu).backoff;
        let outcome = dispatcher.dispatch(&request).unwrap();
        assert!(outcome.attempts > 1, "the probe ran on the GPU");
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        let after = dispatcher.health(Device::Gpu).backoff;
        assert_eq!(after, (before * 2).min(8), "failed probe doubles backoff");
        assert_eq!(dispatcher.health(Device::Gpu).trips, 2);
        let _ = opened_at;
    }

    #[test]
    fn transient_faults_retry_with_backoff() {
        // p=1 transient: every attempt faults, so retries exhaust and the
        // request fails over. Retry accounting must show max_attempts tries.
        let config = DispatcherConfig::default()
            .with_gpu_faults(FaultPlan::transient(17, 1.0))
            .with_retry(RetryConfig {
                max_attempts: 3,
                base_backoff_s: 1e-4,
            })
            .with_breaker(BreakerConfig {
                failure_threshold: 100, // keep the breaker out of this test
                ..breaker()
            });
        let dispatcher = Dispatcher::new(engine(), config);
        let outcome = dispatcher
            .dispatch(&gemm_request(Dataset::Benchmark))
            .unwrap();
        assert_eq!(outcome.device, Device::Host);
        assert_eq!(outcome.attempts, 4, "3 GPU attempts + 1 host attempt");
        assert_eq!(outcome.retries, 2, "two retries after the first fault");
        // The backoff (1e-4 + 2e-4) is charged to simulated time.
        let plain = Dispatcher::new(engine(), DispatcherConfig::default());
        let clean = plain.dispatch(&gemm_request(Dataset::Benchmark)).unwrap();
        // Different device (host vs gpu) — just assert the charge is there.
        assert!(outcome.simulated_s > 0.0 && clean.simulated_s > 0.0);
        assert_eq!(
            outcome.fallback,
            Some(FallbackReason::DeviceFault {
                device: Device::Gpu,
                kind: FaultKind::Transient,
            })
        );
    }

    #[test]
    fn same_seed_same_outcome_sequence() {
        let make = || {
            Dispatcher::new(
                engine(),
                DispatcherConfig::default()
                    .with_gpu_faults(FaultPlan::transient(42, 0.5).with_jitter(1e-4))
                    .with_breaker(breaker()),
            )
        };
        let a = make();
        let b = make();
        let requests: Vec<DecisionRequest> = [Dataset::Mini, Dataset::Test, Dataset::Benchmark]
            .into_iter()
            .cycle()
            .take(30)
            .map(gemm_request)
            .collect();
        let run = |d: &Dispatcher| -> Vec<Result<DispatchOutcome, DispatchError>> {
            requests.iter().map(|r| d.dispatch(r)).collect()
        };
        assert_eq!(run(&a), run(&b), "same seeds must replay bit-for-bit");
    }

    #[test]
    fn deadline_degraded_dispatch_records_the_reason() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let outcome = dispatcher
            .dispatch_within(&gemm_request(Dataset::Test), Duration::ZERO)
            .unwrap();
        assert_eq!(outcome.decision.policy, Policy::AlwaysOffload);
        assert_eq!(outcome.fallback, Some(FallbackReason::DeadlineExceeded));
        assert_eq!(outcome.device, Device::Gpu, "compiler default offloads");
        assert!(outcome.simulated_s > 0.0, "the request still completed");
    }

    #[test]
    fn host_is_never_fully_load_shed() {
        // Both devices permanently faulty: breakers on both trip open.
        // Dispatches keep completing... no — with p=1 everywhere nothing
        // can complete. Instead: host healthy, GPU broken, GPU breaker
        // open, *host* breaker forced open by injecting host faults first
        // is not possible with a healthy host plan. So: trip the host
        // breaker with a host plan that faults only early draws.
        // Deterministic route: host transient p=1 with max_attempts=1 and
        // threshold=1 trips the host breaker on the first host-decided
        // dispatch; after that a forced probe must still reach the host.
        let config = DispatcherConfig::default()
            .with_cpu_faults(FaultPlan::transient(5, 1.0))
            .with_gpu_faults(FaultPlan::permanent(6, 1.0))
            .with_retry(RetryConfig {
                max_attempts: 1,
                base_backoff_s: 0.0,
            })
            .with_breaker(BreakerConfig {
                failure_threshold: 1,
                open_backoff: 1000,
                max_backoff: 1000,
            });
        let dispatcher = Dispatcher::new(engine(), config);
        let request = gemm_request(Dataset::Benchmark);
        // Everything faults: the dispatch fails, both breakers trip.
        let err = dispatcher.dispatch(&request).unwrap_err();
        assert!(matches!(err, DispatchError::AllDevicesFailed { .. }));
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        assert_eq!(dispatcher.breaker_state(Device::Host), BreakerState::Open);
        // Next dispatch: both breakers reject, but the host is force-probed
        // anyway (and faults again — the guarantee is the *attempt*).
        let before = dispatcher.health(Device::Host).failures;
        let _ = dispatcher.dispatch(&request).unwrap_err();
        assert!(
            dispatcher.health(Device::Host).failures > before,
            "the forced host probe executed despite the open breaker"
        );
    }

    #[test]
    fn healthy_dispatcher_records_no_failures_or_retries() {
        // Health tallies are per-dispatcher, so this is race-free even with
        // fault-injecting tests running in sibling threads (the global
        // zero-added-counters claim is pinned by the single-test
        // `dispatch_p0` integration binary).
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
            let outcome = dispatcher.dispatch(&gemm_request(ds)).unwrap();
            assert_eq!(outcome.retries, 0);
            assert_eq!(outcome.attempts, 1);
        }
        for device in [Device::Gpu, Device::Host] {
            let snapshot = dispatcher.health(device);
            assert_eq!(snapshot.failures, 0, "{device}");
            assert_eq!(snapshot.trips, 0, "{device}");
        }
        assert_eq!(
            dispatcher.health(Device::Gpu).successes + dispatcher.health(Device::Host).successes,
            3
        );
    }

    #[test]
    fn dispatch_explained_carries_dispatch_terms() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let (outcome, explanation) = dispatcher
            .dispatch_explained(&gemm_request(Dataset::Test))
            .unwrap();
        let terms = explanation.dispatch.as_ref().expect("dispatch terms");
        assert_eq!(terms.device, outcome.device.name());
        assert_eq!((terms.attempts, terms.retries), (1, 0));
        assert_eq!(terms.fallback, None);
        assert_eq!(terms.gpu_breaker, "closed");
        assert_eq!(terms.cpu_breaker, "closed");
        assert_eq!(terms.simulated_s, outcome.simulated_s);
        assert!(explanation.describes(&outcome.decision));
    }
}
