//! The fault-tolerant dispatch runtime.
//!
//! [`DecisionEngine`] answers *where* a region should run; [`Dispatcher`]
//! actually *runs* it there — against the timing simulators, which may be
//! carrying a seeded [`FaultPlan`] — and deals with everything the decision
//! layer assumes away:
//!
//! * **Device health**: every execution attempt feeds a per-device circuit
//!   breaker (closed → open after K consecutive failures → half-open probe
//!   with exponential backoff). Breaker time is the dispatcher's *logical
//!   tick clock* (one tick per dispatch), not wall time, so transitions are
//!   deterministic and replayable.
//! * **Retry**: transient faults are retried on the same device up to a
//!   bounded number of attempts, charging exponential backoff to the
//!   simulated time. Permanent faults fail the device over immediately.
//! * **Failover**: when the decided device is broken (breaker open), out of
//!   capacity, or exhausts its attempts, the request degrades with a typed
//!   [`FallbackReason`] — *fill then spill*: the decided device first, then
//!   the remaining accelerators in fleet id order, the host always last. A
//!   sick accelerator therefore drains to its peers before touching the
//!   host. The host is the last resort and is never fully load-shed: if
//!   every breaker rejects the request, the dispatcher forces a host probe
//!   rather than dropping the request.
//! * **Deadlines**: [`Dispatcher::dispatch_within`] bounds the decision
//!   phase; a missed budget degrades to the compiler default (see
//!   [`DecisionEngine::decide_request`]) and the outcome records it.
//!
//! Under a no-fault plan a dispatch is exactly a decide plus one simulator
//! run: decisions are bit-for-bit those of [`DecisionEngine::decide`], no
//! draws are taken, and none of the dispatcher's fault/retry/fallback
//! counters move.
//!
//! Everything in a [`DispatchOutcome`] is deterministic: same seeds, same
//! request sequence → the same outcomes, bit for bit. Wall-clock latency is
//! only ever exported through the (timing-gated) histogram
//! `hetsel.core.dispatch.ns`, never stored in an outcome.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::attributes::RegionAttributes;
use crate::explain::{DispatchTerms, Explanation};
use crate::fleet::DeviceId;
use crate::selector::{Decision, DecisionEngine, DecisionRequest, Device};
use hetsel_fault::{FaultKind, FaultPlan, InjectedFailure};
use hetsel_ir::Binding;
use parking_lot::Mutex;

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// Logical ticks (dispatches) an open breaker waits before offering a
    /// half-open probe.
    pub open_backoff: u64,
    /// Backoff ceiling: each failed probe doubles the wait, capped here.
    pub max_backoff: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_backoff: 8,
            max_backoff: 256,
        }
    }
}

/// Retry tuning for transient faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Attempts per device per dispatch, including the first (min 1).
    pub max_attempts: u32,
    /// Simulated backoff before the first retry, seconds; doubles per
    /// retry. Charged to [`DispatchOutcome::simulated_s`].
    pub base_backoff_s: f64,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            max_attempts: 3,
            base_backoff_s: 1e-4,
        }
    }
}

/// Full dispatcher configuration: one fault plan per device plus breaker
/// and retry tuning. The default injects no faults at all.
#[derive(Debug, Clone, Default)]
pub struct DispatcherConfig {
    /// Fault plan applied to the *primary* accelerator's execution attempts
    /// (fleet id 1). Further accelerators default to no faults; target them
    /// by label with [`DispatcherConfig::with_device_faults`].
    pub gpu_faults: FaultPlan,
    /// Fault plan applied to host execution attempts.
    pub cpu_faults: FaultPlan,
    /// Per-label fault-plan overrides, applied after `gpu_faults` /
    /// `cpu_faults`. Labels must name devices registered in the engine's
    /// fleet ([`Dispatcher::new`] panics otherwise — a plan for a device
    /// that does not exist is a configuration bug).
    pub device_faults: Vec<(String, FaultPlan)>,
    /// Circuit-breaker tuning (shared by every device).
    pub breaker: BreakerConfig,
    /// Transient-fault retry tuning.
    pub retry: RetryConfig,
}

impl DispatcherConfig {
    /// Builder: inject `plan` on the primary accelerator's attempts.
    pub fn with_gpu_faults(mut self, plan: FaultPlan) -> DispatcherConfig {
        self.gpu_faults = plan;
        self
    }

    /// Builder: inject `plan` on host attempts.
    pub fn with_cpu_faults(mut self, plan: FaultPlan) -> DispatcherConfig {
        self.cpu_faults = plan;
        self
    }

    /// Builder: inject `plan` on the attempts of the fleet device labelled
    /// `label` (any device, the host included).
    pub fn with_device_faults(mut self, label: &str, plan: FaultPlan) -> DispatcherConfig {
        self.device_faults.push((label.to_string(), plan));
        self
    }

    /// Builder: breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> DispatcherConfig {
        self.breaker = breaker;
        self
    }

    /// Builder: retry tuning.
    pub fn with_retry(mut self, retry: RetryConfig) -> DispatcherConfig {
        self.retry = retry;
        self
    }
}

/// Circuit-breaker state (see DESIGN.md §3.4 for the transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow freely.
    Closed,
    /// Tripped: requests are rejected until the backoff elapses.
    Open,
    /// Probing: exactly one request is allowed through; its result decides
    /// between re-opening (with doubled backoff) and closing.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (`"closed"` / `"open"` / `"half_open"`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// The value exported on the `hetsel.core.breaker.<device>.state`
    /// gauge: 0 closed, 1 open, 2 half-open.
    pub fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a dispatch did not (or could not) run where the decision said.
/// The outcome records the *first* reason; every occurrence is counted
/// under `hetsel.core.dispatch.fallback.<metric_key>`.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The decision deadline expired; the request degraded to the compiler
    /// default before any device was tried.
    DeadlineExceeded,
    /// A breaker rejected the request on this device.
    BreakerOpen {
        /// The device kind whose breaker was open.
        device: Device,
    },
    /// The device had no in-flight capacity left; the request spilled to
    /// the next candidate.
    CapacityExhausted {
        /// The device kind that was at capacity.
        device: Device,
    },
    /// The device exhausted its attempts (or faulted permanently).
    DeviceFault {
        /// The faulting device kind.
        device: Device,
        /// The final fault kind on that device.
        kind: FaultKind,
    },
}

impl FallbackReason {
    /// Stable dotted suffix for the fallback counter.
    pub fn metric_key(&self) -> &'static str {
        match self {
            FallbackReason::DeadlineExceeded => "deadline_exceeded",
            FallbackReason::BreakerOpen { .. } => "breaker_open",
            FallbackReason::CapacityExhausted { .. } => "capacity_exhausted",
            FallbackReason::DeviceFault { .. } => "device_fault",
        }
    }
}

/// Compact encoding of a [`FallbackReason`] for the flight recorder's
/// one-byte `detail` slot (`0` means "no fallback" on a
/// [`hetsel_obs::EventKind::DispatchComplete`] event).
fn fallback_code(reason: &FallbackReason) -> u8 {
    match reason {
        FallbackReason::DeadlineExceeded => 1,
        FallbackReason::BreakerOpen { .. } => 2,
        FallbackReason::CapacityExhausted { .. } => 3,
        FallbackReason::DeviceFault { .. } => 4,
    }
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::DeadlineExceeded => write!(f, "decision deadline exceeded"),
            FallbackReason::BreakerOpen { device } => {
                write!(f, "{device} breaker open")
            }
            FallbackReason::CapacityExhausted { device } => {
                write!(f, "{device} capacity exhausted")
            }
            FallbackReason::DeviceFault { device, kind } => {
                write!(f, "{kind} fault on {device}")
            }
        }
    }
}

/// How one dispatched request actually ran. Every field is deterministic
/// under fixed seeds — outcomes from two identical runs compare equal with
/// `==`, which is what the soak tests assert.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchOutcome {
    /// The decision that routed the request (deadline degradation
    /// included).
    pub decision: Decision,
    /// The kind of device the request finally ran on (may differ from
    /// `decision.device` after a fallback).
    pub device: Device,
    /// Fleet id of the device the request finally ran on.
    pub device_id: DeviceId,
    /// Interned fleet label of the device the request finally ran on.
    pub device_name: Arc<str>,
    /// Execution attempts across all devices (≥ 1).
    pub attempts: u32,
    /// Transient-fault retries among those attempts.
    pub retries: u32,
    /// First reason the request left the decided path, if it did.
    pub fallback: Option<FallbackReason>,
    /// Simulated execution time of the successful run, seconds, including
    /// fault-plan jitter and accumulated retry backoff.
    pub simulated_s: f64,
}

impl DispatchOutcome {
    /// True iff the request ran where the decision pointed, first try, no
    /// faults.
    pub fn clean(&self) -> bool {
        self.fallback.is_none() && self.retries == 0 && self.device_id == self.decision.device_id
    }
}

/// Why a dispatch produced no execution at all.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// The region is not in the attribute database.
    UnknownRegion {
        /// The unknown region name.
        region: String,
    },
    /// Every candidate device faulted past its retry budget.
    AllDevicesFailed {
        /// The region that could not be run.
        region: String,
    },
    /// The binding does not resolve the region on any device — a modelling
    /// limitation, not a device fault (breakers are not charged).
    Unsimulatable {
        /// The region that could not be simulated.
        region: String,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::UnknownRegion { region } => {
                write!(f, "region `{region}` is not in the attribute database")
            }
            DispatchError::AllDevicesFailed { region } => {
                write!(f, "every device failed executing region `{region}`")
            }
            DispatchError::Unsimulatable { region } => {
                write!(f, "region `{region}` does not resolve on any device")
            }
        }
    }
}

impl std::error::Error for DispatchError {}

/// Point-in-time view of one device's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceHealthSnapshot {
    /// The kind of device observed.
    pub device: Device,
    /// Fleet id of the device observed.
    pub device_id: DeviceId,
    /// Current breaker state.
    pub state: BreakerState,
    /// Consecutive failures while closed (resets on success).
    pub consecutive_failures: u32,
    /// Successful execution attempts, lifetime.
    pub successes: u64,
    /// Faulted execution attempts, lifetime.
    pub failures: u64,
    /// Times the breaker tripped open (including re-opens from half-open).
    pub trips: u64,
    /// Current open-state backoff, logical ticks.
    pub backoff: u64,
}

/// Mutable breaker core, behind the health record's mutex.
#[derive(Debug)]
struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
    backoff: u64,
    /// True while a half-open probe is in flight (only one is admitted).
    probing: bool,
}

/// One device's health record: the breaker, the in-flight capacity gate,
/// and lifetime tallies. Tallies are atomics outside the lock so snapshots
/// are cheap. Metric names derive from the fleet's *interned label*
/// (`hetsel.core.breaker.<label>.state` / `.trip`), so the classic pair —
/// labels `host` and `gpu` — keeps every historical metric name.
#[derive(Debug)]
struct DeviceHealth {
    id: DeviceId,
    label: Arc<str>,
    device: Device,
    capacity: u32,
    inflight: AtomicU32,
    core: Mutex<BreakerCore>,
    successes: AtomicU64,
    failures: AtomicU64,
    trips: AtomicU64,
}

impl DeviceHealth {
    fn new(
        id: DeviceId,
        label: Arc<str>,
        device: Device,
        capacity: u32,
        cfg: &BreakerConfig,
    ) -> DeviceHealth {
        hetsel_obs::registry()
            .gauge(&hetsel_obs::metrics::device_leaf_metric_name(
                "hetsel.core.breaker",
                &label,
                "state",
            ))
            .set(BreakerState::Closed.gauge_value());
        DeviceHealth {
            id,
            label,
            device,
            capacity,
            inflight: AtomicU32::new(0),
            core: Mutex::new(BreakerCore {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: 0,
                backoff: cfg.open_backoff.max(1),
                probing: false,
            }),
            successes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            trips: AtomicU64::new(0),
        }
    }

    fn publish_state(&self, state: BreakerState) {
        hetsel_obs::registry()
            .gauge(&hetsel_obs::metrics::device_leaf_metric_name(
                "hetsel.core.breaker",
                &self.label,
                "state",
            ))
            .set(state.gauge_value());
    }

    /// Publishes a breaker *transition* (not a republish): updates the
    /// state gauge and, when the flight recorder is live, appends a
    /// [`hetsel_obs::EventKind::BreakerTransition`] event whose `detail`
    /// byte carries the gauge encoding of the new state and whose region
    /// slot carries the device label.
    fn note_transition(&self, state: BreakerState, now: u64) {
        self.publish_state(state);
        hetsel_obs::record_event(|| {
            let mut ev = hetsel_obs::DecisionEvent::new(
                hetsel_obs::EventKind::BreakerTransition,
                &self.label,
            );
            ev.tick = now;
            ev.device = self.id.0;
            ev.detail = state.gauge_value() as u8;
            ev
        });
    }

    /// Reserves one in-flight slot, or reports the device at capacity.
    fn try_acquire(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.capacity {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Returns an in-flight slot taken by [`DeviceHealth::try_acquire`].
    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// May a request execute on this device at logical time `now`? An open
    /// breaker whose backoff elapsed transitions to half-open and admits
    /// exactly one probe.
    fn admit(&self, now: u64) -> bool {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now >= core.opened_at.saturating_add(core.backoff) {
                    core.state = BreakerState::HalfOpen;
                    core.probing = true;
                    self.note_transition(BreakerState::HalfOpen, now);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if core.probing {
                    false
                } else {
                    core.probing = true;
                    true
                }
            }
        }
    }

    /// Forces an open breaker into a half-open probe regardless of backoff
    /// — the last-resort host path, which is never fully load-shed.
    fn force_probe(&self, now: u64) {
        let mut core = self.core.lock();
        if core.state == BreakerState::Open {
            core.state = BreakerState::HalfOpen;
            core.probing = true;
            self.note_transition(BreakerState::HalfOpen, now);
        }
    }

    fn on_success(&self, cfg: &BreakerConfig, now: u64) {
        self.successes.fetch_add(1, Ordering::Relaxed);
        let mut core = self.core.lock();
        core.consecutive_failures = 0;
        match core.state {
            BreakerState::Closed => {}
            // A successful probe (or a success from a request admitted just
            // before a concurrent trip) heals the breaker and resets the
            // backoff ladder.
            BreakerState::HalfOpen | BreakerState::Open => {
                core.state = BreakerState::Closed;
                core.probing = false;
                core.backoff = cfg.open_backoff.max(1);
                self.note_transition(BreakerState::Closed, now);
            }
        }
    }

    fn on_failure(&self, cfg: &BreakerConfig, now: u64) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => {
                core.consecutive_failures += 1;
                if core.consecutive_failures >= cfg.failure_threshold.max(1) {
                    core.state = BreakerState::Open;
                    core.opened_at = now;
                    core.backoff = cfg.open_backoff.max(1);
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    hetsel_obs::registry()
                        .counter(&hetsel_obs::metrics::device_leaf_metric_name(
                            "hetsel.core.breaker",
                            &self.label,
                            "trip",
                        ))
                        .inc();
                    self.note_transition(BreakerState::Open, now);
                }
            }
            BreakerState::HalfOpen => {
                // Failed probe: back to open with doubled (capped) backoff.
                core.state = BreakerState::Open;
                core.opened_at = now;
                core.backoff = core.backoff.saturating_mul(2).min(cfg.max_backoff.max(1));
                core.probing = false;
                self.trips.fetch_add(1, Ordering::Relaxed);
                hetsel_obs::registry()
                    .counter(&hetsel_obs::metrics::device_leaf_metric_name(
                        "hetsel.core.breaker",
                        &self.label,
                        "trip",
                    ))
                    .inc();
                self.note_transition(BreakerState::Open, now);
            }
            // A failure from an attempt admitted before the trip: the
            // breaker is already open, nothing more to record.
            BreakerState::Open => {}
        }
    }

    fn snapshot(&self) -> DeviceHealthSnapshot {
        let core = self.core.lock();
        DeviceHealthSnapshot {
            device: self.device,
            device_id: self.id,
            state: core.state,
            consecutive_failures: core.consecutive_failures,
            successes: self.successes.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            trips: self.trips.load(Ordering::Relaxed),
            backoff: core.backoff,
        }
    }
}

/// How one execution attempt sequence on a single device ended.
enum ExecFailure {
    /// The device faulted past its retry budget; the final fault kind.
    Fault(FaultKind),
    /// The binding does not resolve — no device fault, breakers untouched.
    Unresolvable,
}

/// The fault-tolerant dispatch runtime: a [`DecisionEngine`] plus the
/// health/retry/failover machinery described in the module docs.
///
/// ```
/// use hetsel_core::{DecisionRequest, Dispatcher, DispatcherConfig, DecisionEngine, Selector, Platform};
///
/// let kernels: Vec<_> = hetsel_polybench::suite().into_iter().flat_map(|b| b.kernels).collect();
/// let engine = DecisionEngine::new(Selector::new(Platform::power9_v100()), &kernels);
/// let dispatcher = Dispatcher::new(engine, DispatcherConfig::default());
/// let binding = hetsel_polybench::find_kernel("gemm").unwrap().1(hetsel_polybench::Dataset::Test);
/// let outcome = dispatcher.dispatch(&DecisionRequest::new("gemm", binding)).unwrap();
/// assert!(outcome.clean() && outcome.simulated_s > 0.0);
/// ```
#[derive(Debug)]
pub struct Dispatcher {
    engine: DecisionEngine,
    config: DispatcherConfig,
    /// One health record per fleet device, indexed by `DeviceId.0` (host at
    /// 0, accelerators in registration order).
    health: Vec<DeviceHealth>,
    /// One fault plan per fleet device, parallel to `health`.
    plans: Vec<FaultPlan>,
    /// Logical breaker clock: one tick per dispatch.
    clock: AtomicU64,
    /// Fault-plan draw sequence, shared by every device so every attempt
    /// consumes a unique draw.
    draws: AtomicU64,
}

impl Dispatcher {
    /// Wraps `engine` with the dispatch runtime under `config`: one circuit
    /// breaker, one capacity gate and one fault plan per device in the
    /// engine's fleet.
    ///
    /// Panics when `config.device_faults` names a label the fleet does not
    /// register.
    pub fn new(engine: DecisionEngine, config: DispatcherConfig) -> Dispatcher {
        let fleet = engine.selector().fleet().clone();
        let mut health = Vec::with_capacity(fleet.len());
        let mut plans = Vec::with_capacity(fleet.len());
        health.push(DeviceHealth::new(
            DeviceId::HOST,
            fleet.host_label_arc().clone(),
            Device::Host,
            fleet.host_capacity(),
            &config.breaker,
        ));
        plans.push(config.cpu_faults);
        for (i, accel) in fleet.accelerators().iter().enumerate() {
            health.push(DeviceHealth::new(
                DeviceId((i + 1) as u16),
                accel.label_arc().clone(),
                Device::Gpu,
                accel.capacity,
                &config.breaker,
            ));
            plans.push(if i == 0 {
                config.gpu_faults
            } else {
                FaultPlan::none()
            });
        }
        for (label, plan) in &config.device_faults {
            let id = fleet.device_id_of(label).unwrap_or_else(|| {
                panic!("device_faults label `{label}` is not registered in the engine's fleet")
            });
            plans[id.0 as usize] = *plan;
        }
        Dispatcher {
            engine,
            config,
            health,
            plans,
            clock: AtomicU64::new(0),
            draws: AtomicU64::new(0),
        }
    }

    /// The wrapped decision engine.
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The dispatcher's configuration.
    pub fn config(&self) -> &DispatcherConfig {
        &self.config
    }

    /// Current breaker state of the kind-level `device` view: the host, or
    /// the *primary* accelerator for [`Device::Gpu`] (`Closed` when the
    /// fleet has none — a breaker that cannot trip never opens).
    pub fn breaker_state(&self, device: Device) -> BreakerState {
        match self.health_of(device) {
            Some(health) => health.core.lock().state,
            None => BreakerState::Closed,
        }
    }

    /// Current breaker state of the fleet device `id`, or `None` for an
    /// unregistered id.
    pub fn breaker_state_by_id(&self, id: DeviceId) -> Option<BreakerState> {
        self.health.get(id.0 as usize).map(|h| h.core.lock().state)
    }

    /// Current health snapshot of the kind-level `device` view (the primary
    /// accelerator for [`Device::Gpu`]; a synthesized always-closed snapshot
    /// when the fleet registers no accelerator).
    pub fn health(&self, device: Device) -> DeviceHealthSnapshot {
        match self.health_of(device) {
            Some(health) => health.snapshot(),
            None => DeviceHealthSnapshot {
                device,
                device_id: DeviceId(1),
                state: BreakerState::Closed,
                consecutive_failures: 0,
                successes: 0,
                failures: 0,
                trips: 0,
                backoff: self.config.breaker.open_backoff.max(1),
            },
        }
    }

    /// Current health snapshot of the fleet device `id`, or `None` for an
    /// unregistered id.
    pub fn health_by_id(&self, id: DeviceId) -> Option<DeviceHealthSnapshot> {
        self.health.get(id.0 as usize).map(|h| h.snapshot())
    }

    /// Re-publishes both pair-view breaker-state gauges (they are also kept
    /// current on every transition); returns the `(host, gpu)` snapshots.
    pub fn publish_health(&self) -> (DeviceHealthSnapshot, DeviceHealthSnapshot) {
        for health in &self.health {
            let snapshot = health.snapshot();
            health.publish_state(snapshot.state);
        }
        (self.health(Device::Host), self.health(Device::Gpu))
    }

    /// Re-publishes every device's breaker-state gauge; returns one
    /// snapshot per fleet device, in id order.
    pub fn publish_health_all(&self) -> Vec<DeviceHealthSnapshot> {
        self.health
            .iter()
            .map(|health| {
                let snapshot = health.snapshot();
                health.publish_state(snapshot.state);
                snapshot
            })
            .collect()
    }

    /// Decides and executes `request`: the full fault-tolerant path. See
    /// the module docs for the exact failover order.
    pub fn dispatch(&self, request: &DecisionRequest) -> Result<DispatchOutcome, DispatchError> {
        self.dispatch_bounded(request, None)
    }

    /// Shared dispatch path: `deadline_override`, when present, replaces
    /// the request's own decision deadline. The override is threaded
    /// straight through to the engine's bounded request path — the request
    /// is never cloned to carry it.
    fn dispatch_bounded(
        &self,
        request: &DecisionRequest,
        deadline_override: Option<Duration>,
    ) -> Result<DispatchOutcome, DispatchError> {
        let _timer = hetsel_obs::static_histogram!("hetsel.core.dispatch.ns").start_timer();
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let (decision, deadline_degraded) = self
            .engine
            .decide_request_bounded(request, deadline_override)
            .ok_or_else(|| DispatchError::UnknownRegion {
                region: request.region().to_string(),
            })?;
        let attrs = self
            .engine
            .database()
            .region(request.region())
            .expect("region decided, so it is in the database");

        let mut fallback: Option<FallbackReason> = None;
        if deadline_degraded {
            self.note_fallback(
                &mut fallback,
                FallbackReason::DeadlineExceeded,
                request.region(),
                decision.device_id,
                now,
            );
        }
        let mut attempts = 0u32;
        let mut retries = 0u32;
        let mut backoff_s = 0.0f64;
        let mut any_fault = false;
        let mut unresolvable = false;
        let mut host_attempted = false;

        // Fill-then-spill candidate order: the decided device first, then
        // the remaining accelerators in fleet id order, the host always
        // last — a sick accelerator drains to its peers before the host.
        // (For the classic pair this is exactly the old `[decided, other]`.)
        let mut order: Vec<DeviceId> = Vec::with_capacity(self.health.len());
        order.push(decision.device_id);
        for id in (1..self.health.len()).map(|i| DeviceId(i as u16)) {
            if id != decision.device_id {
                order.push(id);
            }
        }
        if !decision.device_id.is_host() {
            order.push(DeviceId::HOST);
        }

        for id in order {
            let health = &self.health[id.0 as usize];
            let device = health.device;
            // Capacity gates before the breaker so a spilled request never
            // consumes the device's single half-open probe slot.
            if !health.try_acquire() {
                self.note_fallback(
                    &mut fallback,
                    FallbackReason::CapacityExhausted { device },
                    request.region(),
                    id,
                    now,
                );
                continue;
            }
            if !health.admit(now) {
                health.release();
                self.note_fallback(
                    &mut fallback,
                    FallbackReason::BreakerOpen { device },
                    request.region(),
                    id,
                    now,
                );
                continue;
            }
            if id.is_host() {
                host_attempted = true;
            }
            let result = self.execute(
                id,
                attrs,
                request.binding(),
                now,
                &mut attempts,
                &mut retries,
                &mut backoff_s,
            );
            health.release();
            match result {
                Ok(run_s) => {
                    let outcome = DispatchOutcome {
                        decision,
                        device,
                        device_id: id,
                        device_name: health.label.clone(),
                        attempts,
                        retries,
                        fallback,
                        simulated_s: run_s + backoff_s,
                    };
                    self.observe_outcome(request.region(), &outcome, now);
                    return Ok(outcome);
                }
                Err(ExecFailure::Fault(kind)) => {
                    any_fault = true;
                    self.note_fallback(
                        &mut fallback,
                        FallbackReason::DeviceFault { device, kind },
                        request.region(),
                        id,
                        now,
                    );
                }
                Err(ExecFailure::Unresolvable) => unresolvable = true,
            }
        }

        // Last resort: the host is never fully load-shed. If its breaker or
        // capacity gate rejected the request above, force a half-open probe
        // and try once more — a healthy host must complete the request no
        // matter how broken every accelerator is.
        if !host_attempted {
            let host = &self.health[0];
            host.force_probe(now);
            match self.execute(
                DeviceId::HOST,
                attrs,
                request.binding(),
                now,
                &mut attempts,
                &mut retries,
                &mut backoff_s,
            ) {
                Ok(run_s) => {
                    let outcome = DispatchOutcome {
                        decision,
                        device: Device::Host,
                        device_id: DeviceId::HOST,
                        device_name: host.label.clone(),
                        attempts,
                        retries,
                        fallback,
                        simulated_s: run_s + backoff_s,
                    };
                    self.observe_outcome(request.region(), &outcome, now);
                    return Ok(outcome);
                }
                Err(ExecFailure::Fault(kind)) => {
                    any_fault = true;
                    self.note_fallback(
                        &mut fallback,
                        FallbackReason::DeviceFault {
                            device: Device::Host,
                            kind,
                        },
                        request.region(),
                        DeviceId::HOST,
                        now,
                    );
                }
                Err(ExecFailure::Unresolvable) => unresolvable = true,
            }
        }

        let region = request.region().to_string();
        if unresolvable && !any_fault {
            Err(DispatchError::Unsimulatable { region })
        } else {
            Err(DispatchError::AllDevicesFailed { region })
        }
    }

    /// As [`Dispatcher::dispatch`], additionally producing the full
    /// [`Explanation`] with its [`DispatchTerms`] filled in: what the models
    /// said, where the request ran, how many attempts it took, and the
    /// breaker states left behind. The model breakdown reflects the
    /// engine's own policy (a `policy_override` on the request changes the
    /// outcome's decision, not the explanation's model evidence).
    pub fn dispatch_explained(
        &self,
        request: &DecisionRequest,
    ) -> Result<(DispatchOutcome, Explanation), DispatchError> {
        let outcome = self.dispatch(request)?;
        let mut explanation = self
            .engine
            .explain(request.region(), request.binding())
            .expect("region dispatched, so it explains");
        explanation.dispatch = Some(DispatchTerms {
            device: outcome.device_name.to_string(),
            attempts: outcome.attempts,
            retries: outcome.retries,
            fallback: outcome.fallback.map(|f| f.metric_key().to_string()),
            simulated_s: outcome.simulated_s,
            gpu_breaker: self.breaker_state(Device::Gpu).name().to_string(),
            cpu_breaker: self.breaker_state(Device::Host).name().to_string(),
        });
        if let Some(row) = hetsel_obs::accuracy().lookup(request.region(), &outcome.device_name) {
            explanation.accuracy = Some(crate::explain::AccuracyBlock::from_row(&row));
        }
        Ok((outcome, explanation))
    }

    /// As [`Dispatcher::dispatch`] with an explicit decision deadline,
    /// overriding any deadline the request already carries. The override
    /// is applied in place — the request is not cloned (the same
    /// needless-clone shape [`DecisionEngine::decide_within`] fixed).
    pub fn dispatch_within(
        &self,
        request: &DecisionRequest,
        deadline: Duration,
    ) -> Result<DispatchOutcome, DispatchError> {
        self.dispatch_bounded(request, Some(deadline))
    }

    /// The kind-level health view: the host record, or the *primary*
    /// accelerator's for [`Device::Gpu`] (`None` on a host-only fleet).
    fn health_of(&self, device: Device) -> Option<&DeviceHealth> {
        match device {
            Device::Gpu => self.health.get(1),
            Device::Host => self.health.first(),
        }
    }

    /// Records a fallback event: counts every occurrence, keeps the first
    /// reason for the outcome, and (when the flight recorder is live)
    /// appends a [`hetsel_obs::EventKind::Fallback`] event whose `detail`
    /// byte is the [`fallback_code`] of the reason.
    fn note_fallback(
        &self,
        slot: &mut Option<FallbackReason>,
        reason: FallbackReason,
        region: &str,
        device: DeviceId,
        now: u64,
    ) {
        hetsel_obs::registry()
            .counter(&format!(
                "hetsel.core.dispatch.fallback.{}",
                reason.metric_key()
            ))
            .inc();
        hetsel_obs::record_event(|| {
            let mut ev = hetsel_obs::DecisionEvent::new(hetsel_obs::EventKind::Fallback, region);
            ev.tick = now;
            ev.device = device.0;
            ev.detail = fallback_code(&reason);
            ev
        });
        if slot.is_none() {
            *slot = Some(reason);
        }
    }

    /// Feeds the accuracy observatory and flight recorder with a completed
    /// dispatch: one `DispatchComplete` event plus one predicted-vs-observed
    /// sample for the executed device. The engine only predicted for the
    /// decided device and the host, so an execution that spilled to a
    /// *different* accelerator has no matching prediction and is not scored.
    /// A "flip" is counted when the predicted ordering between the executed
    /// device and its alternative disagrees with the observed ordering —
    /// i.e. the model picked the wrong side of the CPU/accelerator boundary.
    fn observe_outcome(&self, region: &str, outcome: &DispatchOutcome, now: u64) {
        let decision = &outcome.decision;
        hetsel_obs::record_event(|| {
            let mut ev =
                hetsel_obs::DecisionEvent::new(hetsel_obs::EventKind::DispatchComplete, region);
            ev.tick = now;
            ev.device = outcome.device_id.0;
            ev.verdict_accel = decision.device == Device::Gpu;
            ev.detail = outcome.fallback.as_ref().map_or(0, fallback_code);
            ev.predicted_cpu_s = decision.predicted_cpu_s.unwrap_or(f64::NAN);
            ev.predicted_accel_s = decision.predicted_gpu_s.unwrap_or(f64::NAN);
            ev.simulated_s = outcome.simulated_s;
            ev
        });
        if hetsel_obs::flight_recording_enabled() {
            hetsel_obs::registry()
                .counter(&hetsel_obs::metrics::device_leaf_metric_name(
                    "hetsel.core.flight",
                    &outcome.device_name,
                    "events",
                ))
                .inc();
        }
        // One calibration sample per completed dispatch: the *raw* model
        // prediction for the executed device (the tag keeps it even when the
        // decision shipped corrected numbers) against what actually ran.
        // Spills to a device the engine never predicted for carry no raw
        // prediction and teach the calibrator nothing.
        if let Some(tag) = decision.calibration {
            let raw = if outcome.device_id.is_host() {
                tag.raw_cpu_s
            } else if outcome.device_id == decision.device_id {
                tag.raw_gpu_s
            } else {
                None
            };
            if let Some(raw_s) = raw {
                self.engine.selector().calibrator().observe(
                    region,
                    &outcome.device_name,
                    tag.class,
                    raw_s,
                    outcome.simulated_s,
                );
            }
        }
        let (pred_exec, pred_other) = if outcome.device_id.is_host() {
            (decision.predicted_cpu_s, decision.predicted_gpu_s)
        } else if outcome.device_id == decision.device_id {
            (decision.predicted_gpu_s, decision.predicted_cpu_s)
        } else {
            (None, None)
        };
        let Some(predicted_s) = pred_exec else { return };
        let observed_s = outcome.simulated_s;
        let flip = pred_other.is_some_and(|other| (predicted_s <= other) != (observed_s <= other));
        hetsel_obs::accuracy().observe(region, &outcome.device_name, predicted_s, observed_s, flip);
        hetsel_obs::registry()
            .counter(&hetsel_obs::metrics::device_leaf_metric_name(
                "hetsel.core.accuracy",
                &outcome.device_name,
                "samples",
            ))
            .inc();
        if flip {
            hetsel_obs::registry()
                .counter(&hetsel_obs::metrics::device_leaf_metric_name(
                    "hetsel.core.accuracy",
                    &outcome.device_name,
                    "flips",
                ))
                .inc();
        }
    }

    /// Runs the region on one fleet device with bounded transient retries.
    /// Returns the successful run's simulated seconds (jitter included);
    /// backoff is accumulated into `backoff_s` by the caller's accounting.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        id: DeviceId,
        attrs: &RegionAttributes,
        binding: &Binding,
        now: u64,
        attempts: &mut u32,
        retries: &mut u32,
        backoff_s: &mut f64,
    ) -> Result<f64, ExecFailure> {
        let plan = &self.plans[id.0 as usize];
        let health = &self.health[id.0 as usize];
        let platform = &self.engine.selector().platform;
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            *attempts += 1;
            // The no-fault fast path takes no draw: a healthy dispatcher
            // consumes no randomness and leaves the draw sequence (and
            // all fault counters) untouched.
            let seq = if plan.is_none() {
                0
            } else {
                self.draws.fetch_add(1, Ordering::Relaxed)
            };
            let result = if id.is_host() {
                hetsel_cpusim::simulate_with_faults(
                    &attrs.kernel,
                    binding,
                    &platform.cpu,
                    platform.host_threads,
                    plan,
                    seq,
                )
                .map(|r| r.total_s())
            } else {
                // Each accelerator simulates against its *own* registered
                // descriptor, not the platform's.
                let descriptor = &self
                    .engine
                    .selector()
                    .fleet()
                    .accelerator(id)
                    .expect("routed id names a fleet accelerator")
                    .descriptor;
                hetsel_gpusim::simulate_with_faults(&attrs.kernel, binding, descriptor, plan, seq)
                    .map(|r| r.total_s())
            };
            match result {
                Ok(run_s) => {
                    health.on_success(&self.config.breaker, now);
                    return Ok(run_s);
                }
                Err(InjectedFailure::Unresolvable) => return Err(ExecFailure::Unresolvable),
                Err(InjectedFailure::Fault(fault)) => {
                    hetsel_obs::registry()
                        .counter(&hetsel_obs::metrics::device_metric_name(
                            "hetsel.core.dispatch.faults",
                            &health.label,
                        ))
                        .inc();
                    health.on_failure(&self.config.breaker, now);
                    match fault.kind {
                        FaultKind::Transient if attempt < max_attempts => {
                            *retries += 1;
                            hetsel_obs::static_counter!("hetsel.core.dispatch.retries").inc();
                            // Exponential backoff, charged to simulated time
                            // (shift capped well below overflow).
                            *backoff_s += self.config.retry.base_backoff_s
                                * f64::from(1u32 << (attempt - 1).min(20));
                        }
                        kind => return Err(ExecFailure::Fault(kind)),
                    }
                }
                #[allow(unreachable_patterns)]
                Err(_) => return Err(ExecFailure::Unresolvable),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::selector::{Policy, Selector};
    use hetsel_polybench::{find_kernel, Dataset};

    fn engine() -> DecisionEngine {
        let (k, _) = find_kernel("gemm").unwrap();
        DecisionEngine::new(
            Selector::new(Platform::power9_v100()),
            std::slice::from_ref(&k),
        )
    }

    fn gemm_request(ds: Dataset) -> DecisionRequest {
        let (_, binding) = find_kernel("gemm").unwrap();
        DecisionRequest::new("gemm", binding(ds))
    }

    fn breaker() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_backoff: 4,
            max_backoff: 16,
        }
    }

    #[test]
    fn healthy_dispatch_is_exactly_the_decision() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let request = gemm_request(Dataset::Test);
        let outcome = dispatcher.dispatch(&request).unwrap();
        let decision = dispatcher
            .engine()
            .decide("gemm", request.binding())
            .unwrap();
        assert_eq!(outcome.decision, decision);
        assert_eq!(outcome.device, decision.device);
        assert!(outcome.clean());
        assert_eq!((outcome.attempts, outcome.retries), (1, 0));
        assert!(outcome.simulated_s > 0.0);
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Closed);
        assert_eq!(dispatcher.breaker_state(Device::Host), BreakerState::Closed);
    }

    #[test]
    fn unknown_region_is_a_typed_error() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let err = dispatcher
            .dispatch(&DecisionRequest::new("missing", Binding::new()))
            .unwrap_err();
        assert_eq!(
            err,
            DispatchError::UnknownRegion {
                region: "missing".into()
            }
        );
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn unresolvable_binding_is_not_a_device_fault() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let err = dispatcher
            .dispatch(&DecisionRequest::new("gemm", Binding::new()))
            .unwrap_err();
        assert_eq!(
            err,
            DispatchError::Unsimulatable {
                region: "gemm".into()
            }
        );
        // No breaker was charged: the failure is a modelling limitation.
        assert_eq!(dispatcher.health(Device::Gpu).failures, 0);
        assert_eq!(dispatcher.health(Device::Host).failures, 0);
    }

    #[test]
    fn permanent_gpu_fault_fails_over_to_the_host() {
        let config = DispatcherConfig::default()
            .with_gpu_faults(FaultPlan::permanent(7, 1.0))
            .with_breaker(breaker());
        let dispatcher = Dispatcher::new(engine(), config);
        // Benchmark-size gemm decides GPU; the injected fault forces host.
        let outcome = dispatcher
            .dispatch(&gemm_request(Dataset::Benchmark))
            .unwrap();
        assert_eq!(outcome.decision.device, Device::Gpu);
        assert_eq!(outcome.device, Device::Host);
        assert_eq!(
            outcome.fallback,
            Some(FallbackReason::DeviceFault {
                device: Device::Gpu,
                kind: FaultKind::Permanent,
            })
        );
        assert_eq!(outcome.retries, 0, "permanent faults are not retried");
    }

    #[test]
    fn breaker_opens_after_threshold_and_sheds_load() {
        let config = DispatcherConfig::default()
            .with_gpu_faults(FaultPlan::permanent(11, 1.0))
            .with_breaker(breaker());
        let dispatcher = Dispatcher::new(engine(), config);
        let request = gemm_request(Dataset::Benchmark);
        // Three dispatches = three GPU failures = the threshold.
        for _ in 0..3 {
            let outcome = dispatcher.dispatch(&request).unwrap();
            assert_eq!(outcome.device, Device::Host);
        }
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        assert_eq!(dispatcher.health(Device::Gpu).trips, 1);
        // While open, the GPU is not even attempted: the fallback reason
        // becomes BreakerOpen and the host serves directly.
        let outcome = dispatcher.dispatch(&request).unwrap();
        assert_eq!(outcome.device, Device::Host);
        assert_eq!(
            outcome.fallback,
            Some(FallbackReason::BreakerOpen {
                device: Device::Gpu
            })
        );
        assert_eq!(outcome.attempts, 1, "only the host ran");
    }

    #[test]
    fn breaker_recovers_through_a_half_open_probe() {
        // Transient p=1 then p=0 is impossible within one plan, so trip the
        // breaker with a plan, then rebuild a dispatcher sharing no state —
        // instead: use a plan whose failures stop mattering because the
        // backoff admits a probe and the probe's draw is deterministic.
        // Simplest deterministic route: permanent faults to trip it, then
        // verify the half-open transition fires at the right logical tick.
        let config = DispatcherConfig::default()
            .with_gpu_faults(FaultPlan::permanent(13, 1.0))
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                open_backoff: 3,
                max_backoff: 8,
            });
        let dispatcher = Dispatcher::new(engine(), config);
        let request = gemm_request(Dataset::Benchmark);
        for _ in 0..2 {
            dispatcher.dispatch(&request).unwrap();
        }
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        let opened_at = 1u64; // second dispatch, now = 1
                              // Dispatches at now = 2, 3 are still inside the backoff window
                              // (2 and 3 < opened_at + 3 = 4): load-shed, no GPU attempt.
        for _ in 0..2 {
            let outcome = dispatcher.dispatch(&request).unwrap();
            assert_eq!(outcome.attempts, 1);
            assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        }
        // now = 4 = opened_at + backoff: half-open probe admitted; it fails
        // (p=1), so the breaker re-opens with doubled backoff.
        let before = dispatcher.health(Device::Gpu).backoff;
        let outcome = dispatcher.dispatch(&request).unwrap();
        assert!(outcome.attempts > 1, "the probe ran on the GPU");
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        let after = dispatcher.health(Device::Gpu).backoff;
        assert_eq!(after, (before * 2).min(8), "failed probe doubles backoff");
        assert_eq!(dispatcher.health(Device::Gpu).trips, 2);
        let _ = opened_at;
    }

    #[test]
    fn transient_faults_retry_with_backoff() {
        // p=1 transient: every attempt faults, so retries exhaust and the
        // request fails over. Retry accounting must show max_attempts tries.
        let config = DispatcherConfig::default()
            .with_gpu_faults(FaultPlan::transient(17, 1.0))
            .with_retry(RetryConfig {
                max_attempts: 3,
                base_backoff_s: 1e-4,
            })
            .with_breaker(BreakerConfig {
                failure_threshold: 100, // keep the breaker out of this test
                ..breaker()
            });
        let dispatcher = Dispatcher::new(engine(), config);
        let outcome = dispatcher
            .dispatch(&gemm_request(Dataset::Benchmark))
            .unwrap();
        assert_eq!(outcome.device, Device::Host);
        assert_eq!(outcome.attempts, 4, "3 GPU attempts + 1 host attempt");
        assert_eq!(outcome.retries, 2, "two retries after the first fault");
        // The backoff (1e-4 + 2e-4) is charged to simulated time.
        let plain = Dispatcher::new(engine(), DispatcherConfig::default());
        let clean = plain.dispatch(&gemm_request(Dataset::Benchmark)).unwrap();
        // Different device (host vs gpu) — just assert the charge is there.
        assert!(outcome.simulated_s > 0.0 && clean.simulated_s > 0.0);
        assert_eq!(
            outcome.fallback,
            Some(FallbackReason::DeviceFault {
                device: Device::Gpu,
                kind: FaultKind::Transient,
            })
        );
    }

    #[test]
    fn same_seed_same_outcome_sequence() {
        let make = || {
            Dispatcher::new(
                engine(),
                DispatcherConfig::default()
                    .with_gpu_faults(FaultPlan::transient(42, 0.5).with_jitter(1e-4))
                    .with_breaker(breaker()),
            )
        };
        let a = make();
        let b = make();
        let requests: Vec<DecisionRequest> = [Dataset::Mini, Dataset::Test, Dataset::Benchmark]
            .into_iter()
            .cycle()
            .take(30)
            .map(gemm_request)
            .collect();
        let run = |d: &Dispatcher| -> Vec<Result<DispatchOutcome, DispatchError>> {
            requests.iter().map(|r| d.dispatch(r)).collect()
        };
        assert_eq!(run(&a), run(&b), "same seeds must replay bit-for-bit");
    }

    #[test]
    fn deadline_degraded_dispatch_records_the_reason() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let outcome = dispatcher
            .dispatch_within(&gemm_request(Dataset::Test), Duration::ZERO)
            .unwrap();
        assert_eq!(outcome.decision.policy, Policy::AlwaysOffload);
        assert_eq!(outcome.fallback, Some(FallbackReason::DeadlineExceeded));
        assert_eq!(outcome.device, Device::Gpu, "compiler default offloads");
        assert!(outcome.simulated_s > 0.0, "the request still completed");
    }

    #[test]
    fn host_is_never_fully_load_shed() {
        // Both devices permanently faulty: breakers on both trip open.
        // Dispatches keep completing... no — with p=1 everywhere nothing
        // can complete. Instead: host healthy, GPU broken, GPU breaker
        // open, *host* breaker forced open by injecting host faults first
        // is not possible with a healthy host plan. So: trip the host
        // breaker with a host plan that faults only early draws.
        // Deterministic route: host transient p=1 with max_attempts=1 and
        // threshold=1 trips the host breaker on the first host-decided
        // dispatch; after that a forced probe must still reach the host.
        let config = DispatcherConfig::default()
            .with_cpu_faults(FaultPlan::transient(5, 1.0))
            .with_gpu_faults(FaultPlan::permanent(6, 1.0))
            .with_retry(RetryConfig {
                max_attempts: 1,
                base_backoff_s: 0.0,
            })
            .with_breaker(BreakerConfig {
                failure_threshold: 1,
                open_backoff: 1000,
                max_backoff: 1000,
            });
        let dispatcher = Dispatcher::new(engine(), config);
        let request = gemm_request(Dataset::Benchmark);
        // Everything faults: the dispatch fails, both breakers trip.
        let err = dispatcher.dispatch(&request).unwrap_err();
        assert!(matches!(err, DispatchError::AllDevicesFailed { .. }));
        assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Open);
        assert_eq!(dispatcher.breaker_state(Device::Host), BreakerState::Open);
        // Next dispatch: both breakers reject, but the host is force-probed
        // anyway (and faults again — the guarantee is the *attempt*).
        let before = dispatcher.health(Device::Host).failures;
        let _ = dispatcher.dispatch(&request).unwrap_err();
        assert!(
            dispatcher.health(Device::Host).failures > before,
            "the forced host probe executed despite the open breaker"
        );
    }

    #[test]
    fn healthy_dispatcher_records_no_failures_or_retries() {
        // Health tallies are per-dispatcher, so this is race-free even with
        // fault-injecting tests running in sibling threads (the global
        // zero-added-counters claim is pinned by the single-test
        // `dispatch_p0` integration binary).
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
            let outcome = dispatcher.dispatch(&gemm_request(ds)).unwrap();
            assert_eq!(outcome.retries, 0);
            assert_eq!(outcome.attempts, 1);
        }
        for device in [Device::Gpu, Device::Host] {
            let snapshot = dispatcher.health(device);
            assert_eq!(snapshot.failures, 0, "{device}");
            assert_eq!(snapshot.trips, 0, "{device}");
        }
        assert_eq!(
            dispatcher.health(Device::Gpu).successes + dispatcher.health(Device::Host).successes,
            3
        );
    }

    fn two_accel_engine(offload: bool) -> DecisionEngine {
        use crate::fleet::Fleet;
        let platform = Platform::power8_k80();
        let fleet = Fleet::pair_labeled(&platform, "k80")
            .with_accelerator_from("v100", &Platform::power9_v100());
        let mut selector = Selector::new(platform).with_fleet(fleet);
        if offload {
            selector = selector.with_policy(Policy::AlwaysOffload);
        }
        let (k, _) = find_kernel("gemm").unwrap();
        DecisionEngine::new(selector, std::slice::from_ref(&k))
    }

    #[test]
    fn sick_accelerator_spills_to_its_peer_before_the_host() {
        // Primary "k80" permanently faulty; its healthy peer "v100" must
        // absorb the spill before the host is even considered.
        let config = DispatcherConfig::default()
            .with_device_faults("k80", FaultPlan::permanent(7, 1.0))
            .with_breaker(breaker());
        let dispatcher = Dispatcher::new(two_accel_engine(true), config);
        let outcome = dispatcher
            .dispatch(&gemm_request(Dataset::Benchmark))
            .unwrap();
        assert_eq!(
            &*outcome.decision.device_name, "k80",
            "policy offloads to the primary"
        );
        assert_eq!(&*outcome.device_name, "v100", "the peer absorbs the spill");
        assert_eq!(outcome.device_id, DeviceId(2));
        assert_eq!(outcome.device, Device::Gpu);
        assert!(matches!(
            outcome.fallback,
            Some(FallbackReason::DeviceFault {
                device: Device::Gpu,
                kind: FaultKind::Permanent,
            })
        ));
        let host = dispatcher.health_by_id(DeviceId::HOST).unwrap();
        assert_eq!(
            host.successes + host.failures,
            0,
            "the host was never touched"
        );
    }

    #[test]
    fn an_open_breaker_on_one_accelerator_never_affects_its_peer() {
        let config = DispatcherConfig::default()
            .with_device_faults("k80", FaultPlan::permanent(19, 1.0))
            .with_breaker(breaker());
        let dispatcher = Dispatcher::new(two_accel_engine(true), config);
        let request = gemm_request(Dataset::Benchmark);
        // Three dispatches = three k80 failures = the trip threshold.
        for _ in 0..3 {
            let outcome = dispatcher.dispatch(&request).unwrap();
            assert_eq!(&*outcome.device_name, "v100");
        }
        assert_eq!(
            dispatcher.breaker_state_by_id(DeviceId(1)),
            Some(BreakerState::Open)
        );
        // Isolation: the sibling accelerator and the host stay closed and
        // keep serving; the open breaker only re-routes, never blocks them.
        assert_eq!(
            dispatcher.breaker_state_by_id(DeviceId(2)),
            Some(BreakerState::Closed)
        );
        assert_eq!(
            dispatcher.breaker_state_by_id(DeviceId::HOST),
            Some(BreakerState::Closed)
        );
        let outcome = dispatcher.dispatch(&request).unwrap();
        assert_eq!(&*outcome.device_name, "v100");
        assert!(matches!(
            outcome.fallback,
            Some(FallbackReason::BreakerOpen {
                device: Device::Gpu
            })
        ));
        assert_eq!(outcome.attempts, 1, "only the healthy peer ran");
        let snapshots = dispatcher.publish_health_all();
        assert_eq!(snapshots.len(), 3);
        assert_eq!(snapshots[2].failures, 0, "v100 never failed");
    }

    #[test]
    fn capacity_exhaustion_spills_with_a_typed_reason() {
        use crate::fleet::Fleet;
        let platform = Platform::power8_k80();
        let fleet = Fleet::pair_labeled(&platform, "k80")
            .with_accelerator_from("v100", &Platform::power9_v100())
            .with_capacity("k80", 0);
        let selector = Selector::new(platform)
            .with_fleet(fleet)
            .with_policy(Policy::AlwaysOffload);
        let (k, _) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(selector, std::slice::from_ref(&k));
        let dispatcher = Dispatcher::new(engine, DispatcherConfig::default());
        let outcome = dispatcher
            .dispatch(&gemm_request(Dataset::Benchmark))
            .unwrap();
        assert_eq!(&*outcome.device_name, "v100");
        assert_eq!(
            outcome.fallback,
            Some(FallbackReason::CapacityExhausted {
                device: Device::Gpu
            })
        );
        assert_eq!(outcome.attempts, 1, "the gated device was never executed");
        let k80 = dispatcher.health_by_id(DeviceId(1)).unwrap();
        assert_eq!(k80.successes + k80.failures, 0);
    }

    #[test]
    fn unknown_device_fault_label_panics_at_construction() {
        let config =
            DispatcherConfig::default().with_device_faults("tpu", FaultPlan::permanent(1, 1.0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Dispatcher::new(engine(), config)
        }));
        assert!(result.is_err(), "unregistered label must panic");
    }

    #[test]
    fn dispatch_explained_carries_dispatch_terms() {
        let dispatcher = Dispatcher::new(engine(), DispatcherConfig::default());
        let (outcome, explanation) = dispatcher
            .dispatch_explained(&gemm_request(Dataset::Test))
            .unwrap();
        let terms = explanation.dispatch.as_ref().expect("dispatch terms");
        assert_eq!(terms.device, &*outcome.device_name);
        assert_eq!(
            terms.device,
            outcome.device.name(),
            "pair labels are host/gpu"
        );
        assert_eq!((terms.attempts, terms.retries), (1, 0));
        assert_eq!(terms.fallback, None);
        assert_eq!(terms.gpu_breaker, "closed");
        assert_eq!(terms.cpu_breaker, "closed");
        assert_eq!(terms.simulated_s, outcome.simulated_s);
        assert!(explanation.describes(&outcome.decision));
    }
}
