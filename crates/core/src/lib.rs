//! # hetsel-core — the hybrid decision framework
//!
//! The paper's primary contribution assembled: a **program attribute
//! database** populated at compile time with static features and symbolic
//! IPDA expressions ([`AttributeDatabase`]), a **platform** description
//! pairing the timing simulators with the analytical models' parameter
//! tables ([`Platform`]), and the **runtime selector** that binds runtime
//! values, evaluates both models, and dispatches the region to the
//! predicted-faster device ([`Selector`]).
//!
//! The crate also provides the evaluation machinery: simulate both targets
//! ("measure"), compare against the oracle, and aggregate policy outcomes —
//! everything the experiment binaries in `hetsel-bench` use to regenerate
//! the paper's tables and figures.

#![warn(missing_docs)]

pub mod attributes;
pub mod calib;
pub mod dispatch;
pub mod explain;
pub mod fleet;
pub mod history;
pub mod platform;
pub mod program;
pub mod selector;
pub mod snapshot;
pub mod split;

pub use attributes::{
    AccessExport, AttributeDatabase, CompiledModelRef, DatabaseExport, RegionAttributes,
    RegionExport,
};
pub use calib::{
    BindingClass, CalibRow, CalibrationMode, CalibrationTag, Calibrator, CalibratorConfig,
};
pub use dispatch::{
    BreakerConfig, BreakerState, DeviceHealthSnapshot, DispatchError, DispatchOutcome, Dispatcher,
    DispatcherConfig, FallbackReason, RetryConfig,
};
pub use explain::{
    validate_report_json, AccuracyBlock, BoundParam, CalibrationBlock, CpuTerms, DevicePrediction,
    DispatchTerms, ExplainReport, Explanation, GpuTerms, PhaseTimings,
};
pub use fleet::{AcceleratorDevice, DeviceId, DeviceKind, Fleet};
pub use history::{AdaptiveSelector, HistoryExport, HistoryRecord, ProfileHistory};
pub use platform::Platform;
pub use program::{plan_program, ProgramPlan};
pub use selector::{
    choose_among, choose_device, geomean, Decision, DecisionCacheStats, DecisionEngine,
    DecisionRequest, Device, DeviceChoice, Evaluation, Measured, ModelSource, Policy, Selector,
    DEFAULT_DECISION_CACHE, DEFAULT_DECISION_SHARDS,
};
pub use snapshot::SnapshotError;
pub use split::{best_split, SplitDecision};
