//! The program attribute database.
//!
//! The compile-time half of the hybrid framework (paper Figure 2): for every
//! outlined target region the compiler stores the static features the
//! models need — the instruction loadout skeleton, the IPDA symbolic stride
//! expressions, and the list of runtime parameters whose values must be
//! collected at the program point where the region is reached. The runtime
//! queries the database by region name, binds the missing values, and
//! evaluates the models.

use crate::fleet::DeviceId;
use crate::selector::Selector;
use crate::snapshot::SnapshotError;
use hetsel_ipda::{analyze_cached, KernelAccessInfo};
use hetsel_ir::{Kernel, Snap, SymbolTable};
use hetsel_models::{CompiledCpuModel, CompiledGpuModel, CostModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Dense identifier of one region in an [`AttributeDatabase`], assigned in
/// region-name order at compile time. The decision cache keys on this `u32`
/// instead of the region's name, so a cache probe neither hashes nor clones
/// a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

/// Compile-time attributes of one target region.
#[derive(Debug, Clone)]
pub struct RegionAttributes {
    /// Region name, shared: decisions carry a clone of this `Arc`, so
    /// copying a cached decision out of the cache never allocates.
    pub name: Arc<str>,
    /// The outlined region (the CPU and GPU versions share this IR). Shared
    /// with every compiled model of the region: a snapshot stores and
    /// decodes the kernel once per region.
    pub kernel: Arc<Kernel>,
    /// IPDA results: symbolic inter-thread strides per access (shared with
    /// the compiled models below).
    pub access_info: Arc<KernelAccessInfo>,
    /// Runtime parameters the models need bound before evaluation.
    pub required_params: Vec<String>,
    /// Interner over `required_params`, in declaration order: slot `i`
    /// corresponds to `required_params[i]`. The decision cache resolves a
    /// binding through this table to build its dense slot key.
    pub symbols: SymbolTable,
    /// The host model, fully compiled: evaluation only binds runtime values.
    pub cpu_model: CompiledCpuModel,
    /// The *primary* accelerator's model, fully compiled. (The platform's
    /// own accelerator parameters when compiled under a host-only fleet,
    /// so the pair view always has a GPU model to answer with.)
    pub gpu_model: CompiledGpuModel,
    /// Compiled models for the fleet's remaining accelerators, in fleet id
    /// order: `extra_accel_models[i]` belongs to `DeviceId(i + 2)`. Empty
    /// for the classic pair.
    pub extra_accel_models: Vec<CompiledGpuModel>,
}

/// A borrowed compiled model, resolved per `(RegionId, DeviceId)` by
/// [`AttributeDatabase::model_for`]: the host's CPU model or one
/// accelerator's GPU model.
#[derive(Debug, Clone, Copy)]
pub enum CompiledModelRef<'a> {
    /// The region's compiled host model.
    Host(&'a CompiledCpuModel),
    /// The compiled model of one registered accelerator.
    Accelerator(&'a CompiledGpuModel),
}

/// The database: a dense, name-ordered vector of region slots plus a
/// name → [`RegionId`] index. Lookups by name pay one `BTreeMap` probe;
/// everything downstream (the decision cache in particular) addresses
/// regions by their dense id.
///
/// A compiled database holds every region materialized. A database restored
/// from a snapshot holds validated-but-undecoded region blobs and
/// materializes each region on first touch: the container's checksum,
/// version and fleet fingerprint were verified up front, so per-region
/// decoding is pure deserialization work — and the cold path to a process's
/// *first* decision decodes exactly one region instead of the whole suite.
#[derive(Debug, Clone, Default)]
pub struct AttributeDatabase {
    /// Region slots in region-name order; index = `RegionId`.
    slots: Vec<RegionSlot>,
    index: BTreeMap<String, RegionId>,
}

/// One region: either materialized attributes (compiled databases start this
/// way) or a still-encoded snapshot blob decoded on first touch.
#[derive(Debug, Clone, Default)]
struct RegionSlot {
    /// The region's name, known without decoding (it lives in the snapshot's
    /// region index).
    name: Arc<str>,
    /// The decoded attributes, once somebody asked for them.
    ready: OnceLock<RegionAttributes>,
    /// The encoded blob this slot decodes from; `None` for compiled
    /// databases, whose `ready` is always set.
    raw: Option<RawRegion>,
}

/// A region's still-encoded bytes: a range of the (shared) snapshot payload.
#[derive(Debug, Clone)]
struct RawRegion {
    payload: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl AttributeDatabase {
    /// "Compilation": runs the static analyses over every region — IPDA,
    /// the MCA scheduling analysis, the instruction-loadout lowering — and
    /// stores the resulting attribute records, including both models in
    /// compiled form. `selector` supplies the model configuration (platform
    /// parameters, thread count, trip-count and coalescing modes) the
    /// compiled models are specialised to.
    pub fn compile(kernels: &[Kernel], selector: &Selector) -> AttributeDatabase {
        // One GPU cost model per registered fleet accelerator; the pair
        // view (`gpu_model`) is the primary one, falling back to the
        // platform's own parameters under a host-only fleet.
        let (cpu_cost, mut gpu_costs) = selector.fleet_cost_models();
        let primary_gpu_cost = if gpu_costs.is_empty() {
            selector.cost_models().1
        } else {
            gpu_costs.remove(0)
        };
        // Build through a name-keyed map first: duplicate names overwrite
        // (last kernel wins) and the final dense layout is name-ordered.
        let mut by_name = BTreeMap::new();
        for k in kernels {
            debug_assert_eq!(k.validate(), Ok(()));
            let required_params = k.params();
            let mut symbols = SymbolTable::new();
            for p in &required_params {
                symbols.intern(p);
            }
            by_name.insert(
                k.name.clone(),
                RegionAttributes {
                    name: Arc::from(k.name.as_str()),
                    required_params,
                    symbols,
                    access_info: analyze_cached(k),
                    cpu_model: cpu_cost.compile(k),
                    gpu_model: primary_gpu_cost.compile(k),
                    extra_accel_models: gpu_costs.iter().map(|g| g.compile(k)).collect(),
                    kernel: Arc::new(k.clone()),
                },
            );
        }
        let mut slots = Vec::with_capacity(by_name.len());
        let mut index = BTreeMap::new();
        for (name, attrs) in by_name {
            index.insert(name, RegionId(slots.len() as u32));
            slots.push(RegionSlot {
                name: Arc::clone(&attrs.name),
                ready: OnceLock::from(attrs),
                raw: None,
            });
        }
        AttributeDatabase { slots, index }
    }

    /// Materializes a slot: returns the decoded attributes, decoding the
    /// snapshot blob on first touch. Decoding sits behind the container's
    /// verified checksum, so a failure here means the *writer* produced an
    /// internally inconsistent blob — a bug, not disk corruption. It is
    /// still never a panic: the region reports as absent (decisions return
    /// `None`, never a wrong model) and a counter records the event.
    fn materialize<'a>(&self, slot: &'a RegionSlot) -> Option<&'a RegionAttributes> {
        if let Some(ready) = slot.ready.get() {
            return Some(ready);
        }
        let raw = slot.raw.as_ref()?;
        match decode_region(&slot.name, &raw.payload[raw.start..raw.end]) {
            Ok(attrs) => Some(slot.ready.get_or_init(|| attrs)),
            Err(_) => {
                hetsel_obs::static_counter!("hetsel.core.snapshot.region_decode_error").inc();
                None
            }
        }
    }

    /// Looks up a region by name.
    pub fn region(&self, name: &str) -> Option<&RegionAttributes> {
        self.region_entry(name).map(|(_, attrs)| attrs)
    }

    /// Looks up a region by name, returning its dense id alongside the
    /// attributes — the decision cache's entry point.
    pub fn region_entry(&self, name: &str) -> Option<(RegionId, &RegionAttributes)> {
        let id = *self.index.get(name)?;
        Some((id, self.materialize(&self.slots[id.0 as usize])?))
    }

    /// Looks up a region by its dense id.
    pub fn region_by_id(&self, id: RegionId) -> Option<&RegionAttributes> {
        self.slots
            .get(id.0 as usize)
            .and_then(|slot| self.materialize(slot))
    }

    /// The compiled model stored for `(region, device)`: the host's CPU
    /// model for [`DeviceId::HOST`], the primary accelerator's GPU model
    /// for id 1, and the extra accelerators' models beyond that. `None`
    /// for an unknown region or a device id the database carries no model
    /// for.
    pub fn model_for(&self, region: RegionId, device: DeviceId) -> Option<CompiledModelRef<'_>> {
        let attrs = self.region_by_id(region)?;
        match device.0 {
            0 => Some(CompiledModelRef::Host(&attrs.cpu_model)),
            1 => Some(CompiledModelRef::Accelerator(&attrs.gpu_model)),
            n => attrs
                .extra_accel_models
                .get(usize::from(n) - 2)
                .map(CompiledModelRef::Accelerator),
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates regions in name order, materializing any still-encoded
    /// slots along the way.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RegionAttributes)> {
        self.slots
            .iter()
            .filter_map(move |slot| self.materialize(slot).map(|r| (&*slot.name, r)))
    }

    /// Serializes every compiled artifact — bytecode, interners, loadouts,
    /// IPDA results, one model per fleet device — into the versioned binary
    /// container of [`crate::snapshot`], fingerprinted against `selector`'s
    /// model configuration. [`AttributeDatabase::load`] under the same
    /// configuration restores a database whose decisions are bit-for-bit
    /// those of the freshly compiled one.
    pub fn dump<W: std::io::Write>(
        &self,
        selector: &Selector,
        w: &mut W,
    ) -> Result<(), SnapshotError> {
        // Payload layout (v2): a region index — count, then one
        // `(name, blob_len)` entry per region in name order — followed by
        // the per-region blobs, concatenated in the same order. Each blob
        // decodes independently, which is what lets the loader defer a
        // region's decode until its first use.
        let mut sw = hetsel_ir::SnapWriter::new();
        sw.put_usize(self.slots.len());
        let mut blobs = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            // A still-encoded slot's bytes are already exactly what dump
            // would produce; copy them through without decoding.
            let blob = match (slot.ready.get(), &slot.raw) {
                (None, Some(raw)) => raw.payload[raw.start..raw.end].to_vec(),
                _ => {
                    let attrs = self.materialize(slot).ok_or(SnapshotError::Format(
                        hetsel_ir::SnapError::Malformed("undecodable region blob"),
                    ))?;
                    encode_region(attrs)
                }
            };
            sw.put_str(&slot.name);
            sw.put_usize(blob.len());
            blobs.push(blob);
        }
        for blob in &blobs {
            sw.put_raw(blob);
        }
        let container = hetsel_ir::snap::seal(
            hetsel_ir::snap::PAYLOAD_ATTRIBUTE_DB,
            selector.model_fingerprint(),
            sw.bytes(),
        );
        w.write_all(&container)?;
        Ok(())
    }

    /// Restores a database from a snapshot produced by
    /// [`AttributeDatabase::dump`]. Validates the container (magic, version,
    /// kind, checksum) and that the snapshot's fleet fingerprint matches
    /// `selector`'s current model configuration; any mismatch, truncation or
    /// corruption is a typed [`SnapshotError`] — never a panic, never a
    /// silently wrong model. Region blobs are *not* decoded here: each
    /// region materializes on first touch (seeding the IPDA memo with its
    /// stored analysis as it does), so the load itself costs one checksum
    /// pass plus the region index.
    pub fn load<R: std::io::Read>(
        selector: &Selector,
        r: &mut R,
    ) -> Result<AttributeDatabase, SnapshotError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        AttributeDatabase::from_snapshot_bytes(selector, &bytes)
    }

    /// [`AttributeDatabase::load`] over an in-memory container.
    pub fn from_snapshot_bytes(
        selector: &Selector,
        bytes: &[u8],
    ) -> Result<AttributeDatabase, SnapshotError> {
        let payload = hetsel_ir::snap::open(
            bytes,
            hetsel_ir::snap::PAYLOAD_ATTRIBUTE_DB,
            Some(selector.model_fingerprint()),
        )?;
        let mut rd = hetsel_ir::SnapReader::new(payload);
        let count = rd.get_len()?;
        let mut names: Vec<Arc<str>> = Vec::with_capacity(count);
        let mut lens: Vec<usize> = Vec::with_capacity(count);
        for _ in 0..count {
            let name = rd.get_str()?;
            if let Some(prev) = names.last() {
                // Strict name order is the dense-id invariant; it also rules
                // out duplicates in one check.
                if **prev >= *name {
                    return Err(
                        hetsel_ir::SnapError::Malformed("region index not in name order").into(),
                    );
                }
            }
            names.push(Arc::from(name));
            lens.push(rd.get_len()?);
        }
        if rd.remaining() != lens.iter().sum::<usize>() {
            return Err(hetsel_ir::SnapError::Truncated.into());
        }
        let blob_base = payload.len() - rd.remaining();
        let payload: Arc<[u8]> = Arc::from(payload);
        let mut slots = Vec::with_capacity(count);
        let mut index = BTreeMap::new();
        let mut start = blob_base;
        for (name, len) in names.into_iter().zip(lens) {
            index.insert(name.to_string(), RegionId(slots.len() as u32));
            slots.push(RegionSlot {
                name,
                ready: OnceLock::new(),
                raw: Some(RawRegion {
                    payload: Arc::clone(&payload),
                    start,
                    end: start + len,
                }),
            });
            start += len;
        }
        hetsel_obs::static_counter!("hetsel.core.snapshot.load_ok").inc();
        hetsel_obs::static_gauge!("hetsel.core.snapshot.bytes").set(bytes.len() as i64);
        Ok(AttributeDatabase { slots, index })
    }

    /// Loads the database from `path` if a valid snapshot for `selector`'s
    /// configuration is there; otherwise compiles from `kernels` and
    /// (best-effort) writes a fresh snapshot back for the next process. The
    /// returned error, if any, is why the snapshot path was not taken —
    /// `None` means the load succeeded.
    pub fn load_or_compile(
        path: &Path,
        kernels: &[Kernel],
        selector: &Selector,
    ) -> (AttributeDatabase, Option<SnapshotError>) {
        let fallback = match std::fs::read(path) {
            Ok(bytes) => match AttributeDatabase::from_snapshot_bytes(selector, &bytes) {
                Ok(db) => return (db, None),
                Err(e) => e,
            },
            Err(e) => SnapshotError::Io(e.to_string()),
        };
        hetsel_obs::static_counter!("hetsel.core.snapshot.fallback").inc();
        let db = AttributeDatabase::compile(kernels, selector);
        let mut buf = Vec::new();
        if db.dump(selector, &mut buf).is_ok() {
            // Best-effort: a read-only snapshot directory degrades to
            // compile-every-time, not to a failure.
            let _ = std::fs::write(path, &buf);
        }
        (db, Some(fallback))
    }

    /// The persistable summary of the database (what an object file's
    /// attribute section would carry).
    pub fn export(&self) -> DatabaseExport {
        DatabaseExport {
            regions: self
                .iter()
                .map(|(_, r)| RegionExport {
                    name: r.kernel.name.clone(),
                    required_params: r.required_params.clone(),
                    parallel_dims: r.kernel.parallel_loops().len() as u32,
                    accesses: r
                        .access_info
                        .accesses
                        .iter()
                        .map(|a| AccessExport {
                            array: r.kernel.array(a.array).name.clone(),
                            is_store: a.is_store,
                            thread_stride: format!("{}", a.thread_stride),
                            depth: a.enclosing.len() as u32,
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Serializable view of the attribute database.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct DatabaseExport {
    /// One record per region.
    pub regions: Vec<RegionExport>,
}

/// Serializable record of one region's static features.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct RegionExport {
    /// Region name.
    pub name: String,
    /// Runtime parameters required.
    pub required_params: Vec<String>,
    /// Number of parallel (collapse) dimensions.
    pub parallel_dims: u32,
    /// Per-access symbolic strides.
    pub accesses: Vec<AccessExport>,
}

/// Serializable record of one access's IPDA result.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct AccessExport {
    /// Array name.
    pub array: String,
    /// True for stores.
    pub is_store: bool,
    /// Symbolic inter-thread stride, rendered (e.g. `"[max]"`).
    pub thread_stride: String,
    /// Loop-nest depth of the access.
    pub depth: u32,
}

hetsel_ir::snap_newtype!(RegionId);

/// Encodes one region's blob: the kernel once, then the IPDA result, the
/// parameter list and interner, and every compiled model *without* its
/// embedded kernel ([`CompiledCpuModel::snap_body`] /
/// [`CompiledGpuModel::snap_body`]) — the decoder hands all of them the one
/// shared kernel.
fn encode_region(r: &RegionAttributes) -> Vec<u8> {
    let mut w = hetsel_ir::SnapWriter::new();
    r.kernel.snap(&mut w);
    r.access_info.snap(&mut w);
    r.required_params.snap(&mut w);
    r.symbols.snap(&mut w);
    r.cpu_model.snap_body(&mut w);
    r.gpu_model.snap_body(&mut w);
    w.put_usize(r.extra_accel_models.len());
    for m in &r.extra_accel_models {
        m.snap_body(&mut w);
    }
    w.into_bytes()
}

/// Decodes one region's blob (see [`encode_region`]), seeding the
/// process-wide IPDA memo with the stored analysis so post-load compiles of
/// the same kernel also skip the work.
fn decode_region(name: &Arc<str>, bytes: &[u8]) -> Result<RegionAttributes, hetsel_ir::SnapError> {
    let mut rd = hetsel_ir::SnapReader::new(bytes);
    let kernel = Arc::new(Kernel::unsnap(&mut rd)?);
    if kernel.name.as_str() != &**name {
        return Err(hetsel_ir::SnapError::Malformed(
            "region name does not match its kernel",
        ));
    }
    let access_info = Arc::<hetsel_ipda::KernelAccessInfo>::unsnap(&mut rd)?;
    let required_params = Vec::<String>::unsnap(&mut rd)?;
    let symbols = SymbolTable::unsnap(&mut rd)?;
    let cpu_model = CompiledCpuModel::unsnap_body(Arc::clone(&kernel), &mut rd)?;
    let gpu_model = CompiledGpuModel::unsnap_body(Arc::clone(&kernel), &mut rd)?;
    let extra = rd.get_len()?;
    let mut extra_accel_models = Vec::with_capacity(extra);
    for _ in 0..extra {
        extra_accel_models.push(CompiledGpuModel::unsnap_body(Arc::clone(&kernel), &mut rd)?);
    }
    rd.finish()?;
    hetsel_ipda::seed_analysis(&kernel, Arc::clone(&access_info));
    Ok(RegionAttributes {
        name: Arc::clone(name),
        kernel,
        access_info,
        required_params,
        symbols,
        cpu_model,
        gpu_model,
        extra_accel_models,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use hetsel_polybench::suite;

    fn selector() -> Selector {
        Selector::new(Platform::power9_v100())
    }

    #[test]
    fn compiles_entire_suite() {
        let kernels: Vec<Kernel> = suite().into_iter().flat_map(|b| b.kernels).collect();
        let db = AttributeDatabase::compile(&kernels, &selector());
        assert_eq!(db.len(), 24);
        assert!(db.region("gemm").is_some());
        assert!(db.region("atax.k2").is_some());
        assert!(db.region("missing").is_none());
    }

    #[test]
    fn required_params_recorded() {
        let kernels: Vec<Kernel> = hetsel_polybench::corr::kernels();
        let db = AttributeDatabase::compile(&kernels, &selector());
        let r = db.region("corr.corr").unwrap();
        assert!(r.required_params.contains(&"m".to_string()));
        assert!(r.required_params.contains(&"n".to_string()));
    }

    #[test]
    fn export_round_trips_through_json() {
        let kernels: Vec<Kernel> = hetsel_polybench::atax::kernels();
        let db = AttributeDatabase::compile(&kernels, &selector());
        let exp = db.export();
        let json = serde_json::to_string(&exp).unwrap();
        let back: DatabaseExport = serde_json::from_str(&json).unwrap();
        assert_eq!(exp, back);
        // The symbolic stride of atax.k1's A access survives as text.
        let k1 = back.regions.iter().find(|r| r.name == "atax.k1").unwrap();
        assert!(k1.accesses.iter().any(|a| a.thread_stride == "[n]"));
    }

    #[test]
    fn region_ids_are_dense_and_name_ordered() {
        let kernels: Vec<Kernel> = suite().into_iter().flat_map(|b| b.kernels).collect();
        let db = AttributeDatabase::compile(&kernels, &selector());
        for (expected, (name, _)) in db.iter().enumerate() {
            let (id, attrs) = db.region_entry(name).unwrap();
            assert_eq!(id, RegionId(expected as u32));
            assert_eq!(&*attrs.name, name);
            // The per-region interner mirrors required_params in order.
            let interned: Vec<&str> = attrs.symbols.iter().map(|(_, n)| n).collect();
            let required: Vec<&str> = attrs.required_params.iter().map(|s| s.as_str()).collect();
            assert_eq!(interned, required);
            // Id-based lookup agrees with name-based lookup.
            assert_eq!(db.region_by_id(id).unwrap().kernel.name, attrs.kernel.name);
        }
        assert!(db.region_by_id(RegionId(db.len() as u32)).is_none());
        assert!(db.region_entry("missing").is_none());
    }

    #[test]
    fn fleet_compile_stores_one_model_per_accelerator() {
        use crate::fleet::Fleet;
        let kernels: Vec<Kernel> = hetsel_polybench::atax::kernels();
        let fleet = Fleet::pair_labeled(&Platform::power9_v100(), "v100")
            .with_accelerator_from("k80", &Platform::power8_k80());
        let sel = Selector::new(Platform::power9_v100()).with_fleet(fleet);
        let db = AttributeDatabase::compile(&kernels, &sel);
        let (id, attrs) = db.region_entry("atax.k1").unwrap();
        assert_eq!(attrs.extra_accel_models.len(), 1);
        assert!(matches!(
            db.model_for(id, DeviceId::HOST),
            Some(CompiledModelRef::Host(_))
        ));
        assert!(matches!(
            db.model_for(id, DeviceId(1)),
            Some(CompiledModelRef::Accelerator(_))
        ));
        assert!(matches!(
            db.model_for(id, DeviceId(2)),
            Some(CompiledModelRef::Accelerator(_))
        ));
        assert!(db.model_for(id, DeviceId(3)).is_none());
        assert!(db.model_for(RegionId(999), DeviceId::HOST).is_none());
        // The two accelerators' models really differ (K80 vs V100 params):
        // a bound evaluation must produce different times.
        let (_, bind) = hetsel_polybench::find_kernel("atax.k1").unwrap();
        let binding = bind(hetsel_polybench::Dataset::Benchmark);
        let v100 = attrs.gpu_model.evaluate(&binding).unwrap().seconds;
        let k80 = attrs.extra_accel_models[0]
            .evaluate(&binding)
            .unwrap()
            .seconds;
        assert_ne!(v100, k80);
        // A host-only fleet still compiles a (fallback) pair GPU model.
        let host_only = Selector::new(Platform::power9_v100()).with_fleet(Fleet::host_only());
        let db = AttributeDatabase::compile(&kernels, &host_only);
        let attrs = db.region("atax.k1").unwrap();
        assert!(attrs.extra_accel_models.is_empty());
        assert!(attrs.gpu_model.evaluate(&binding).is_ok());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let kernels: Vec<Kernel> = suite().into_iter().flat_map(|b| b.kernels).collect();
        let db = AttributeDatabase::compile(&kernels, &selector());
        let names: Vec<&str> = db.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
