//! Program-level selection with data-residency awareness.
//!
//! The paper times every region with its own transfers — the cost a single
//! launch pays in isolation. Real programs chain regions (`2MM` feeds `tmp`
//! from its first kernel into its second), and OpenMP's `target data`
//! construct lets consecutive GPU regions keep intermediates resident on
//! the device. This module extends the selector across a whole program:
//! enumerate the (small) space of per-region device assignments, charge
//! transfers only when an array actually crosses the bus given the
//! residency the previous regions left behind, and pick the cheapest plan.
//!
//! The decision remains analytical: for a `k`-region program there are
//! `2^k` closed-form evaluations (Polybench programs have `k ≤ 4`).

use crate::platform::Platform;
use crate::selector::Device;
use hetsel_ir::{Binding, Kernel, Transfer};
use hetsel_models::{CoalescingMode, TripMode};
use std::collections::HashMap;

/// Where an array's current value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residency {
    Host,
    DeviceValid,
    /// Valid on both (after an upload of a read-only array).
    Both,
}

/// One program-level plan.
#[derive(Debug, Clone)]
pub struct ProgramPlan {
    /// Chosen device per region, in program order.
    pub assignments: Vec<(String, Device)>,
    /// Predicted program time under this plan (exec + actual transfers +
    /// final downloads), seconds.
    pub predicted_s: f64,
    /// Predicted time under the paper's per-region decisions, each paying
    /// its own full transfers, seconds.
    pub naive_predicted_s: f64,
}

impl ProgramPlan {
    /// Predicted gain of residency-aware planning over per-region selection.
    pub fn gain_over_naive(&self) -> f64 {
        self.naive_predicted_s / self.predicted_s
    }
}

/// Per-region closed-form costs, split so transfers can be recharged.
struct RegionCost {
    cpu_exec_s: f64,
    gpu_exec_s: f64, // kernel + launch, no transfers
    gpu_full_s: f64, // kernel + launch + both transfers (paper's mode)
}

/// Plans a program (regions in execution order, sharing arrays by name).
pub fn plan_program(
    kernels: &[Kernel],
    binding: &Binding,
    platform: &Platform,
) -> Option<ProgramPlan> {
    assert!(!kernels.is_empty() && kernels.len() <= 16, "program size");
    let bus = &platform.gpu_model.device.bus;
    let bw = bus.bandwidth_gbs * 1e9;
    let lat = bus.latency_us * 1e-6;

    // Closed-form per-region costs.
    let mut costs = Vec::with_capacity(kernels.len());
    for k in kernels {
        let cpu = hetsel_models::cpu::predict(
            k,
            binding,
            &platform.cpu_model,
            platform.host_threads,
            TripMode::Runtime,
        )?;
        let gpu = hetsel_models::gpu::predict(
            k,
            binding,
            &platform.gpu_model,
            TripMode::Runtime,
            CoalescingMode::Ipda,
        )?;
        let launch = platform.gpu_model.device.launch_overhead_us * 1e-6;
        costs.push(RegionCost {
            cpu_exec_s: cpu.seconds,
            gpu_exec_s: gpu.kernel_seconds + launch,
            gpu_full_s: gpu.seconds,
        });
    }

    // Naive reference: independent decisions, full transfers every launch.
    let naive: f64 = costs.iter().map(|c| c.cpu_exec_s.min(c.gpu_full_s)).sum();

    // Enumerate assignments.
    let n = kernels.len();
    let mut best: Option<(u32, f64)> = None;
    for mask in 0..(1u32 << n) {
        let mut time = 0.0;
        let mut residency: HashMap<&str, Residency> = HashMap::new();
        for (i, k) in kernels.iter().enumerate() {
            let on_gpu = mask & (1 << i) != 0;
            if on_gpu {
                time += costs[i].gpu_exec_s;
            } else {
                time += costs[i].cpu_exec_s;
            }
            // Bytes actually crossing the bus for this region; the latency
            // is paid once per direction, as a batched `map` does.
            let mut up = 0.0f64;
            let mut down = 0.0f64;
            for a in &k.arrays {
                let bytes = a.bytes(binding)? as f64;
                let state = residency.entry(a.name.as_str()).or_insert(Residency::Host);
                let reads = a.transfer.to_device() || a.transfer == Transfer::Alloc;
                let writes = a.transfer.from_device() || a.transfer == Transfer::InOut;
                if on_gpu {
                    // Inputs must be device-valid.
                    if reads && *state == Residency::Host && a.transfer != Transfer::Alloc {
                        up += bytes;
                        *state = Residency::Both;
                    }
                    if writes || a.transfer == Transfer::Alloc {
                        *state = Residency::DeviceValid;
                    }
                } else {
                    // Host execution needs host-valid inputs.
                    if reads && *state == Residency::DeviceValid {
                        down += bytes;
                        *state = Residency::Both;
                    }
                    if writes {
                        *state = Residency::Host;
                    }
                }
            }
            if up > 0.0 {
                time += lat + up / bw;
            }
            if down > 0.0 {
                time += lat + down / bw;
            }
        }
        // Epilogue: everything the program publishes must end on the host.
        let mut published: HashMap<&str, (f64, bool)> = HashMap::new();
        for k in kernels {
            for a in &k.arrays {
                let e = published.entry(a.name.as_str()).or_insert((0.0, false));
                e.0 = a.bytes(binding)? as f64;
                e.1 |= a.transfer.from_device();
            }
        }
        let mut final_down = 0.0f64;
        for (name, (bytes, is_output)) in &published {
            if *is_output && residency.get(name) == Some(&Residency::DeviceValid) {
                final_down += bytes;
            }
        }
        if final_down > 0.0 {
            time += lat + final_down / bw;
        }
        if best.map(|(_, t)| time < t).unwrap_or(true) {
            best = Some((mask, time));
        }
    }
    let (mask, predicted_s) = best?;
    let assignments = kernels
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let d = if mask & (1 << i) != 0 {
                Device::Gpu
            } else {
                Device::Host
            };
            (k.name.clone(), d)
        })
        .collect();
    Some(ProgramPlan {
        assignments,
        predicted_s,
        naive_predicted_s: naive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_polybench::{suite, Dataset};

    fn program(name: &str) -> (Vec<Kernel>, Binding, Binding) {
        let b = suite().into_iter().find(|b| b.name == name).unwrap();
        let test = (b.binding)(Dataset::Test);
        let bench = (b.binding)(Dataset::Benchmark);
        (b.kernels, test, bench)
    }

    #[test]
    fn residency_plan_never_loses_to_naive() {
        let platform = Platform::power9_v100();
        for b in suite() {
            for ds in Dataset::paper_modes() {
                let binding = (b.binding)(ds);
                let p = plan_program(&b.kernels, &binding, &platform).unwrap();
                assert!(
                    p.predicted_s <= p.naive_predicted_s + 1e-12,
                    "{}/{ds}: plan {} vs naive {}",
                    b.name,
                    p.predicted_s,
                    p.naive_predicted_s
                );
            }
        }
    }

    #[test]
    fn chained_products_keep_intermediates_resident() {
        // 3MM benchmark: all three kernels belong on the GPU and the
        // intermediates E and F never cross the bus — the plan must beat
        // paying their transfers twice.
        let (kernels, _, bench) = program("3MM");
        let platform = Platform::power9_v100();
        let p = plan_program(&kernels, &bench, &platform).unwrap();
        assert!(
            p.assignments.iter().all(|(_, d)| *d == Device::Gpu),
            "{p:?}"
        );
        assert!(p.gain_over_naive() > 1.0, "{p:?}");
    }

    #[test]
    fn catastrophic_gpu_kernels_stay_home_despite_residency() {
        // CORR in test mode: the triangular product is ~20x slower on the
        // GPU than on the host — no amount of transfer elision can justify
        // offloading it, so the plan must keep it (at least) on the host.
        let (kernels, test, _) = program("CORR");
        let platform = Platform::power9_v100();
        let p = plan_program(&kernels, &test, &platform).unwrap();
        let corr = p
            .assignments
            .iter()
            .find(|(name, _)| name == "corr.corr")
            .unwrap();
        assert_eq!(corr.1, Device::Host, "{p:?}");
        assert!(p.predicted_s <= p.naive_predicted_s + 1e-12);
    }

    #[test]
    fn residency_can_legitimately_flip_borderline_regions_to_gpu() {
        // COVAR benchmark: per-region selection keeps the mean kernel home
        // (0.89x); once the covariance product is on the GPU anyway, the
        // residency-aware plan may pull the whole chain over — the gain
        // over naive must reflect the saved transfers.
        let (kernels, _, bench) = program("COVAR");
        let platform = Platform::power9_v100();
        let p = plan_program(&kernels, &bench, &platform).unwrap();
        assert!(p.gain_over_naive() >= 1.0, "{p:?}");
    }

    #[test]
    fn single_kernel_program_matches_selector_logic() {
        let (kernels, test, _) = program("GEMM");
        let platform = Platform::power9_v100();
        let p = plan_program(&kernels, &test, &platform).unwrap();
        assert_eq!(p.assignments.len(), 1);
        // With one region the plan's naive reference and the chosen cost
        // agree up to the epilogue-vs-inline accounting of the same bytes.
        let ratio = p.predicted_s / p.naive_predicted_s;
        assert!((0.8..=1.05).contains(&ratio), "{ratio}");
    }
}
