//! The `explain` report: why a region went to the device it went to.
//!
//! [`Decision`] records the selector's verdict and its
//! headline evidence; an [`Explanation`] records *everything* behind it —
//! the resolved runtime bindings, both models' predicted times with the
//! dominant cost-model terms (MWP/CWP, coalesced vs. uncoalesced
//! instruction census, `#OMP_Rep`, fork/join and chunking overheads), the
//! winning margin, the typed fallback reason when a model could not
//! evaluate, and per-phase nanosecond timings. Explanations serialize to
//! JSON (schema documented in DESIGN.md §"Observability") and back, so the
//! `explain` binary has a machine mode and CI can validate the contract.

use std::time::Instant;

use crate::attributes::RegionAttributes;
use crate::calib::CalibrationMode;
use crate::selector::{
    choose_among, choose_device, Decision, Device, DeviceChoice, ModelSource, Policy, Selector,
};
use hetsel_ir::Binding;
use hetsel_models::{CpuPrediction, GpuPrediction, HongCase, ModelError};
use serde::{Deserialize, Serialize};

/// One resolved runtime parameter of the region (`value: None` = the
/// runtime never bound it — the classic fallback trigger).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundParam {
    /// Parameter name, e.g. `"n"`.
    pub name: String,
    /// Bound value, if any.
    pub value: Option<i64>,
}

/// The host model's term breakdown (paper Figure 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuTerms {
    /// Predicted host time, seconds.
    pub seconds: f64,
    /// Total predicted cycles (fork + schedule + chunk + join).
    pub cycles: f64,
    /// `Machine_cycles_per_iter` from the MCA analysis.
    pub machine_cycles_per_iter: f64,
    /// Static chunk size (iterations per thread).
    pub chunk: u64,
    /// OpenMP threads assumed.
    pub threads: u32,
    /// SIMD factor credited by the vectorisation assessment.
    pub vector_factor: f64,
    /// TLB cost per chunk, cycles (the model's only memory-system term).
    pub tlb_cache_cycles: f64,
    /// `Fork_c`: startup plus per-thread fork/join scaling.
    pub fork_cycles: f64,
    /// `Schedule_c` (static dispatch).
    pub schedule_cycles: f64,
    /// `Loop_chunk_c` (machine cycles + cache + loop overhead).
    pub loop_chunk_cycles: f64,
    /// `Join_c` (synchronisation barrier).
    pub join_cycles: f64,
}

impl CpuTerms {
    fn from_prediction(p: &CpuPrediction, threads: u32) -> CpuTerms {
        CpuTerms {
            seconds: p.seconds,
            cycles: p.cycles,
            machine_cycles_per_iter: p.machine_cycles_per_iter,
            chunk: p.chunk,
            threads,
            vector_factor: p.vector_factor,
            tlb_cache_cycles: p.cache_cost,
            fork_cycles: p.fork_cycles,
            schedule_cycles: p.schedule_cycles,
            loop_chunk_cycles: p.loop_chunk_cycles,
            join_cycles: p.join_cycles,
        }
    }
}

/// The device model's term breakdown (paper Figures 4–5 + `#OMP_Rep`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuTerms {
    /// Predicted device time (kernel + transfers + launch), seconds.
    pub seconds: f64,
    /// Kernel execution component, seconds.
    pub kernel_seconds: f64,
    /// Data-movement component (both directions), seconds.
    pub transfer_seconds: f64,
    /// `Exec_cycles` of Figure 4.
    pub exec_cycles: f64,
    /// Memory-warp parallelism.
    pub mwp: f64,
    /// Compute-warp parallelism.
    pub cwp: f64,
    /// Resident warps per SM (`N`).
    pub n_warps: f64,
    /// Which Figure 4 case fired: `balanced`, `memory_bound` or
    /// `compute_bound`.
    pub hong_case: String,
    /// `#Rep` (block waves).
    pub rep: f64,
    /// `#OMP_Rep` (the paper's extension).
    pub omp_rep: f64,
    /// Dynamic coalesced memory instructions per iteration (IPDA census).
    pub coal_mem_insts: f64,
    /// Dynamic uncoalesced memory instructions per iteration.
    pub uncoal_mem_insts: f64,
    /// Selected grid: blocks.
    pub blocks: u64,
    /// Selected grid: threads per block.
    pub threads_per_block: u32,
    /// Occupancy: warps per SM.
    pub warps_per_sm: u32,
    /// Occupancy: SMs with at least one block.
    pub active_sms: u32,
}

impl GpuTerms {
    fn from_prediction(p: &GpuPrediction) -> GpuTerms {
        GpuTerms {
            seconds: p.seconds,
            kernel_seconds: p.kernel_seconds,
            transfer_seconds: p.transfer_seconds,
            exec_cycles: p.exec_cycles,
            mwp: p.mwp,
            cwp: p.cwp,
            n_warps: p.n_warps,
            hong_case: match p.case {
                HongCase::Balanced => "balanced",
                HongCase::MemoryBound => "memory_bound",
                HongCase::ComputeBound => "compute_bound",
            }
            .to_string(),
            rep: p.rep,
            omp_rep: p.omp_rep,
            coal_mem_insts: p.coal_mem_insts,
            uncoal_mem_insts: p.uncoal_mem_insts,
            blocks: p.geometry.blocks,
            threads_per_block: p.geometry.threads_per_block,
            warps_per_sm: p.occupancy.warps_per_sm,
            active_sms: p.occupancy.active_sms,
        }
    }
}

/// One fleet candidate's verdict inside an [`Explanation`]: the device's
/// interned label, its kind, and either a usable predicted time or the
/// typed reason its model produced none. The pair-era `predicted_cpu_s` /
/// `predicted_gpu_s` headline fields are projections of this list (the
/// accelerator side through the representative-candidate rule); `devices`
/// is the authoritative per-candidate record for N-device fleets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePrediction {
    /// Fleet device label, e.g. `"host"`, `"gpu"`, `"v100"`.
    pub name: String,
    /// Device kind: `host` or `accelerator`.
    pub kind: String,
    /// Predicted time, seconds, when the device's model evaluated.
    pub predicted_s: Option<f64>,
    /// Why the model produced no prediction, when it didn't.
    pub error: Option<String>,
}

/// How the dispatch runtime actually ran the region — present only when
/// the explanation came from [`crate::Dispatcher::dispatch_explained`].
/// Everything here is deterministic under fixed fault seeds, matching
/// [`crate::DispatchOutcome`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchTerms {
    /// Fleet label of the device the request finally ran on (the host
    /// label or an accelerator label; may differ from the explanation's
    /// decided `device_name` after a fallback).
    pub device: String,
    /// Execution attempts across all devices (≥ 1).
    pub attempts: u32,
    /// Transient-fault retries among those attempts.
    pub retries: u32,
    /// First fallback reason (`deadline_exceeded`, `breaker_open`,
    /// `device_fault`, `capacity_exhausted`), when the request left the
    /// decided path.
    pub fallback: Option<String>,
    /// Simulated execution time, seconds (jitter and retry backoff
    /// included).
    pub simulated_s: f64,
    /// GPU breaker state after the dispatch: `closed`, `open`, `half_open`.
    pub gpu_breaker: String,
    /// Host breaker state after the dispatch.
    pub cpu_breaker: String,
}

/// Streaming prediction-accuracy statistics for the `(region, executed
/// device)` pair, copied out of the process-wide
/// [`hetsel_obs::AccuracyObservatory`] — present only when the explanation
/// came from [`crate::Dispatcher::dispatch_explained`] *and* the
/// observatory holds at least one sample for the pair. Errors are signed
/// relative errors `(predicted − observed) / observed`, so a negative mean
/// means the model is optimistic (under-predicts the runtime).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyBlock {
    /// Fleet label of the executed device the stats are scoped to.
    pub device: String,
    /// Samples accumulated for this `(region, device)` pair.
    pub samples: u64,
    /// Welford mean of the signed relative error.
    pub mean_rel_error: f64,
    /// Welford (sample) variance of the signed relative error.
    pub rel_error_variance: f64,
    /// Mean signed absolute bias, seconds (`predicted − observed`).
    pub mean_bias_s: f64,
    /// Misprediction flips: samples where the predicted CPU/accelerator
    /// ordering disagreed with the observed one.
    pub flips: u64,
}

impl AccuracyBlock {
    /// Copies an observatory row into the explain-JSON shape.
    pub fn from_row(row: &hetsel_obs::AccuracyRow) -> Self {
        AccuracyBlock {
            device: row.device.clone(),
            samples: row.samples,
            mean_rel_error: row.mean_rel_error,
            rel_error_variance: row.rel_error_variance,
            mean_bias_s: row.mean_bias_s,
            flips: row.flips,
        }
    }
}

/// How online calibration touched (or would touch) this decision —
/// present exactly when the selector runs in Shadow or Active calibration
/// mode. `raw_*` are the uncorrected analytical predictions; the
/// explanation's headline `predicted_*` fields carry the *effective*
/// numbers the verdict was taken over (corrected in Active mode, raw
/// otherwise), so `applied` implies `predicted ≈ raw × factor`. The term
/// breakdowns (`cpu` / `gpu`) always stay raw: calibration scales the
/// models' outputs, it does not re-derive their internals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationBlock {
    /// Calibration mode the decision ran under: `shadow` or `active`
    /// (`off` never emits a block).
    pub mode: String,
    /// Binding class the corrections are scoped to (bit-length signature
    /// of the region's bound parameters).
    pub class: u8,
    /// Uncorrected host prediction, seconds.
    pub raw_cpu_s: Option<f64>,
    /// Uncorrected representative-accelerator prediction, seconds.
    pub raw_gpu_s: Option<f64>,
    /// Published host correction factor (1.0 = cold or unbiased).
    pub cpu_factor: f64,
    /// Published correction factor for the representative accelerator.
    pub gpu_factor: f64,
    /// Calibration samples behind the host cell.
    pub cpu_samples: u64,
    /// Calibration samples behind the representative accelerator's cell.
    pub gpu_samples: u64,
    /// True when corrected predictions decided the verdict (Active mode
    /// with at least one non-identity factor on a usable prediction).
    pub applied: bool,
    /// True when the corrected ordering disagrees with the raw ordering —
    /// in Shadow mode the flip that *would* have happened.
    pub flipped: bool,
}

/// Wall-clock cost of producing the explanation, by phase.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Attribute-database compile time for this region, when the caller
    /// measured one (`None` = the region was already compiled).
    pub compile_ns: Option<u64>,
    /// Host-model evaluation, nanoseconds.
    pub cpu_eval_ns: u64,
    /// Device-model evaluation, nanoseconds.
    pub gpu_eval_ns: u64,
    /// Whole explain call, nanoseconds (≥ the two evaluations).
    pub total_ns: u64,
}

/// The full, serializable record of one offloading decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Region name.
    pub region: String,
    /// Selection policy: `model_driven`, `always_host` or `always_offload`.
    pub policy: String,
    /// Chosen target kind: `host` or `gpu`.
    pub device: String,
    /// Fleet label of the chosen device (e.g. `host`, `gpu`, `v100`) —
    /// always one of the `devices[].name` entries.
    pub device_name: String,
    /// The region's required parameters with their resolved values.
    pub bindings: Vec<BoundParam>,
    /// Predicted host time, seconds.
    pub predicted_cpu_s: Option<f64>,
    /// Predicted device time, seconds.
    pub predicted_gpu_s: Option<f64>,
    /// Predicted offloading speedup (host / device) when both resolve.
    pub speedup: Option<f64>,
    /// Winning margin: `(slower − faster) / slower`, in `[0, 1)`.
    pub margin: Option<f64>,
    /// Why the host model produced no prediction, when it didn't.
    pub cpu_error: Option<String>,
    /// Why the device model produced no prediction — the recorded reason
    /// behind a fallback-to-offload decision.
    pub gpu_error: Option<String>,
    /// Host model term breakdown.
    pub cpu: Option<CpuTerms>,
    /// Device model term breakdown.
    pub gpu: Option<GpuTerms>,
    /// One verdict per fleet candidate, host first then accelerators in
    /// registration order.
    pub devices: Vec<DevicePrediction>,
    /// True when a decision for this exact key currently sits in the
    /// engine's decision cache.
    pub cached: bool,
    /// How the dispatch runtime ran the region, when one did (absent for
    /// pure decision explanations).
    pub dispatch: Option<DispatchTerms>,
    /// Prediction-accuracy stats for the executed device, when the
    /// accuracy observatory has samples for this region (absent for pure
    /// decision explanations).
    pub accuracy: Option<AccuracyBlock>,
    /// How online calibration touched this decision (present exactly in
    /// Shadow and Active calibration modes).
    pub calibration: Option<CalibrationBlock>,
    /// Per-phase timings.
    pub timings: PhaseTimings,
}

fn policy_str(p: Policy) -> &'static str {
    p.name()
}

fn device_str(d: Device) -> &'static str {
    d.name()
}

impl Explanation {
    /// The device the explanation says was chosen.
    pub fn chosen_device(&self) -> Option<Device> {
        match self.device.as_str() {
            "host" => Some(Device::Host),
            "gpu" => Some(Device::Gpu),
            _ => None,
        }
    }

    /// True iff this explanation describes `decision` — same region, same
    /// device, same predictions and the same recorded errors.
    pub fn describes(&self, decision: &Decision) -> bool {
        self.region.as_str() == &*decision.region
            && self.device == device_str(decision.device)
            && self.device_name.as_str() == &*decision.device_name
            && self.policy == policy_str(decision.policy)
            && (decision.policy != Policy::ModelDriven
                || (self.predicted_cpu_s == decision.predicted_cpu_s
                    && self.predicted_gpu_s == decision.predicted_gpu_s
                    && self.cpu_error == decision.cpu_error.as_ref().map(|e| e.to_string())
                    && self.gpu_error == decision.gpu_error.as_ref().map(|e| e.to_string())))
    }

    /// Pretty multi-line report for terminals (the `explain` binary's
    /// default output).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let bindings = self
            .bindings
            .iter()
            .map(|b| match b.value {
                Some(v) => format!("{}={v}", b.name),
                None => format!("{}=?", b.name),
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "== {}  [{}]  →  {}\n",
            self.region,
            bindings,
            self.device_name.to_uppercase()
        ));
        if self.devices.len() > 2 {
            let rows = self
                .devices
                .iter()
                .map(|d| match d.predicted_s {
                    Some(s) => format!("{} {}", d.name, fmt_s(s)),
                    None => format!("{} —", d.name),
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("   candidates: {rows}\n"));
        }
        match (self.predicted_cpu_s, self.predicted_gpu_s) {
            (Some(c), Some(g)) => {
                out.push_str(&format!(
                    "   predicted: cpu {}  gpu {}  speedup {:.3}×  margin {:.1}%\n",
                    fmt_s(c),
                    fmt_s(g),
                    self.speedup.unwrap_or(f64::NAN),
                    self.margin.unwrap_or(f64::NAN) * 100.0
                ));
            }
            _ => {
                out.push_str("   predicted: (fallback — model could not evaluate)\n");
            }
        }
        if let Some(e) = &self.cpu_error {
            out.push_str(&format!("   cpu fallback reason: {e}\n"));
        }
        if let Some(e) = &self.gpu_error {
            out.push_str(&format!("   gpu fallback reason: {e}\n"));
        }
        if let Some(c) = &self.cpu {
            out.push_str(&format!(
                "   cpu terms: {:.1} cyc/iter × chunk {} on {} threads, vec ×{:.1}\n",
                c.machine_cycles_per_iter, c.chunk, c.threads, c.vector_factor
            ));
            out.push_str(&format!(
                "              fork {:.0} + sched {:.0} + chunk {:.0} (tlb {:.0}) + join {:.0} = {:.0} cycles\n",
                c.fork_cycles,
                c.schedule_cycles,
                c.loop_chunk_cycles,
                c.tlb_cache_cycles,
                c.join_cycles,
                c.cycles
            ));
        }
        if let Some(g) = &self.gpu {
            out.push_str(&format!(
                "   gpu terms: {} case, MWP {:.1} CWP {:.1} N {:.0}, rep {:.1} omp_rep {:.0}\n",
                g.hong_case, g.mwp, g.cwp, g.n_warps, g.rep, g.omp_rep
            ));
            out.push_str(&format!(
                "              mem insts: {:.1} coalesced / {:.1} uncoalesced; grid {}×{} ({} warps/SM, {} SMs)\n",
                g.coal_mem_insts,
                g.uncoal_mem_insts,
                g.blocks,
                g.threads_per_block,
                g.warps_per_sm,
                g.active_sms
            ));
            out.push_str(&format!(
                "              kernel {} + transfer {}\n",
                fmt_s(g.kernel_seconds),
                fmt_s(g.transfer_seconds)
            ));
        }
        if let Some(d) = &self.dispatch {
            let fallback = match &d.fallback {
                Some(reason) => format!("  fallback: {reason}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "   dispatch: ran on {} in {} ({} attempt{}, {} retr{}){fallback}\n",
                d.device.to_uppercase(),
                fmt_s(d.simulated_s),
                d.attempts,
                if d.attempts == 1 { "" } else { "s" },
                d.retries,
                if d.retries == 1 { "y" } else { "ies" },
            ));
            out.push_str(&format!(
                "              breakers: gpu {}  host {}\n",
                d.gpu_breaker, d.cpu_breaker
            ));
        }
        let t = &self.timings;
        let compile = match t.compile_ns {
            Some(ns) => format!("compile {} + ", fmt_ns(ns)),
            None => String::new(),
        };
        out.push_str(&format!(
            "   cost: {compile}cpu eval {} + gpu eval {} (total {}){}\n",
            fmt_ns(t.cpu_eval_ns),
            fmt_ns(t.gpu_eval_ns),
            fmt_ns(t.total_ns),
            if self.cached {
                "  [decision cached]"
            } else {
                ""
            }
        ));
        out
    }
}

fn fmt_s(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.3}s", s)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{:.1}ms", ns as f64 / 1e6)
    }
}

impl Selector {
    /// Produces the full [`Explanation`] for a region under a binding,
    /// evaluating the host model and every registered accelerator's
    /// *precompiled* model with their complete term breakdowns. The
    /// explanation's verdict is exactly what [`Selector::decide`] decides
    /// for the same inputs: the same NaN-safe argmin over the fleet, and
    /// the same representative-candidate rule behind the pair-era
    /// `predicted_gpu_s` / `gpu` headline fields.
    pub fn explain(&self, attrs: &RegionAttributes, binding: &Binding) -> Explanation {
        let _span = hetsel_obs::span_with("hetsel.core.explain", || {
            vec![hetsel_obs::trace::field(
                "region",
                attrs.kernel.name.as_str(),
            )]
        });
        let t_total = Instant::now();

        let t_cpu = Instant::now();
        let cpu_res: Result<CpuPrediction, ModelError> = attrs.cpu_model.evaluate(binding);
        let cpu_eval_ns = t_cpu.elapsed().as_nanos() as u64;

        // One evaluation per registered accelerator: slot 0 is the primary
        // `gpu_model`, slot `i` is `extra_accel_models[i - 1]`. The same
        // sanitization as the decision path applies to every slot: an `Ok`
        // carrying a non-finite or negative time is a model failure, and
        // its term breakdown is dropped along with the prediction.
        let slots = self
            .fleet
            .accelerator_count()
            .min(attrs.extra_accel_models.len() + 1);
        let t_gpu = Instant::now();
        let accel_res: Vec<Result<GpuPrediction, ModelError>> = (0..slots)
            .map(|i| {
                let model = if i == 0 {
                    &attrs.gpu_model
                } else {
                    &attrs.extra_accel_models[i - 1]
                };
                model.evaluate(binding).and_then(|p| {
                    if ModelError::usable_time(p.seconds) {
                        Ok(p)
                    } else {
                        Err(ModelError::non_finite(p.seconds))
                    }
                })
            })
            .collect();
        let gpu_eval_ns = t_gpu.elapsed().as_nanos() as u64;

        let cpu_res: Result<CpuPrediction, ModelError> = cpu_res.and_then(|p| {
            if ModelError::usable_time(p.seconds) {
                Ok(p)
            } else {
                Err(ModelError::non_finite(p.seconds))
            }
        });

        let raw_cpu_s = cpu_res.as_ref().ok().map(|p| p.seconds);
        let raw_accel_times: Vec<Option<f64>> = accel_res
            .iter()
            .map(|r| r.as_ref().ok().map(|p| p.seconds))
            .collect();

        // Mirror the decision path's calibration exactly: effective values
        // (corrected in Active mode, raw otherwise) drive the verdict, the
        // headline predictions and `devices[].predicted_s`; the raw values
        // are preserved in the calibration block. Explain is a read-only
        // view, so unlike `decide` it bumps no flip counters.
        let calib = self.calib_context(attrs.calib_class(binding), attrs.kernel.name.as_str());
        let active = calib
            .as_ref()
            .is_some_and(|c| c.mode == CalibrationMode::Active);
        let (predicted_cpu_s, accel_times, calib_flipped) = match calib.as_ref() {
            Some(ctx) => {
                let corrected_cpu = raw_cpu_s.map(|v| v * ctx.host_factor);
                let corrected_accels: Vec<Option<f64>> = raw_accel_times
                    .iter()
                    .enumerate()
                    .map(|(i, p)| p.map(|v| v * ctx.accel_factor(i)))
                    .collect();
                let flipped = self.policy == Policy::ModelDriven
                    && choose_among(corrected_cpu, &corrected_accels)
                        != choose_among(raw_cpu_s, &raw_accel_times);
                if active {
                    (corrected_cpu, corrected_accels, flipped)
                } else {
                    (raw_cpu_s, raw_accel_times.clone(), flipped)
                }
            }
            None => (raw_cpu_s, raw_accel_times.clone(), false),
        };

        let choice = match self.policy {
            Policy::AlwaysHost => DeviceChoice::Host,
            Policy::AlwaysOffload if slots > 0 => DeviceChoice::Accelerator(0),
            Policy::AlwaysOffload => DeviceChoice::Host,
            Policy::ModelDriven => choose_among(predicted_cpu_s, &accel_times),
        };

        // The representative accelerator backs the pair-era `gpu` headline
        // fields: the chosen candidate when an accelerator won, otherwise
        // the best usable candidate, otherwise compiler-default slot 0.
        let rep = match choice {
            DeviceChoice::Accelerator(i) => Some(i),
            DeviceChoice::Host => accel_times
                .iter()
                .enumerate()
                .filter_map(|(i, t)| t.map(|t| (i, t)))
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i)
                .or(if slots > 0 { Some(0) } else { None }),
        };
        let rep_res: Option<&Result<GpuPrediction, ModelError>> = rep.map(|i| &accel_res[i]);
        let predicted_gpu_s = rep.and_then(|i| accel_times[i]);

        let (device, device_name) = match choice {
            DeviceChoice::Host => (Device::Host, self.fleet.host_label().to_string()),
            DeviceChoice::Accelerator(i) => (
                Device::Gpu,
                self.fleet.accelerators()[i].label().to_string(),
            ),
        };
        let (speedup, margin) = match (predicted_cpu_s, predicted_gpu_s) {
            (Some(c), Some(g)) if g > 0.0 && c.is_finite() && g.is_finite() => {
                let slower = c.max(g);
                let faster = c.min(g);
                (
                    Some(c / g),
                    (slower > 0.0).then(|| (slower - faster) / slower),
                )
            }
            _ => (None, None),
        };

        let mut devices = Vec::with_capacity(1 + slots);
        devices.push(DevicePrediction {
            name: self.fleet.host_label().to_string(),
            kind: "host".to_string(),
            predicted_s: predicted_cpu_s,
            error: cpu_res.as_ref().err().map(|e| e.to_string()),
        });
        for (i, r) in accel_res.iter().enumerate() {
            devices.push(DevicePrediction {
                name: self.fleet.accelerators()[i].label().to_string(),
                kind: "accelerator".to_string(),
                predicted_s: accel_times[i],
                error: r.as_ref().err().map(|e| e.to_string()),
            });
        }

        Explanation {
            region: attrs.kernel.name.clone(),
            policy: policy_str(self.policy).to_string(),
            device: device_str(device).to_string(),
            device_name,
            bindings: attrs
                .required_params
                .iter()
                .map(|p| BoundParam {
                    name: p.clone(),
                    value: binding.get(p),
                })
                .collect(),
            predicted_cpu_s,
            predicted_gpu_s,
            speedup,
            margin,
            cpu_error: cpu_res.as_ref().err().map(|e| e.to_string()),
            gpu_error: rep_res
                .and_then(|r| r.as_ref().err())
                .map(|e| e.to_string()),
            cpu: cpu_res
                .ok()
                .map(|p| CpuTerms::from_prediction(&p, self.platform.host_threads)),
            gpu: rep_res
                .and_then(|r| r.as_ref().ok())
                .map(GpuTerms::from_prediction),
            devices,
            cached: false,
            dispatch: None,
            accuracy: None,
            calibration: calib.as_ref().map(|ctx| {
                let region = attrs.kernel.name.as_str();
                let (raw_gpu_s, gpu_factor, gpu_label) = match rep {
                    Some(i) => (
                        raw_accel_times[i],
                        ctx.accel_factor(i),
                        Some(self.fleet.accelerators()[i].label().to_string()),
                    ),
                    None => (None, 1.0, None),
                };
                let samples = |device: Option<&str>| {
                    device
                        .and_then(|d| self.calibrator().lookup(region, d, ctx.class))
                        .map_or(0, |row| row.samples)
                };
                CalibrationBlock {
                    mode: ctx.mode.name().to_string(),
                    class: ctx.class.0,
                    raw_cpu_s,
                    raw_gpu_s,
                    cpu_factor: ctx.host_factor,
                    gpu_factor,
                    cpu_samples: samples(Some(self.fleet.host_label())),
                    gpu_samples: samples(gpu_label.as_deref()),
                    applied: active
                        && ((raw_cpu_s.is_some() && ctx.host_factor != 1.0)
                            || raw_accel_times
                                .iter()
                                .enumerate()
                                .any(|(i, p)| p.is_some() && ctx.accel_factor(i) != 1.0)),
                    flipped: calib_flipped,
                }
            }),
            timings: PhaseTimings {
                compile_ns: None,
                cpu_eval_ns,
                gpu_eval_ns,
                total_ns: t_total.elapsed().as_nanos() as u64,
            },
        }
    }
}

/// A batch of explanations from one `explain` run — the `--json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainReport {
    /// Platform name the decisions were taken for.
    pub platform: String,
    /// Dataset mode the bindings came from.
    pub dataset: String,
    /// One record per region, in request order.
    pub explanations: Vec<Explanation>,
}

/// Validates an `explain --json` document against the schema contract
/// (parsability plus the structural invariants DESIGN.md documents).
/// Returns the parsed report, or a description of the first violation.
pub fn validate_report_json(json: &str) -> Result<ExplainReport, String> {
    let report: ExplainReport =
        serde_json::from_str(json).map_err(|e| format!("report does not parse: {e}"))?;
    if report.platform.is_empty() {
        return Err("platform is empty".into());
    }
    if report.explanations.is_empty() {
        return Err("no explanations in report".into());
    }
    for e in &report.explanations {
        let at = format!("explanation for `{}`", e.region);
        if e.region.is_empty() {
            return Err("explanation with empty region".into());
        }
        if e.chosen_device().is_none() {
            return Err(format!("{at}: device `{}` not host|gpu", e.device));
        }
        if !["model_driven", "always_host", "always_offload"].contains(&e.policy.as_str()) {
            return Err(format!("{at}: unknown policy `{}`", e.policy));
        }
        if e.device_name.is_empty() {
            return Err(format!("{at}: empty device_name"));
        }
        if e.devices.is_empty() {
            return Err(format!("{at}: no candidate devices"));
        }
        let mut host_rows = 0usize;
        for d in &e.devices {
            if d.name.is_empty() {
                return Err(format!("{at}: candidate device with empty name"));
            }
            match d.kind.as_str() {
                "host" => host_rows += 1,
                "accelerator" => {}
                other => return Err(format!("{at}: unknown device kind `{other}`")),
            }
            if d.predicted_s.is_some() == d.error.is_some() {
                return Err(format!(
                    "{at}: candidate `{}` must carry a prediction xor an error",
                    d.name
                ));
            }
        }
        if host_rows != 1 {
            return Err(format!(
                "{at}: {host_rows} host rows among candidate devices (want exactly 1)"
            ));
        }
        let has_accel = e.devices.iter().any(|d| d.kind == "accelerator");
        match e.devices.iter().find(|d| d.name == e.device_name) {
            None => {
                return Err(format!(
                    "{at}: device_name `{}` not among candidate devices",
                    e.device_name
                ));
            }
            Some(named) => {
                let expected_kind = match e.device.as_str() {
                    "host" => "host",
                    _ => "accelerator",
                };
                if named.kind != expected_kind {
                    return Err(format!(
                        "{at}: device_name `{}` ({}) inconsistent with device `{}`",
                        e.device_name, named.kind, e.device
                    ));
                }
            }
        }
        if e.predicted_cpu_s.is_some() != e.cpu.is_some() {
            return Err(format!("{at}: cpu prediction and term breakdown disagree"));
        }
        if e.predicted_gpu_s.is_some() != e.gpu.is_some() {
            return Err(format!("{at}: gpu prediction and term breakdown disagree"));
        }
        if e.predicted_cpu_s.is_none() && e.cpu_error.is_none() {
            return Err(format!("{at}: no cpu prediction and no recorded reason"));
        }
        if has_accel && e.predicted_gpu_s.is_none() && e.gpu_error.is_none() {
            return Err(format!("{at}: no gpu prediction and no recorded reason"));
        }
        if let Some(s) = e.speedup {
            if s.is_nan() || s <= 0.0 {
                return Err(format!("{at}: non-positive speedup {s}"));
            }
        }
        if let Some(m) = e.margin {
            if !(0.0..1.0).contains(&m) {
                return Err(format!("{at}: margin {m} outside [0,1)"));
            }
        }
        if let Some(g) = &e.gpu {
            if !["balanced", "memory_bound", "compute_bound"].contains(&g.hong_case.as_str()) {
                return Err(format!("{at}: unknown hong_case `{}`", g.hong_case));
            }
        }
        if e.policy == "model_driven" {
            // The same NaN-safe comparison the live path uses; a document
            // whose device disagrees with `choose_device` over the headline
            // (representative) predictions is corrupt. A fleet with no
            // accelerator has no offload candidate, so host is the only
            // legal verdict.
            let expected = if has_accel {
                match choose_device(e.predicted_cpu_s, e.predicted_gpu_s) {
                    Device::Gpu => "gpu",
                    Device::Host => "host",
                }
            } else {
                "host"
            };
            if e.device != expected {
                return Err(format!(
                    "{at}: device `{}` inconsistent with predictions (expected `{expected}`)",
                    e.device
                ));
            }
        }
        if e.timings.total_ns < e.timings.cpu_eval_ns.saturating_add(e.timings.gpu_eval_ns) {
            return Err(format!("{at}: total_ns smaller than its phases"));
        }
        if let Some(c) = &e.calibration {
            if !["shadow", "active"].contains(&c.mode.as_str()) {
                return Err(format!("{at}: unknown calibration mode `{}`", c.mode));
            }
            for (side, f) in [("cpu", c.cpu_factor), ("gpu", c.gpu_factor)] {
                if !f.is_finite() || f <= 0.0 {
                    return Err(format!(
                        "{at}: {side} calibration factor {f} not finite > 0"
                    ));
                }
            }
            if c.applied && c.mode != "active" {
                return Err(format!("{at}: calibration applied under `{}` mode", c.mode));
            }
            if c.applied {
                // The headline predictions must be the raw model outputs
                // scaled by the published factors — nothing else may have
                // touched them between the models and the verdict.
                let consistent =
                    |raw: Option<f64>, factor: f64, headline: Option<f64>| match (raw, headline) {
                        (Some(r), Some(h)) => {
                            (h - r * factor).abs() <= 1e-12 * h.abs().max(r.abs())
                        }
                        (None, None) => true,
                        _ => false,
                    };
                if !consistent(c.raw_cpu_s, c.cpu_factor, e.predicted_cpu_s) {
                    return Err(format!("{at}: cpu headline is not raw × factor"));
                }
                if !consistent(c.raw_gpu_s, c.gpu_factor, e.predicted_gpu_s) {
                    return Err(format!("{at}: gpu headline is not raw × factor"));
                }
            }
        }
        if let Some(d) = &e.dispatch {
            if d.device.is_empty() {
                return Err(format!("{at}: dispatch with empty device label"));
            }
            if d.attempts == 0 {
                return Err(format!("{at}: dispatch with zero attempts"));
            }
            if d.retries >= d.attempts {
                return Err(format!(
                    "{at}: {} retries do not fit in {} attempts",
                    d.retries, d.attempts
                ));
            }
            if !(d.simulated_s.is_finite() && d.simulated_s >= 0.0) {
                return Err(format!("{at}: unusable simulated_s {}", d.simulated_s));
            }
            if let Some(reason) = &d.fallback {
                if ![
                    "deadline_exceeded",
                    "breaker_open",
                    "device_fault",
                    "capacity_exhausted",
                ]
                .contains(&reason.as_str())
                {
                    return Err(format!("{at}: unknown fallback reason `{reason}`"));
                }
            }
            for (label, state) in [("gpu", &d.gpu_breaker), ("cpu", &d.cpu_breaker)] {
                if !["closed", "open", "half_open"].contains(&state.as_str()) {
                    return Err(format!("{at}: unknown {label} breaker state `{state}`"));
                }
            }
        }
        if let Some(a) = &e.accuracy {
            if e.dispatch.is_none() {
                return Err(format!("{at}: accuracy block without dispatch terms"));
            }
            if a.device.is_empty() {
                return Err(format!("{at}: accuracy block with empty device label"));
            }
            if let Some(d) = &e.dispatch {
                if a.device != d.device {
                    return Err(format!(
                        "{at}: accuracy device `{}` is not the executed device `{}`",
                        a.device, d.device
                    ));
                }
            }
            if a.samples == 0 {
                return Err(format!("{at}: accuracy block with zero samples"));
            }
            if !a.mean_rel_error.is_finite() || !a.mean_bias_s.is_finite() {
                return Err(format!("{at}: non-finite accuracy means"));
            }
            if !(a.rel_error_variance.is_finite() && a.rel_error_variance >= 0.0) {
                return Err(format!(
                    "{at}: unusable rel_error_variance {}",
                    a.rel_error_variance
                ));
            }
            if a.flips > a.samples {
                return Err(format!(
                    "{at}: {} flips exceed {} samples",
                    a.flips, a.samples
                ));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::selector::DecisionEngine;
    use hetsel_ir::Kernel;
    use hetsel_polybench::{find_kernel, Dataset};

    fn selector() -> Selector {
        Selector::new(Platform::power9_v100())
    }

    #[test]
    fn explanation_matches_decision_for_every_suite_kernel() {
        let kernels: Vec<Kernel> = hetsel_polybench::suite()
            .into_iter()
            .flat_map(|b| b.kernels)
            .collect();
        let engine = DecisionEngine::new(selector(), &kernels);
        for bench in hetsel_polybench::suite() {
            for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
                let b = (bench.binding)(ds);
                for k in &bench.kernels {
                    let (decision, explanation) = engine.decide_explained(&k.name, &b).unwrap();
                    assert!(
                        explanation.describes(&decision),
                        "{} {ds}: explanation diverges from decision\n{explanation:?}\n{decision:?}",
                        k.name
                    );
                    assert!(explanation.cpu.is_some() && explanation.gpu.is_some());
                    assert!(!explanation.bindings.is_empty());
                }
            }
        }
    }

    #[test]
    fn explain_device_equals_decide_device_for_every_suite_kernel() {
        // The shared `choose_device` helper makes divergence structurally
        // impossible; this pins it for every kernel, dataset and the
        // unresolved-binding fallback.
        let kernels: Vec<Kernel> = hetsel_polybench::suite()
            .into_iter()
            .flat_map(|b| b.kernels)
            .collect();
        let engine = DecisionEngine::new(selector(), &kernels);
        for bench in hetsel_polybench::suite() {
            for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
                let b = (bench.binding)(ds);
                for k in &bench.kernels {
                    let (decision, explanation) = engine.decide_explained(&k.name, &b).unwrap();
                    assert_eq!(
                        Some(decision.device),
                        explanation.chosen_device(),
                        "{} {ds}",
                        k.name
                    );
                }
            }
            for k in &bench.kernels {
                let (decision, explanation) =
                    engine.decide_explained(&k.name, &Binding::new()).unwrap();
                assert_eq!(
                    Some(decision.device),
                    explanation.chosen_device(),
                    "{}",
                    k.name
                );
            }
        }
    }

    #[test]
    fn explanation_records_fallback_reason() {
        let (k, _) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(selector(), std::slice::from_ref(&k));
        let e = engine.explain("gemm", &Binding::new()).unwrap();
        assert_eq!(e.device, "gpu", "fallback offloads");
        assert!(e.cpu.is_none() && e.gpu.is_none());
        assert!(e.cpu_error.as_deref().unwrap().contains("not bound"));
        assert!(e.bindings.iter().all(|b| b.value.is_none()));
        assert_eq!(e.speedup, None);
    }

    #[test]
    fn explanation_round_trips_through_json() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(selector(), std::slice::from_ref(&k));
        let e = engine.explain("gemm", &binding(Dataset::Test)).unwrap();
        let json = serde_json::to_string_pretty(&e).unwrap();
        let back: Explanation = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn explain_marks_cached_decisions() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(selector(), std::slice::from_ref(&k));
        let b = binding(Dataset::Test);
        assert!(!engine.explain("gemm", &b).unwrap().cached);
        engine.decide("gemm", &b).unwrap();
        assert!(engine.explain("gemm", &b).unwrap().cached);
        assert!(engine.explain("missing", &b).is_none());
    }

    #[test]
    fn report_validation_accepts_real_reports_and_rejects_corrupt_ones() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(selector(), std::slice::from_ref(&k));
        let e = engine.explain("gemm", &binding(Dataset::Test)).unwrap();
        let report = ExplainReport {
            platform: "POWER9+V100".into(),
            dataset: "test".into(),
            explanations: vec![e.clone()],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        validate_report_json(&json).expect("real report validates");

        // Flip the device: the consistency check must catch it.
        let mut bad = report.clone();
        bad.explanations[0].device = match e.device.as_str() {
            "gpu" => "host".to_string(),
            _ => "gpu".to_string(),
        };
        let err = validate_report_json(&serde_json::to_string(&bad).unwrap()).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");

        // Drop the term breakdown but keep the prediction.
        let mut bad = report.clone();
        bad.explanations[0].cpu = None;
        let err = validate_report_json(&serde_json::to_string(&bad).unwrap()).unwrap_err();
        assert!(err.contains("disagree"), "{err}");

        assert!(validate_report_json("not json").is_err());
    }

    #[test]
    fn margin_and_speedup_are_consistent() {
        let (k, binding) = find_kernel("atax.k1").unwrap();
        let engine = DecisionEngine::new(selector(), std::slice::from_ref(&k));
        let e = engine
            .explain("atax.k1", &binding(Dataset::Benchmark))
            .unwrap();
        let (c, g) = (e.predicted_cpu_s.unwrap(), e.predicted_gpu_s.unwrap());
        assert!((e.speedup.unwrap() - c / g).abs() < 1e-12);
        let m = e.margin.unwrap();
        assert!((0.0..1.0).contains(&m));
        assert!((m - (c.max(g) - c.min(g)) / c.max(g)).abs() < 1e-12);
    }

    #[test]
    fn explanations_cover_every_fleet_candidate() {
        use crate::fleet::Fleet;
        let platform = Platform::power9_v100();
        let fleet = Fleet::pair_labeled(&platform, "v100")
            .with_accelerator_from("k80", &Platform::power8_k80());
        let selector = Selector::new(Platform::power9_v100()).with_fleet(fleet);
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(selector, std::slice::from_ref(&k));
        let b = binding(Dataset::Test);
        let (decision, e) = engine.decide_explained("gemm", &b).unwrap();
        assert!(e.describes(&decision), "{e:?}\n{decision:?}");
        assert_eq!(e.devices.len(), 3, "host + two accelerators");
        assert_eq!(e.devices[0].kind, "host");
        assert_eq!(e.devices[1].name, "v100");
        assert_eq!(e.devices[2].name, "k80");
        assert!(e
            .devices
            .iter()
            .all(|d| d.predicted_s.is_some() != d.error.is_some()));
        assert_eq!(e.device_name.as_str(), &*decision.device_name);
        assert!(e.devices.iter().any(|d| d.name == e.device_name));
        let report = ExplainReport {
            platform: "POWER9+V100+K80".into(),
            dataset: "test".into(),
            explanations: vec![e.clone()],
        };
        validate_report_json(&serde_json::to_string(&report).unwrap())
            .expect("fleet report validates");
        assert!(e.render_human().contains("candidates:"));
    }

    #[test]
    fn human_rendering_contains_the_story() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = DecisionEngine::new(selector(), std::slice::from_ref(&k));
        let e = engine.explain("gemm", &binding(Dataset::Test)).unwrap();
        let text = e.render_human();
        assert!(text.contains("gemm"));
        assert!(text.contains("MWP"));
        assert!(text.contains("cyc/iter"));
        assert!(text.contains("coalesced"));
        assert!(text.contains("cpu eval"));
    }
}
