//! The runtime target selector.
//!
//! The execution-time half of the framework (paper Figure 2 and Section
//! IV.D): on reaching a target region, the augmented OpenMP runtime pulls
//! the region's static attributes from the database, binds the runtime
//! values, evaluates both analytical models, and launches whichever version
//! — host or GPU — the models predict faster. "Because of the analytical
//! nature of the model, generating a prediction for either target is
//! equivalent to solving an equation, making decision time negligible."

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::attributes::{AttributeDatabase, RegionAttributes, RegionId};
use crate::calib::{BindingClass, CalibrationMode, CalibrationTag, Calibrator};
use crate::fleet::{DeviceId, Fleet};
use crate::platform::Platform;
use hetsel_ir::{Binding, Kernel};
use hetsel_models::{CoalescingMode, CostModel, CpuCostModel, GpuCostModel, ModelError, TripMode};
use parking_lot::Mutex;
use rayon::prelude::*;

/// An execution target.
///
/// Marked `#[non_exhaustive]`: the splitting/multi-accelerator roadmap will
/// grow this enum, so downstream matches must carry a wildcard arm today
/// rather than break then.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// The host CPU (fallback path).
    Host,
    /// The GPU accelerator.
    Gpu,
}

impl Device {
    /// Stable lowercase name (`"host"` / `"gpu"`), used in metric names and
    /// serialized documents.
    pub fn name(self) -> &'static str {
        match self {
            Device::Host => "host",
            Device::Gpu => "gpu",
        }
    }

    /// The failover target when this device is unavailable.
    pub fn other(self) -> Device {
        match self {
            Device::Host => Device::Gpu,
            Device::Gpu => Device::Host,
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A selection policy.
///
/// Marked `#[non_exhaustive]`: future policies (history-driven, split
/// execution) will be added without a breaking release, so downstream
/// matches must carry a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Never offload (OpenMP with offloading disabled).
    AlwaysHost,
    /// The compiler's default: always offload target regions.
    AlwaysOffload,
    /// The paper's contribution: offload iff the models predict a win.
    ModelDriven,
}

impl Policy {
    /// Stable snake_case name (`"model_driven"`, `"always_host"`,
    /// `"always_offload"`), the serialized form in explain documents and
    /// [`DecisionRequest`] JSON.
    pub fn name(self) -> &'static str {
        match self {
            Policy::AlwaysHost => "always_host",
            Policy::AlwaysOffload => "always_offload",
            Policy::ModelDriven => "model_driven",
        }
    }

    /// Inverse of [`Policy::name`].
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "always_host" => Some(Policy::AlwaysHost),
            "always_offload" => Some(Policy::AlwaysOffload),
            "model_driven" => Some(Policy::ModelDriven),
            _ => None,
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What [`choose_among`] picked: the host, or the accelerator at a given
/// position in the candidate slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceChoice {
    /// Run on the host.
    Host,
    /// Offload to the accelerator at this index of the candidate slice.
    Accelerator(usize),
}

/// The model-driven comparison generalized to an N-device fleet: the
/// fastest *usable* accelerator prediction is compared against the host
/// prediction, the host wins ties, and when no accelerator prediction is
/// usable the choice is the compiler default — offload to the primary
/// accelerator (index 0). An empty candidate slice (a host-only fleet) is
/// the terminal fallback: the host, unconditionally.
///
/// Centralising this is what keeps [`Selector::explain`] provably in
/// lock-step with [`Selector::decide`] — and what makes the comparison
/// NaN-safe: `NaN < x` is false for every `x`, so a naive `if g < c`
/// would silently choose the host for a non-finite accelerator
/// prediction, the opposite of the documented fallback. Ties between
/// accelerators go to the lower index, so candidate order (fleet
/// registration order) is part of the contract.
pub fn choose_among(host: Option<f64>, accels: &[Option<f64>]) -> DeviceChoice {
    if accels.is_empty() {
        return DeviceChoice::Host;
    }
    let mut best: Option<(usize, f64)> = None;
    for (i, accel) in accels.iter().enumerate() {
        if let Some(t) = accel {
            if ModelError::usable_time(*t) && best.is_none_or(|(_, bt)| *t < bt) {
                best = Some((i, *t));
            }
        }
    }
    match (host.filter(|h| ModelError::usable_time(*h)), best) {
        (Some(h), Some((_, bt))) if h <= bt => DeviceChoice::Host,
        (_, Some((i, _))) => DeviceChoice::Accelerator(i),
        (_, None) => DeviceChoice::Accelerator(0), // compiler default when unresolvable
    }
}

/// The classic two-device spelling of [`choose_among`]: offload iff a
/// usable GPU prediction beats a usable CPU prediction, host iff the CPU
/// prediction is at least as fast, and the compiler default (offload)
/// whenever either side is missing or not a comparable number.
pub fn choose_device(cpu: Option<f64>, gpu: Option<f64>) -> Device {
    match choose_among(cpu, &[gpu]) {
        DeviceChoice::Host => Device::Host,
        DeviceChoice::Accelerator(_) => Device::Gpu,
    }
}

/// Splits a model outcome into the usable prediction and the recorded
/// failure: an `Ok` carrying NaN, an infinity or a negative time is a model
/// failure ([`ModelError::NonFinitePrediction`]), not a prediction.
fn sanitize_prediction(outcome: Result<f64, ModelError>) -> (Option<f64>, Option<ModelError>) {
    match outcome {
        Ok(s) if ModelError::usable_time(s) => (Some(s), None),
        Ok(s) => (None, Some(ModelError::non_finite(s))),
        Err(e) => (None, Some(e)),
    }
}

/// Per-decision calibration working set: the binding class plus the
/// correction factors for every candidate, resolved once (from the
/// selector's [`Calibrator`]) before composition so the comparison,
/// flip detection and the recorded [`CalibrationTag`] all agree.
pub(crate) struct CalibContext {
    pub(crate) mode: CalibrationMode,
    pub(crate) class: BindingClass,
    pub(crate) host_factor: f64,
    pub(crate) accel_factors: Vec<f64>,
}

impl CalibContext {
    /// The correction factor for fleet accelerator `idx`; indices beyond
    /// the registered fleet (wide outcome slices) get the cold-cell
    /// identity, 1.0.
    pub(crate) fn accel_factor(&self, idx: usize) -> f64 {
        self.accel_factors.get(idx).copied().unwrap_or(1.0)
    }
}

/// One offloading decision with the model evidence behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Region name. Shared (`Arc`) so cloning a decision out of the
    /// decision cache copies a pointer, not a string.
    pub region: Arc<str>,
    /// Chosen target, kind-level: every accelerator reports `Device::Gpu`
    /// here; [`Decision::device_id`] / [`Decision::device_name`] identify
    /// *which* one.
    pub device: Device,
    /// Fleet id of the chosen device.
    pub device_id: DeviceId,
    /// Interned fleet label of the chosen device (`Arc` shared with the
    /// fleet registration, so cloning a cached decision copies a pointer
    /// and metric names can never drift from this spelling).
    pub device_name: Arc<str>,
    /// Policy that made the choice.
    pub policy: Policy,
    /// Predicted host time, seconds (None under `Always*` policies).
    pub predicted_cpu_s: Option<f64>,
    /// Predicted time on the decision's representative accelerator,
    /// seconds: the chosen accelerator when one was chosen, otherwise the
    /// fastest usable one the host beat. For the classic pair this is
    /// exactly "the GPU prediction".
    pub predicted_gpu_s: Option<f64>,
    /// Why the host model produced no prediction, when it didn't.
    pub cpu_error: Option<ModelError>,
    /// Why the representative accelerator's model produced no prediction,
    /// when it didn't — the recorded reason behind a fallback-to-offload
    /// decision.
    pub gpu_error: Option<ModelError>,
    /// The calibration evidence behind this decision: `Some` exactly when
    /// the verdict was taken with calibration in Shadow or Active mode
    /// under `ModelDriven` (the raw predictions, the correction factors
    /// consulted, and whether the corrected comparison flips the raw one).
    /// `None` in Off mode — an Off-mode decision is bit-for-bit the
    /// uncalibrated engine's — and on paths that carry no binding.
    pub calibration: Option<CalibrationTag>,
}

impl Decision {
    /// Predicted offloading speedup (host time / GPU time); `None` when a
    /// prediction is missing or the ratio would be degenerate (non-finite
    /// operands or a non-positive GPU time).
    pub fn predicted_speedup(&self) -> Option<f64> {
        match (self.predicted_cpu_s, self.predicted_gpu_s) {
            (Some(c), Some(g)) if g > 0.0 && c.is_finite() && g.is_finite() => Some(c / g),
            _ => None,
        }
    }
}

/// Ground-truth ("measured") times from the timing simulators.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Host execution time, seconds.
    pub cpu_s: f64,
    /// GPU execution time (kernel + transfers), seconds.
    pub gpu_s: f64,
}

impl Measured {
    /// True offloading speedup; `None` when the GPU time is non-positive or
    /// either time is non-finite (a degenerate measurement must not poison
    /// downstream aggregates).
    pub fn speedup(&self) -> Option<f64> {
        if self.gpu_s > 0.0 && self.cpu_s.is_finite() && self.gpu_s.is_finite() {
            Some(self.cpu_s / self.gpu_s)
        } else {
            None
        }
    }

    /// Time under a given device choice.
    pub fn on(&self, d: Device) -> f64 {
        match d {
            Device::Host => self.cpu_s,
            Device::Gpu => self.gpu_s,
        }
    }

    /// The oracle's choice.
    pub fn best_device(&self) -> Device {
        if self.cpu_s <= self.gpu_s {
            Device::Host
        } else {
            Device::Gpu
        }
    }
}

/// A decision together with its measured consequences.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The decision taken.
    pub decision: Decision,
    /// Simulated ground truth.
    pub measured: Measured,
}

impl Evaluation {
    /// Wall time actually obtained under the decision.
    pub fn achieved_s(&self) -> f64 {
        self.measured.on(self.decision.device)
    }

    /// Wall time the oracle would have obtained.
    pub fn oracle_s(&self) -> f64 {
        self.measured.on(self.measured.best_device())
    }

    /// True iff the decision matched the oracle.
    pub fn correct(&self) -> bool {
        self.decision.device == self.measured.best_device()
    }
}

/// The selector: a device fleet plus policy and model-abstraction knobs.
#[derive(Debug, Clone)]
pub struct Selector {
    /// The platform the decision is made for (host descriptor, host model
    /// parameters, and the default accelerator the pair fleet registers).
    pub platform: Platform,
    /// Selection policy.
    pub policy: Policy,
    /// Trip-count abstraction used by the models.
    pub trip_mode: TripMode,
    /// Coalescing analysis mode used by the GPU model.
    pub coal_mode: CoalescingMode,
    /// The registered device fleet. Private so the fleet and the compiled
    /// attribute databases cannot silently diverge; read with
    /// [`Selector::fleet`], replace with [`Selector::with_fleet`].
    pub(crate) fleet: Fleet,
    /// Whether (and how) online calibration participates in decisions.
    /// Private so the mode and the table move together; read with
    /// [`Selector::calibration`], set with [`Selector::with_calibration`].
    pub(crate) calibration: CalibrationMode,
    /// The correction table consulted in Shadow/Active mode and fed by the
    /// dispatcher and profile feedback. Behind an `Arc` so cloning the
    /// selector *shares* the table: an engine and the dispatcher wrapping
    /// it learn into — and read from — the same corrections.
    pub(crate) calibrator: Arc<Calibrator>,
}

impl Selector {
    /// A model-driven selector with the paper's hybrid configuration
    /// (runtime trip counts, IPDA coalescing) and the classic two-device
    /// fleet — the platform's host plus its accelerator under the label
    /// `"gpu"`.
    pub fn new(platform: Platform) -> Selector {
        let fleet = Fleet::pair(&platform);
        Selector {
            platform,
            policy: Policy::ModelDriven,
            trip_mode: TripMode::Runtime,
            coal_mode: CoalescingMode::Ipda,
            fleet,
            calibration: CalibrationMode::Off,
            calibrator: Arc::new(Calibrator::default()),
        }
    }

    /// Builder-style policy override.
    pub fn with_policy(mut self, policy: Policy) -> Selector {
        self.policy = policy;
        self
    }

    /// Builder-style trip-mode override.
    pub fn with_trip_mode(mut self, mode: TripMode) -> Selector {
        self.trip_mode = mode;
        self
    }

    /// Builder-style coalescing-mode override.
    pub fn with_coalescing(mut self, mode: CoalescingMode) -> Selector {
        self.coal_mode = mode;
        self
    }

    /// Builder-style fleet override: decide among `fleet`'s devices instead
    /// of the default pair. Databases compiled *after* the override carry
    /// one compiled GPU model per registered accelerator.
    pub fn with_fleet(mut self, fleet: Fleet) -> Selector {
        self.fleet = fleet;
        self
    }

    /// Builder-style calibration-mode override. `Shadow` computes and
    /// records corrections on every decision without altering verdicts;
    /// `Active` blends them into the predictions. `Off` (the default) is
    /// bit-for-bit the uncalibrated engine.
    pub fn with_calibration(mut self, mode: CalibrationMode) -> Selector {
        self.calibration = mode;
        self
    }

    /// Builder-style calibrator override: consult (and let feeders fill)
    /// `calibrator` instead of the fresh table [`Selector::new`] creates —
    /// how a pre-seeded or cross-engine-shared table is installed.
    pub fn with_calibrator(mut self, calibrator: Arc<Calibrator>) -> Selector {
        self.calibrator = calibrator;
        self
    }

    /// The calibration mode decisions are taken under.
    pub fn calibration(&self) -> CalibrationMode {
        self.calibration
    }

    /// The correction table this selector consults. Feed it via
    /// [`Calibrator::observe`] with the raw predictions a decision's
    /// [`CalibrationTag`] carries.
    pub fn calibrator(&self) -> &Arc<Calibrator> {
        &self.calibrator
    }

    /// The device fleet this selector decides among.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The classic pair of model configurations this selector decides
    /// with: the host model plus the *primary* accelerator's model (the
    /// platform's own accelerator parameters when the fleet is host-only).
    pub fn cost_models(&self) -> (CpuCostModel, GpuCostModel) {
        let gpu_params = self
            .fleet
            .accelerators()
            .first()
            .map(|a| a.model.clone())
            .unwrap_or_else(|| self.platform.gpu_model.clone());
        (
            CpuCostModel {
                params: self.platform.cpu_model.clone(),
                threads: self.platform.host_threads,
                trip_mode: self.trip_mode,
            },
            GpuCostModel {
                params: gpu_params,
                trip_mode: self.trip_mode,
                coal_mode: self.coal_mode,
            },
        )
    }

    /// The full fleet of model configurations: the host model plus one GPU
    /// cost model per registered accelerator, in fleet id order.
    pub fn fleet_cost_models(&self) -> (CpuCostModel, Vec<GpuCostModel>) {
        let cpu = CpuCostModel {
            params: self.platform.cpu_model.clone(),
            threads: self.platform.host_threads,
            trip_mode: self.trip_mode,
        };
        let gpus = self
            .fleet
            .accelerators()
            .iter()
            .map(|a| GpuCostModel {
                params: a.model.clone(),
                trip_mode: self.trip_mode,
                coal_mode: self.coal_mode,
            })
            .collect();
        (cpu, gpus)
    }

    /// A fingerprint over every input that shapes what
    /// [`AttributeDatabase::compile`](crate::AttributeDatabase::compile)
    /// produces: the host model parameters and thread count, the trip and
    /// coalescing modes, the platform's fallback accelerator sheet, and
    /// each fleet accelerator's label and model parameters. Snapshots carry
    /// this value in their header; a snapshot whose fingerprint disagrees
    /// with the loading selector's is rejected with a typed error instead
    /// of silently answering with another fleet's models.
    pub fn model_fingerprint(&self) -> u64 {
        use hetsel_ir::Snap;
        let mut w = hetsel_ir::SnapWriter::new();
        self.platform.cpu_model.snap(&mut w);
        w.put_u32(self.platform.host_threads);
        self.trip_mode.snap(&mut w);
        self.coal_mode.snap(&mut w);
        self.platform.gpu_model.snap(&mut w);
        w.put_usize(self.fleet.accelerator_count());
        for a in self.fleet.accelerators() {
            w.put_str(a.label());
            a.model.snap(&mut w);
        }
        hetsel_ir::snap::checksum(w.bytes())
    }

    /// Evaluates both cost models for `source` under a runtime binding,
    /// with the typed failure reasons. One of the two canonical entry
    /// points (with [`Selector::decide`]): works on any [`ModelSource`] —
    /// a precompiled [`RegionAttributes`] (the hot runtime path, no
    /// symbolic work left) or a bare [`Kernel`] (compiles the models on
    /// the spot).
    pub fn predict<S: ModelSource + ?Sized>(
        &self,
        source: &S,
        binding: &Binding,
    ) -> (Result<f64, ModelError>, Result<f64, ModelError>) {
        source.model_outcomes(self, binding)
    }

    /// Makes the offloading decision for `source` under a runtime binding —
    /// the other canonical entry point. Under `ModelDriven`, every
    /// registered fleet device's model is evaluated and the argmin wins
    /// (host on ties); failed evaluations (unresolved bindings) fall back
    /// to the compiler default of offloading, and the decision records why
    /// in [`Decision::cpu_error`] / [`Decision::gpu_error`]; `Always*`
    /// policies never consult the models.
    pub fn decide<S: ModelSource + ?Sized>(&self, source: &S, binding: &Binding) -> Decision {
        self.decide_under(self.policy, source, binding)
    }

    /// As [`Selector::decide`] under an explicit policy, leaving the
    /// selector's own configuration untouched. This is how per-request
    /// policy overrides are honoured without cloning and reconfiguring a
    /// selector per call: the policy is an argument of the decision, not
    /// part of the machinery that evaluates the models.
    pub fn decide_under<S: ModelSource + ?Sized>(
        &self,
        policy: Policy,
        source: &S,
        binding: &Binding,
    ) -> Decision {
        let n = self.fleet.accelerator_count();
        match policy {
            Policy::ModelDriven => {
                let (host, accels) = source.fleet_outcomes(self, binding);
                let indexed: Vec<(usize, Option<Result<f64, ModelError>>)> = accels
                    .into_iter()
                    .take(n)
                    .enumerate()
                    .map(|(i, o)| (i, Some(o)))
                    .collect();
                let calib = self.calib_context(source.calib_class(binding), source.region_name());
                self.compose_indexed(
                    policy,
                    source.region_name(),
                    Some(host),
                    &indexed,
                    calib.as_ref(),
                )
            }
            _ => {
                // `Always*` policies never consult the models; the slice
                // still names the primary accelerator so the decision can
                // identify the offload target.
                let unconsulted: Vec<(usize, Option<Result<f64, ModelError>>)> =
                    if n == 0 { Vec::new() } else { vec![(0, None)] };
                self.compose_indexed(policy, source.region_name(), None, &unconsulted, None)
            }
        }
    }

    /// Composes a [`Decision`] from already-evaluated model outcomes, one
    /// slot per fleet accelerator in registration order (`None` = the
    /// policy did not consult that model). This is the composition step
    /// [`Selector::decide`] runs after evaluation, exposed for callers —
    /// property tests above all — that need to feed the decision rule
    /// arbitrary outcome combinations without building models.
    ///
    /// Calibration never participates here: outcome slices carry no
    /// binding, so no binding class can be resolved — the composed
    /// decision has `calibration: None` in every mode.
    pub fn decide_from_outcomes(
        &self,
        region: &str,
        host: Option<Result<f64, ModelError>>,
        accels: &[Option<Result<f64, ModelError>>],
    ) -> Decision {
        let indexed: Vec<(usize, Option<Result<f64, ModelError>>)> =
            accels.iter().cloned().enumerate().collect();
        self.compose_indexed(self.policy, region, host, &indexed, None)
    }

    /// Composes a [`Decision`] from model outcomes tagged with their fleet
    /// accelerator index (`None` outcome = the policy did not consult that
    /// model; the tag lets a restricted decision carry the true fleet
    /// identity of its one candidate). An `Ok` carrying a non-finite or
    /// negative time is demoted to [`ModelError::NonFinitePrediction`]
    /// before the comparison, so a NaN can never masquerade as a fast host
    /// — the decision falls back to the compiler default of offloading and
    /// records why, exactly like any other evaluation failure.
    fn compose_indexed(
        &self,
        policy: Policy,
        region: &str,
        host: Option<Result<f64, ModelError>>,
        accels: &[(usize, Option<Result<f64, ModelError>>)],
        calib: Option<&CalibContext>,
    ) -> Decision {
        let (raw_cpu_s, cpu_error) = match host {
            Some(outcome) => sanitize_prediction(outcome),
            None => (None, None),
        };
        let sanitized: Vec<(usize, Option<f64>, Option<ModelError>)> = accels
            .iter()
            .map(|(idx, outcome)| match outcome {
                Some(o) => {
                    let (p, e) = sanitize_prediction(o.clone());
                    (*idx, p, e)
                }
                None => (*idx, None, None),
            })
            .collect();
        let raw_accels: Vec<Option<f64>> = sanitized.iter().map(|(_, p, _)| *p).collect();
        // Online calibration: resolve the corrected candidate values and
        // detect verdict flips. A cold cell's factor is exactly 1.0 and
        // `x * 1.0` is bit-identical to `x`, so a zero-sample Shadow or
        // Active decision reproduces the raw comparison bit for bit. The
        // effective values — what the verdict, the representative slot and
        // the recorded predictions all use — are the corrected ones only
        // in Active mode.
        let mut flipped = false;
        let active = calib.is_some_and(|ctx| ctx.mode == CalibrationMode::Active);
        let (eff_cpu_s, eff_accels) = match calib {
            Some(ctx) => {
                let corrected_cpu = raw_cpu_s.map(|v| v * ctx.host_factor);
                let corrected_accels: Vec<Option<f64>> = sanitized
                    .iter()
                    .map(|(idx, p, _)| p.map(|v| v * ctx.accel_factor(*idx)))
                    .collect();
                if policy == Policy::ModelDriven {
                    let raw_choice = choose_among(raw_cpu_s, &raw_accels);
                    let corrected_choice = choose_among(corrected_cpu, &corrected_accels);
                    flipped = corrected_choice != raw_choice;
                    if flipped {
                        if active {
                            hetsel_obs::static_counter!("hetsel.core.calib.flip").inc();
                        } else {
                            hetsel_obs::static_counter!("hetsel.core.calib.shadow_flip").inc();
                        }
                    }
                }
                if active {
                    (corrected_cpu, corrected_accels)
                } else {
                    (raw_cpu_s, raw_accels.clone())
                }
            }
            None => (raw_cpu_s, raw_accels.clone()),
        };
        let choice = match policy {
            Policy::AlwaysHost => DeviceChoice::Host,
            Policy::AlwaysOffload => {
                if sanitized.is_empty() {
                    DeviceChoice::Host // host-only fleet: nowhere to offload
                } else {
                    DeviceChoice::Accelerator(0)
                }
            }
            Policy::ModelDriven => choose_among(eff_cpu_s, &eff_accels),
        };
        // The representative accelerator behind the decision's GPU-side
        // evidence: the chosen one when an accelerator was chosen,
        // otherwise the fastest usable one the host beat, otherwise the
        // primary candidate (whose recorded failure explains the
        // fallback). For a pair fleet this is always slot 0, which is what
        // keeps restricted decisions bit-identical to the classic pair.
        let rep_pos = match choice {
            DeviceChoice::Accelerator(pos) => Some(pos),
            DeviceChoice::Host => {
                let best_usable = eff_accels
                    .iter()
                    .enumerate()
                    .filter_map(|(pos, p)| p.map(|t| (pos, t)))
                    .min_by(|(_, a), (_, b)| a.total_cmp(b))
                    .map(|(pos, _)| pos);
                best_usable.or(if sanitized.is_empty() { None } else { Some(0) })
            }
        };
        let predicted_cpu_s = eff_cpu_s;
        let (predicted_gpu_s, gpu_error) = match rep_pos {
            Some(pos) => (eff_accels[pos], sanitized[pos].2.clone()),
            None => (None, None),
        };
        let calibration = calib.map(|ctx| {
            let (raw_gpu_s, gpu_factor) = match rep_pos {
                Some(pos) => (sanitized[pos].1, ctx.accel_factor(sanitized[pos].0)),
                None => (None, 1.0),
            };
            CalibrationTag {
                class: ctx.class,
                raw_cpu_s,
                raw_gpu_s,
                cpu_factor: ctx.host_factor,
                gpu_factor,
                applied: active
                    && ((raw_cpu_s.is_some() && ctx.host_factor != 1.0)
                        || sanitized
                            .iter()
                            .any(|(idx, p, _)| p.is_some() && ctx.accel_factor(*idx) != 1.0)),
                flipped,
            }
        });
        let (device, device_id, device_name) = match choice {
            DeviceChoice::Host => (
                Device::Host,
                DeviceId::HOST,
                self.fleet.host_label_arc().clone(),
            ),
            DeviceChoice::Accelerator(pos) => {
                let fleet_idx = sanitized[pos].0;
                let (id, label) = self.accel_identity(fleet_idx);
                (Device::Gpu, id, label)
            }
        };
        hetsel_obs::registry()
            .counter(&hetsel_obs::metrics::device_metric_name(
                "hetsel.core.decisions",
                &device_name,
            ))
            .inc();
        if policy == Policy::ModelDriven {
            // Count fallback reasons by variant: one tick per failed model
            // (host and every consulted accelerator), under
            // `hetsel.core.fallback.<metric_key>`.
            for err in std::iter::once(&cpu_error)
                .chain(sanitized.iter().map(|(_, _, e)| e))
                .flatten()
            {
                hetsel_obs::registry()
                    .counter(&format!("hetsel.core.fallback.{}", err.metric_key()))
                    .inc();
            }
        }
        Decision {
            region: Arc::from(region),
            device,
            device_id,
            device_name,
            policy,
            predicted_cpu_s,
            predicted_gpu_s,
            cpu_error,
            gpu_error,
            calibration,
        }
    }

    /// Resolves the calibration working set for one decision: `None` in
    /// Off mode (the zero-cost path — no lookup, no allocation), otherwise
    /// the binding class plus one correction factor per candidate (host
    /// and every fleet accelerator). Factors for cold cells resolve to
    /// exactly 1.0.
    pub(crate) fn calib_context(&self, class: BindingClass, region: &str) -> Option<CalibContext> {
        if self.calibration == CalibrationMode::Off {
            return None;
        }
        let host_factor = self
            .calibrator
            .factor(region, self.fleet.host_label_arc(), class);
        let accel_factors = (0..self.fleet.accelerator_count())
            .map(|i| {
                let (_, label) = self.accel_identity(i);
                self.calibrator.factor(region, &label, class)
            })
            .collect();
        Some(CalibContext {
            mode: self.calibration,
            class,
            host_factor,
            accel_factors,
        })
    }

    /// Resolves an accelerator's fleet index to its id and interned label,
    /// tolerating indices beyond the registered fleet (outcome slices fed
    /// to [`Selector::decide_from_outcomes`] may be wider): unregistered
    /// indices resolve to the primary accelerator's identity, or a
    /// detached `"gpu"` label when the fleet is host-only.
    fn accel_identity(&self, fleet_idx: usize) -> (DeviceId, Arc<str>) {
        match self
            .fleet
            .accel_id(fleet_idx)
            .or_else(|| self.fleet.primary_accelerator())
        {
            Some(id) => (
                id,
                self.fleet
                    .label_arc(id)
                    .expect("fleet id resolved above")
                    .clone(),
            ),
            None => (DeviceId(1), Arc::from(Device::Gpu.name())),
        }
    }

    /// Decides with the candidate set restricted to the host plus at most
    /// one accelerator (`None` = host only): the evaluation behind
    /// [`DecisionEngine::decide_for`]. The accelerator keeps its true
    /// fleet id and label in the decision, and with the fleet's primary
    /// accelerator as scope this is bit-identical to the full
    /// [`Selector::decide`] on a pair fleet.
    pub(crate) fn decide_restricted(
        &self,
        attrs: &RegionAttributes,
        binding: &Binding,
        scope: Option<usize>,
    ) -> Decision {
        let consult = self.policy == Policy::ModelDriven;
        let host = consult.then(|| attrs.cpu_model.evaluate(binding).map(|p| p.seconds));
        let accels: Vec<(usize, Option<Result<f64, ModelError>>)> = match scope {
            None => Vec::new(),
            Some(fleet_idx) => {
                let outcome = consult.then(|| {
                    let model = if fleet_idx == 0 {
                        &attrs.gpu_model
                    } else {
                        &attrs.extra_accel_models[fleet_idx - 1]
                    };
                    model.evaluate(binding).map(|p| p.seconds)
                });
                vec![(fleet_idx, outcome)]
            }
        };
        let calib = consult
            .then(|| self.calib_context(attrs.calib_class(binding), attrs.region_name()))
            .flatten();
        self.compose_indexed(
            self.policy,
            attrs.region_name(),
            host,
            &accels,
            calib.as_ref(),
        )
    }

    /// Runs the timing simulators for both targets ("measures" the region).
    pub fn measure(&self, kernel: &Kernel, binding: &Binding) -> Option<Measured> {
        let cpu = hetsel_cpusim::simulate(
            kernel,
            binding,
            &self.platform.cpu,
            self.platform.host_threads,
        )?;
        let gpu = hetsel_gpusim::simulate(kernel, binding, &self.platform.gpu)?;
        Some(Measured {
            cpu_s: cpu.total_s(),
            gpu_s: gpu.total_s(),
        })
    }

    /// Decides and measures: the full model-vs-actual record for one region.
    pub fn evaluate(&self, kernel: &Kernel, binding: &Binding) -> Option<Evaluation> {
        let decision = self.decide(kernel, binding);
        let measured = self.measure(kernel, binding)?;
        Some(Evaluation { decision, measured })
    }
}

/// Anything the two canonical [`Selector`] entry points
/// ([`Selector::predict`] / [`Selector::decide`]) can evaluate the cost
/// models against.
///
/// Two implementations exist: a precompiled [`RegionAttributes`] (the
/// paper's runtime path — all symbolic work already happened when the
/// attribute database was compiled) and a bare [`Kernel`] (the cold path:
/// models are compiled on the spot). This trait is what collapsed the old
/// `predict` / `predict_detailed` / `select` / `select_kernel` / `decide`
/// sprawl into two entry points without losing either calling convention.
pub trait ModelSource {
    /// The region name decisions are recorded under.
    fn region_name(&self) -> &str;

    /// Evaluates the host model and the *primary* accelerator's model
    /// under `binding`, in `selector`'s configuration, returning
    /// `(cpu, gpu)` outcomes in seconds — the classic pair view.
    fn model_outcomes(
        &self,
        selector: &Selector,
        binding: &Binding,
    ) -> (Result<f64, ModelError>, Result<f64, ModelError>);

    /// Evaluates the host model and every fleet accelerator's model under
    /// `binding`, returning the host outcome plus one outcome per
    /// accelerator in fleet registration order.
    fn fleet_outcomes(
        &self,
        selector: &Selector,
        binding: &Binding,
    ) -> (Result<f64, ModelError>, Vec<Result<f64, ModelError>>);

    /// The [`BindingClass`] online calibration buckets this region's
    /// corrections under for `binding`. The default classifies over every
    /// bound symbol; sources that know their required parameters override
    /// it so irrelevant symbols cannot perturb the class — the same
    /// discipline the decision cache's key follows.
    fn calib_class(&self, binding: &Binding) -> BindingClass {
        BindingClass::of(binding)
    }
}

impl ModelSource for Kernel {
    fn region_name(&self) -> &str {
        &self.name
    }

    fn model_outcomes(
        &self,
        selector: &Selector,
        binding: &Binding,
    ) -> (Result<f64, ModelError>, Result<f64, ModelError>) {
        let (cpu_cost, gpu_cost) = selector.cost_models();
        (
            cpu_cost.compile(self).evaluate(binding).map(|p| p.seconds),
            gpu_cost.compile(self).evaluate(binding).map(|p| p.seconds),
        )
    }

    fn fleet_outcomes(
        &self,
        selector: &Selector,
        binding: &Binding,
    ) -> (Result<f64, ModelError>, Vec<Result<f64, ModelError>>) {
        let (cpu_cost, gpu_costs) = selector.fleet_cost_models();
        (
            cpu_cost.compile(self).evaluate(binding).map(|p| p.seconds),
            gpu_costs
                .into_iter()
                .map(|g| g.compile(self).evaluate(binding).map(|p| p.seconds))
                .collect(),
        )
    }

    fn calib_class(&self, binding: &Binding) -> BindingClass {
        let params = self.params();
        BindingClass::over(params.iter().map(String::as_str), binding)
    }
}

impl ModelSource for RegionAttributes {
    fn region_name(&self) -> &str {
        &self.kernel.name
    }

    fn model_outcomes(
        &self,
        _selector: &Selector,
        binding: &Binding,
    ) -> (Result<f64, ModelError>, Result<f64, ModelError>) {
        (
            self.cpu_model.evaluate(binding).map(|p| p.seconds),
            self.gpu_model.evaluate(binding).map(|p| p.seconds),
        )
    }

    fn fleet_outcomes(
        &self,
        _selector: &Selector,
        binding: &Binding,
    ) -> (Result<f64, ModelError>, Vec<Result<f64, ModelError>>) {
        let mut accels = Vec::with_capacity(1 + self.extra_accel_models.len());
        accels.push(self.gpu_model.evaluate(binding).map(|p| p.seconds));
        for model in &self.extra_accel_models {
            accels.push(model.evaluate(binding).map(|p| p.seconds));
        }
        (self.cpu_model.evaluate(binding).map(|p| p.seconds), accels)
    }

    fn calib_class(&self, binding: &Binding) -> BindingClass {
        BindingClass::over(self.required_params.iter().map(String::as_str), binding)
    }
}

/// One decision (or dispatch) request: the redesigned request API that
/// replaced the positional `(&str, &Binding)` tuples.
///
/// A request names the region, carries the runtime binding, and optionally
/// overrides the engine's policy or bounds the decision with a deadline.
/// Build with [`DecisionRequest::new`] plus the `with_*` builders:
///
/// ```
/// use std::time::Duration;
/// use hetsel_core::{DecisionRequest, Policy};
/// use hetsel_ir::Binding;
///
/// let request = DecisionRequest::new("gemm", Binding::new().with("ni", 1024))
///     .with_policy(Policy::AlwaysHost)
///     .with_deadline(Duration::from_micros(50));
/// assert_eq!(request.region(), "gemm");
/// ```
///
/// Fields are private so invariants can be added without breaking callers;
/// every field has an accessor. Serialization (via the workspace `serde`)
/// writes `{"region", "binding", "policy_override", "deadline_ns"}` with
/// the policy as its [`Policy::name`] string and the deadline in integer
/// nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRequest {
    region: String,
    binding: Binding,
    policy_override: Option<Policy>,
    deadline: Option<Duration>,
}

impl DecisionRequest {
    /// A plain request: decide `region` under `binding` with the engine's
    /// own policy and no deadline.
    pub fn new(region: impl Into<String>, binding: Binding) -> DecisionRequest {
        DecisionRequest {
            region: region.into(),
            binding,
            policy_override: None,
            deadline: None,
        }
    }

    /// Builder: decide under `policy` instead of the engine's configured
    /// policy. Overridden decisions are cached in their own policy-tagged
    /// partition, so repeated overrides are as warm as plain decisions
    /// without ever cross-answering one.
    pub fn with_policy(mut self, policy: Policy) -> DecisionRequest {
        self.policy_override = Some(policy);
        self
    }

    /// Builder: strip any per-request policy override, restoring the
    /// engine's configured policy — the mirror of
    /// [`DecisionRequest::without_deadline`], so a front-end can reuse a
    /// template request without rebuilding it.
    pub fn without_policy(mut self) -> DecisionRequest {
        self.policy_override = None;
        self
    }

    /// Builder: bound the decision by `deadline`. A decision that misses
    /// its deadline degrades to the compiler default (offload) with
    /// [`ModelError::DeadlineExceeded`] recorded on both sides; a zero
    /// deadline skips model evaluation entirely.
    pub fn with_deadline(mut self, deadline: Duration) -> DecisionRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Builder: strip any deadline from the request. A front-end that
    /// enforces deadlines with real timers (`hetsel-serve`) uses this so
    /// the engine never second-guesses the timer with its own post-hoc
    /// elapsed check.
    pub fn without_deadline(mut self) -> DecisionRequest {
        self.deadline = None;
        self
    }

    /// The region the request names.
    pub fn region(&self) -> &str {
        &self.region
    }

    /// The runtime binding.
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// The policy override, if any.
    pub fn policy_override(&self) -> Option<Policy> {
        self.policy_override
    }

    /// The decision deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }
}

impl From<(&str, &Binding)> for DecisionRequest {
    /// Upgrades a legacy positional pair into a plain request.
    fn from((region, binding): (&str, &Binding)) -> DecisionRequest {
        DecisionRequest::new(region, binding.clone())
    }
}

impl serde::Serialize for DecisionRequest {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let binding = Value::Object(
            self.binding
                .iter()
                .map(|(name, value)| (name.to_string(), Value::Int(value)))
                .collect(),
        );
        let policy = match self.policy_override {
            Some(p) => Value::Str(p.name().to_string()),
            None => Value::Null,
        };
        let deadline = match self.deadline {
            // Saturate rather than wrap: u64 nanoseconds covers ~584 years.
            Some(d) => Value::UInt(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
            None => Value::Null,
        };
        Value::Object(vec![
            ("region".to_string(), Value::Str(self.region.clone())),
            ("binding".to_string(), binding),
            ("policy_override".to_string(), policy),
            ("deadline_ns".to_string(), deadline),
        ])
    }
}

impl serde::Deserialize for DecisionRequest {
    fn from_value(v: &serde::Value) -> Result<DecisionRequest, serde::Error> {
        use serde::Value;
        let region = match v.get("region") {
            Some(Value::Str(s)) => s.clone(),
            other => return Err(serde::Error::msg(format!("bad region: {other:?}"))),
        };
        let mut binding = Binding::new();
        match v.get("binding") {
            Some(Value::Object(fields)) => {
                for (name, value) in fields {
                    match value {
                        Value::Int(n) => binding.set(name.as_str(), *n),
                        Value::UInt(n) => binding.set(
                            name.as_str(),
                            i64::try_from(*n).map_err(|_| {
                                serde::Error::msg(format!("binding {name} out of range: {n}"))
                            })?,
                        ),
                        other => {
                            return Err(serde::Error::msg(format!(
                                "binding {name} is not an integer: {other:?}"
                            )))
                        }
                    }
                }
            }
            other => return Err(serde::Error::msg(format!("bad binding: {other:?}"))),
        }
        let policy_override = match v.get("policy_override") {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) => Some(
                Policy::parse(s)
                    .ok_or_else(|| serde::Error::msg(format!("unknown policy {s:?}")))?,
            ),
            other => return Err(serde::Error::msg(format!("bad policy_override: {other:?}"))),
        };
        let deadline = match v.get("deadline_ns") {
            None | Some(Value::Null) => None,
            Some(ns) => Some(Duration::from_nanos(
                <u64 as serde::Deserialize>::from_value(ns)?,
            )),
        };
        let mut request = DecisionRequest::new(region, binding);
        request.policy_override = policy_override;
        request.deadline = deadline;
        Ok(request)
    }
}

/// Geometric mean of the positive, finite values in a sequence.
///
/// Non-positive and non-finite values are skipped rather than asserted on:
/// one degenerate sample (a zero simulated time, an unresolved speedup
/// propagated as NaN) must not turn a whole aggregate into NaN. An input
/// with no usable values yields `1.0`, the neutral speedup.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 && v.is_finite() {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Hit/miss statistics and occupancy of a [`DecisionEngine`]'s cache,
/// aggregated over every shard. Counters are shard-local atomics summed at
/// read time — taking a snapshot never stops the world; each shard's lock
/// is taken briefly and one at a time only for `len` and `evictions`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionCacheStats {
    /// Decisions served from the cache.
    pub hits: u64,
    /// Decisions computed by model evaluation.
    pub misses: u64,
    /// Entries currently cached, summed over shards.
    pub len: usize,
    /// Maximum entries the cache holds in total. Sharding never inflates
    /// the memory bound: per-shard capacities sum to exactly this value.
    pub capacity: usize,
    /// Entries evicted to make room since the engine was built.
    pub evictions: u64,
    /// Number of lock-striped shards the cache is split into.
    pub shards: usize,
}

/// Number of parameter slots a [`CacheKey`] stores inline. Polybench
/// regions need at most three; eight covers any realistic region without
/// touching the heap.
const INLINE_KEY_SLOTS: usize = 8;

/// The engine's own configured policy — the default [`CacheKey`]
/// partition every plain `decide`/`decide_for` call lives in.
const OWN_POLICY: u8 = 0;

/// Stable non-zero partition tag for a per-request policy override.
/// Distinct from [`OWN_POLICY`] even when the override names the policy
/// the engine is already configured with: the cheap constant tag keeps
/// the plain path free of a comparison, at the cost of (at most) one
/// duplicate cache entry per key for redundant overrides.
fn policy_code(policy: Policy) -> u8 {
    match policy {
        Policy::AlwaysHost => 1,
        Policy::AlwaysOffload => 2,
        Policy::ModelDriven => 3,
    }
}

/// Key of a cached decision: the region's dense [`RegionId`], the
/// [`DeviceId`] scope the decision was taken under ([`DeviceId::FLEET`]
/// for the default whole-fleet `decide`, a concrete device id for
/// `decide_for`), a policy-partition tag (0 for the engine's configured
/// policy, a [`policy_code`] for per-request overrides), plus the
/// resolved values of exactly the parameters that region requires, in
/// declaration order, with the hash precomputed at construction. Bindings that differ only in irrelevant symbols share an
/// entry; an unbound required parameter is part of the key too (`None`),
/// so fallback decisions are cached with the same fidelity as successful
/// ones.
///
/// Keys with at most [`INLINE_KEY_SLOTS`] parameters are built, hashed and
/// compared without a single heap allocation — this is what makes the
/// cache-hit `decide` path allocation-free. Longer parameter lists spill to
/// a boxed slice.
#[derive(Debug, Clone)]
struct CacheKey {
    region: RegionId,
    /// Decision scope: whole fleet or one device.
    scope: DeviceId,
    /// Policy partition: 0 for the engine's own configured policy, a
    /// [`policy_code`] for a per-request override. Overridden decisions
    /// are cached too, but in their own partition — they can never
    /// answer (or be answered by) a plain request.
    policy: u8,
    /// Calibration epoch the decision was taken under: the calibrator's
    /// epoch in Active mode, 0 otherwise. A published correction bumps
    /// the epoch, so every cached verdict that might depend on it is
    /// lazily invalidated (its key no longer matches) without touching
    /// the cache — and *only* then: per-sample churn never invalidates.
    epoch: u64,
    /// Number of inline slots in use (only meaningful when `spill` is
    /// `None`; always `<= INLINE_KEY_SLOTS`).
    len: u8,
    inline: [Option<i64>; INLINE_KEY_SLOTS],
    spill: Option<Box<[Option<i64>]>>,
    /// FNV-1a over the region id and slots, computed once at construction.
    /// `Hash` writes this value verbatim and shard selection masks it
    /// directly, so a key is hashed exactly once in its life.
    hash: u64,
}

impl CacheKey {
    fn new(
        region: RegionId,
        scope: DeviceId,
        policy: u8,
        epoch: u64,
        attrs: &RegionAttributes,
        binding: &Binding,
    ) -> CacheKey {
        let params = &attrs.required_params;
        let mut inline = [None; INLINE_KEY_SLOTS];
        let mut spill = None;
        if params.len() <= INLINE_KEY_SLOTS {
            for (slot, p) in inline.iter_mut().zip(params) {
                *slot = binding.get(p);
            }
        } else {
            spill = Some(params.iter().map(|p| binding.get(p)).collect());
        }
        let mut key = CacheKey {
            region,
            scope,
            policy,
            epoch,
            len: params.len().min(INLINE_KEY_SLOTS) as u8,
            inline,
            spill,
            hash: 0,
        };
        key.hash = key.compute_hash();
        key
    }

    /// The resolved parameter values, in the region's declaration order.
    fn slots(&self) -> &[Option<i64>] {
        match &self.spill {
            Some(slots) => slots,
            None => &self.inline[..self.len as usize],
        }
    }

    fn compute_hash(&self) -> u64 {
        // FNV-1a with the standard constants: cheap, allocation-free, and
        // deterministic within and across processes (shard placement and
        // therefore per-shard accounting are reproducible).
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(PRIME);
        };
        mix(u64::from(self.region.0));
        mix(u64::from(self.scope.0));
        mix(u64::from(self.policy));
        // Folded only when nonzero so epoch-0 keys (Off/Shadow mode, or
        // Active before any publication) hash — and therefore shard —
        // exactly as they did before calibration existed. FNV-1a folds a
        // zero too (the multiply still runs), which would silently reshuffle
        // every cached entry's placement.
        if self.epoch != 0 {
            mix(self.epoch);
        }
        for slot in self.slots() {
            // Distinct tags keep `Some(0)` and `None` from colliding.
            match slot {
                Some(v) => {
                    mix(1);
                    mix(*v as u64);
                }
                None => mix(2),
            }
        }
        // MurmurHash3 finalizer: raw FNV concentrates its entropy in the
        // high bits, but shard selection masks the *low* bits — fmix64
        // gives them full avalanche.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }
}

impl PartialEq for CacheKey {
    fn eq(&self, other: &CacheKey) -> bool {
        self.hash == other.hash
            && self.region == other.region
            && self.scope == other.scope
            && self.policy == other.policy
            && self.epoch == other.epoch
            && self.slots() == other.slots()
    }
}

impl Eq for CacheKey {}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Pass-through hasher for [`CacheKey`]-keyed maps: the key's `hash` field
/// is already a well-mixed 64-bit value (fmix64-finalised FNV-1a), so
/// running it through SipHash again would only add latency to the hot
/// path. `CacheKey::hash` feeds exactly one `write_u64`.
#[derive(Default)]
struct Prehashed(u64);

impl Hasher for Prehashed {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("CacheKey hashes via write_u64 only");
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type PrehashedBuild = std::hash::BuildHasherDefault<Prehashed>;

/// Sentinel index for "no node" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct LruNode {
    key: CacheKey,
    decision: Decision,
    prev: u32,
    next: u32,
}

/// A bounded LRU map backed by an intrusive doubly linked list threaded
/// through a slab of nodes: a hit relinks two `u32` indices and clones the
/// cached decision — no key clone, no queue record, no allocation at all —
/// and an insert at capacity reuses the evicted node's slot, so a full
/// cache stops allocating entirely. Eviction order is exact LRU.
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    map: HashMap<CacheKey, u32, PrehashedBuild>,
    nodes: Vec<LruNode>,
    free: Vec<u32>,
    /// Most recently used node, or [`NIL`] when empty.
    head: u32,
    /// Least recently used node, or [`NIL`] when empty.
    tail: u32,
    evictions: u64,
}

impl LruCache {
    fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity: capacity.max(1),
            map: HashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
        }
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let n = &mut self.nodes[idx as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Decision> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.nodes[idx as usize].decision.clone())
    }

    fn insert(&mut self, key: CacheKey, decision: Decision) {
        if let Some(&idx) = self.map.get(&key) {
            // Same key: refresh the value in place and the recency.
            self.nodes[idx as usize].decision = decision;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        while self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "non-empty map must have a tail");
            if lru == NIL {
                break;
            }
            self.unlink(lru);
            self.map.remove(&self.nodes[lru as usize].key);
            self.free.push(lru);
            self.evictions += 1;
            hetsel_obs::static_counter!("hetsel.core.cache.eviction").inc();
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                let n = &mut self.nodes[idx as usize];
                n.key = key.clone();
                n.decision = decision;
                idx
            }
            None => {
                let idx = self.nodes.len() as u32;
                self.nodes.push(LruNode {
                    key: key.clone(),
                    decision,
                    prev: NIL,
                    next: NIL,
                });
                idx
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
    }
}

/// Default decision-cache capacity: generous for a program with tens of
/// regions and a handful of binding regimes each.
pub const DEFAULT_DECISION_CACHE: usize = 1024;

/// Default shard count for the decision cache: a power of two sized for the
/// core counts this runtime targets (the build environment is offline, so
/// this is a constant rather than a `num_cpus` probe). Sixteen stripes keep
/// eight to sixteen deciding threads almost always on disjoint locks.
pub const DEFAULT_DECISION_SHARDS: usize = 16;

/// One lock stripe of the sharded cache: a bounded LRU behind its own
/// mutex, with the hit/miss tallies kept *outside* the lock so the
/// aggregated [`DecisionCacheStats`] never needs a stop-the-world pass.
#[derive(Debug)]
struct CacheShard {
    lru: Mutex<LruCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A sharded, lock-striped decision cache: `CacheKey`s are hashed onto a
/// power-of-two number of independent [`LruCache`]s so concurrent
/// `decide()` calls for different keys almost never contend on the same
/// mutex. The total memory bound is unchanged by sharding — per-shard
/// capacities are carved out of the requested capacity and sum to exactly
/// it.
#[derive(Debug)]
struct ShardedCache {
    shards: Box<[CacheShard]>,
    mask: usize,
}

impl ShardedCache {
    /// Builds `shards` stripes (rounded down to a power of two, clamped to
    /// `[1, capacity]` so every shard holds at least one entry and the
    /// stripes sum to exactly `capacity`).
    fn new(capacity: usize, shards: usize) -> ShardedCache {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        // Round down to a power of two so shard selection is a mask.
        let shards = 1usize << shards.ilog2();
        let base = capacity / shards;
        let extra = capacity % shards;
        let stripes: Vec<CacheShard> = (0..shards)
            .map(|i| CacheShard {
                lru: Mutex::new(LruCache::new(base + usize::from(i < extra))),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            })
            .collect();
        ShardedCache {
            shards: stripes.into_boxed_slice(),
            mask: shards - 1,
        }
    }

    /// The shard a key lives in: a mask over the key's precomputed FNV-1a
    /// hash — no hasher runs here, so shard selection costs two
    /// instructions and placement is deterministic within and across
    /// processes.
    fn shard_index(&self, key: &CacheKey) -> usize {
        (key.hash as usize) & self.mask
    }

    fn shard(&self, key: &CacheKey) -> &CacheShard {
        &self.shards[self.shard_index(key)]
    }
}

/// Emits one flight-recorder event for an engine verdict. The disabled
/// path is a single relaxed atomic load inside
/// [`hetsel_obs::record_event`] — the closure (and therefore every field
/// read below) runs only while recording is on, and even then allocates
/// nothing: the event is a fixed-size stack value serialized into the
/// recorder's preallocated ring.
#[inline]
fn record_decide_event(decision: &Decision, binding_hash: u64, cache_hit: bool) {
    hetsel_obs::record_event(|| {
        let mut ev =
            hetsel_obs::DecisionEvent::new(hetsel_obs::EventKind::Decide, &decision.region);
        ev.binding_hash = binding_hash;
        ev.device = decision.device_id.0;
        ev.verdict_accel = decision.device == Device::Gpu;
        ev.cache_hit = cache_hit;
        ev.predicted_cpu_s = decision.predicted_cpu_s.unwrap_or(f64::NAN);
        ev.predicted_accel_s = decision.predicted_gpu_s.unwrap_or(f64::NAN);
        ev
    });
    // A calibration flip on a *freshly evaluated* verdict gets its own
    // event (cached copies of a flipped decision do not re-announce it):
    // `detail` 1 = the correction was applied (Active), 0 = a shadow-mode
    // would-flip; the predicted fields carry the raw predictions the flip
    // was measured against.
    if !cache_hit {
        if let Some(tag) = decision.calibration.filter(|t| t.flipped) {
            hetsel_obs::record_event(|| {
                let mut ev = hetsel_obs::DecisionEvent::new(
                    hetsel_obs::EventKind::CalibrationFlip,
                    &decision.region,
                );
                ev.binding_hash = binding_hash;
                ev.device = decision.device_id.0;
                ev.verdict_accel = decision.device == Device::Gpu;
                ev.detail = u8::from(tag.applied);
                ev.predicted_cpu_s = tag.raw_cpu_s.unwrap_or(f64::NAN);
                ev.predicted_accel_s = tag.raw_gpu_s.unwrap_or(f64::NAN);
                ev
            });
        }
    }
}

/// The compile-once decision engine: a [`Selector`] bound to a precompiled
/// [`AttributeDatabase`] plus a bounded LRU cache of decisions.
///
/// This is the paper's runtime component in full: regions were compiled
/// once (models, IPDA, loadouts all precomputed); at execution time
/// [`DecisionEngine::decide`] binds the runtime values, and because a
/// program re-reaches the same region with the same extents over and over,
/// the decision itself is memoized on `(region, resolved parameter values)`.
/// Cached and freshly evaluated decisions are identical — the cache stores
/// the full [`Decision`], evidence and errors included.
#[derive(Debug)]
pub struct DecisionEngine {
    selector: Selector,
    database: AttributeDatabase,
    cache: ShardedCache,
}

impl DecisionEngine {
    /// Compiles `kernels` under `selector`'s configuration and wraps the
    /// result with a decision cache of [`DEFAULT_DECISION_CACHE`] entries
    /// striped over [`DEFAULT_DECISION_SHARDS`] shards.
    pub fn new(selector: Selector, kernels: &[Kernel]) -> DecisionEngine {
        DecisionEngine::with_capacity(selector, kernels, DEFAULT_DECISION_CACHE)
    }

    /// As [`DecisionEngine::new`] with an explicit cache capacity
    /// (minimum 1).
    pub fn with_capacity(
        selector: Selector,
        kernels: &[Kernel],
        capacity: usize,
    ) -> DecisionEngine {
        let database = AttributeDatabase::compile(kernels, &selector);
        DecisionEngine::from_database(selector, database, capacity)
    }

    /// Wraps an already-compiled database. The database must have been
    /// compiled with this selector's configuration for decisions to match
    /// cold [`Selector::decide`] calls on the bare kernels.
    pub fn from_database(
        selector: Selector,
        database: AttributeDatabase,
        capacity: usize,
    ) -> DecisionEngine {
        DecisionEngine::from_database_sharded(selector, database, capacity, DEFAULT_DECISION_SHARDS)
    }

    /// As [`DecisionEngine::from_database`] with an explicit shard count.
    /// `shards` is rounded down to a power of two and clamped to
    /// `[1, capacity]`; `shards == 1` reproduces the old single-mutex cache
    /// (the baseline the contention benchmark compares against).
    pub fn from_database_sharded(
        selector: Selector,
        database: AttributeDatabase,
        capacity: usize,
        shards: usize,
    ) -> DecisionEngine {
        DecisionEngine {
            selector,
            database,
            cache: ShardedCache::new(capacity, shards),
        }
    }

    /// The selector the engine decides with.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// The compiled attribute database.
    pub fn database(&self) -> &AttributeDatabase {
        &self.database
    }

    /// The calibration epoch cache keys are stamped with: the calibrator's
    /// current epoch in Active mode (one relaxed atomic load), 0 in Off
    /// and Shadow modes — those verdicts never depend on corrections, so
    /// their cache entries must survive publications untouched.
    #[inline]
    fn calib_epoch(&self) -> u64 {
        match self.selector.calibration {
            CalibrationMode::Active => self.selector.calibrator.epoch(),
            _ => 0,
        }
    }

    /// Takes (or recalls) the offloading decision for `region` under
    /// `binding`. Returns `None` only for a region the database does not
    /// know. A cached decision is bit-identical to what evaluation would
    /// produce, because the models are deterministic in the key.
    pub fn decide(&self, region: &str, binding: &Binding) -> Option<Decision> {
        let _timer = hetsel_obs::static_histogram!("hetsel.core.decide.ns").start_timer();
        let (id, attrs) = self.database.region_entry(region)?;
        let key = CacheKey::new(
            id,
            DeviceId::FLEET,
            OWN_POLICY,
            self.calib_epoch(),
            attrs,
            binding,
        );
        Some(self.decide_cached(key, || self.selector.decide(attrs, binding)))
    }

    /// The probe → evaluate → insert dance every cached single-decision
    /// path shares. Probes `key`'s shard, runs `eval` on a miss, then
    /// re-probes under the insert lock: another thread may have completed
    /// the same miss while this one was evaluating. The loser takes the
    /// cached copy (bit-identical — the models are deterministic in the
    /// key) and counts a late hit, so `misses == insertions` holds
    /// exactly even under concurrent duplicate misses. Hit/miss counters
    /// and the flight-recorder `Decide` event are emitted here, so every
    /// caller is observable by construction.
    fn decide_cached(&self, key: CacheKey, eval: impl FnOnce() -> Decision) -> Decision {
        let shard = self.cache.shard(&key);
        if let Some(cached) = shard.lru.lock().get(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            hetsel_obs::static_counter!("hetsel.core.cache.hit").inc();
            record_decide_event(&cached, key.hash, true);
            return cached;
        }
        let decision = eval();
        let mut lru = shard.lru.lock();
        if let Some(cached) = lru.get(&key) {
            drop(lru);
            shard.hits.fetch_add(1, Ordering::Relaxed);
            hetsel_obs::static_counter!("hetsel.core.cache.hit").inc();
            record_decide_event(&cached, key.hash, true);
            return cached;
        }
        let binding_hash = key.hash;
        lru.insert(key, decision.clone());
        drop(lru);
        shard.misses.fetch_add(1, Ordering::Relaxed);
        hetsel_obs::static_counter!("hetsel.core.cache.miss").inc();
        record_decide_event(&decision, binding_hash, false);
        decision
    }

    /// Takes (or recalls) the decision for `region` with the candidate set
    /// restricted to the host plus the one device `device` names
    /// ([`DeviceId::HOST`] restricts to the host alone). Returns `None`
    /// for an unknown region, a device id the fleet does not register, or
    /// an accelerator the database carries no compiled model for.
    ///
    /// Scoped decisions share the engine's cache under a
    /// `(RegionId, DeviceId, values)` key and are as allocation-free on a
    /// hit as [`DecisionEngine::decide`] (proven by
    /// `core/tests/zero_alloc.rs`). With the fleet's primary accelerator
    /// as scope the answer is bit-identical to `decide` on a pair fleet.
    pub fn decide_for(
        &self,
        region: &str,
        binding: &Binding,
        device: DeviceId,
    ) -> Option<Decision> {
        let _timer = hetsel_obs::static_histogram!("hetsel.core.decide.ns").start_timer();
        let (id, attrs) = self.database.region_entry(region)?;
        let scope = if device.is_host() {
            None
        } else {
            let fleet_idx = self.selector.fleet.accel_index(device)?;
            // The database must carry a compiled model for this
            // accelerator (index 0 is `gpu_model`, the rest are extras).
            if fleet_idx > attrs.extra_accel_models.len() {
                return None;
            }
            Some(fleet_idx)
        };
        let key = CacheKey::new(id, device, OWN_POLICY, self.calib_epoch(), attrs, binding);
        Some(self.decide_cached(key, || {
            self.selector.decide_restricted(attrs, binding, scope)
        }))
    }

    /// Takes (or recalls) the decision for `region` under a per-request
    /// policy override. Overridden decisions live in their own
    /// policy-tagged cache partition (see [`CacheKey`]) so they are as
    /// warm, as cheap, and as observable as plain decisions — cache
    /// hit/miss accounting and flight-recorder events included — without
    /// ever cross-answering a request decided under a different policy.
    fn decide_overridden(
        &self,
        region: &str,
        binding: &Binding,
        policy: Policy,
    ) -> Option<Decision> {
        let _timer = hetsel_obs::static_histogram!("hetsel.core.decide.ns").start_timer();
        let (id, attrs) = self.database.region_entry(region)?;
        let key = CacheKey::new(
            id,
            DeviceId::FLEET,
            policy_code(policy),
            self.calib_epoch(),
            attrs,
            binding,
        );
        Some(self.decide_cached(key, || self.selector.decide_under(policy, attrs, binding)))
    }

    /// Takes (or recalls) the decision for one [`DecisionRequest`],
    /// honouring its policy override and deadline. Returns `None` only for
    /// a region the database does not know.
    ///
    /// * No override, no deadline: exactly [`DecisionEngine::decide`]
    ///   (cache included) — a plain request adds nothing to the hot path.
    /// * Policy override: decided under the overridden policy in its own
    ///   policy-tagged cache partition — warm, recorded in the flight
    ///   recorder, and never cross-answering a plain request.
    /// * Deadline: a zero budget skips model evaluation entirely; a missed
    ///   budget degrades the reply to the compiler default (offload) with
    ///   [`ModelError::DeadlineExceeded`] recorded on both sides. The
    ///   degraded reply itself is never cached, but a late *computed*
    ///   answer already went into the cache before the budget check, so a
    ///   retry of the same key is a warm hit instead of a second blown
    ///   budget.
    pub fn decide_request(&self, request: &DecisionRequest) -> Option<Decision> {
        self.decide_request_inner(request).map(|(d, _)| d)
    }

    /// As [`DecisionEngine::decide_request`] with an explicit deadline,
    /// overriding any deadline the request already carries. The override is
    /// applied in place — the request is not cloned.
    pub fn decide_within(&self, request: &DecisionRequest, deadline: Duration) -> Option<Decision> {
        self.decide_request_bounded(request, Some(deadline))
            .map(|(d, _)| d)
    }

    /// Request path with the degrade flag exposed, for the dispatcher: the
    /// `bool` is true iff the decision was deadline-degraded.
    pub(crate) fn decide_request_inner(
        &self,
        request: &DecisionRequest,
    ) -> Option<(Decision, bool)> {
        self.decide_request_bounded(request, None)
    }

    /// Shared request path: `deadline_override`, when present, replaces the
    /// request's own deadline without materialising a modified request.
    pub(crate) fn decide_request_bounded(
        &self,
        request: &DecisionRequest,
        deadline_override: Option<Duration>,
    ) -> Option<(Decision, bool)> {
        let start = Instant::now();
        let deadline = deadline_override.or_else(|| request.deadline());
        if deadline.is_some_and(|d| d.is_zero()) {
            // No budget at all: don't even evaluate, but still refuse
            // unknown regions.
            self.database.region(request.region())?;
            return Some((self.deadline_degraded(request.region()), true));
        }
        let decision = match request.policy_override() {
            None => self.decide(request.region(), request.binding())?,
            Some(policy) => self.decide_overridden(request.region(), request.binding(), policy)?,
        };
        // Both branches cached the computed decision above, so a blown
        // budget does not waste the ~µs cold evaluation: the reply
        // degrades, but a retry of the same key is a warm hit.
        if deadline.is_some_and(|d| start.elapsed() > d) {
            return Some((self.deadline_degraded(request.region()), true));
        }
        Some((decision, false))
    }

    /// The decision a deadline miss degrades to: the compiler default
    /// (offload to the primary accelerator; the host for a host-only
    /// fleet) with the reason recorded on both model sides — nothing was
    /// predicted, not because the models failed, but because the budget
    /// ran out before they could answer.
    fn deadline_degraded(&self, region: &str) -> Decision {
        hetsel_obs::static_counter!("hetsel.core.decide.deadline_exceeded").inc();
        let fleet = &self.selector.fleet;
        let (device, device_id, device_name) = match fleet.primary_accelerator() {
            Some(id) => (
                Device::Gpu,
                id,
                fleet.label_arc(id).expect("primary id resolves").clone(),
            ),
            None => (Device::Host, DeviceId::HOST, fleet.host_label_arc().clone()),
        };
        Decision {
            region: Arc::from(region),
            device,
            device_id,
            device_name,
            policy: Policy::AlwaysOffload,
            predicted_cpu_s: None,
            predicted_gpu_s: None,
            cpu_error: Some(ModelError::DeadlineExceeded),
            gpu_error: Some(ModelError::DeadlineExceeded),
            calibration: None,
        }
    }

    /// Takes (or recalls) the decisions for a whole batch of requests at
    /// once, returning one slot per request in request order (`None` for
    /// unknown regions, exactly as [`DecisionEngine::decide_request`]
    /// would).
    ///
    /// Plain requests are grouped by cache shard so each shard's lock is
    /// taken at most twice — once for all of the group's lookups, once for
    /// all of its inserts — instead of twice per request. Cold misses from
    /// *every* shard are then evaluated in a single data-parallel pass
    /// (rayon) with no lock held; the models are pure functions of
    /// `(region, binding)`, so the parallel pass is bit-for-bit identical
    /// to evaluating serially. Requests carrying a policy override or
    /// deadline take the individual [`DecisionEngine::decide_request`] path
    /// (overrides live in their own cache partition; deadlines need the
    /// per-request clock). Decisions and hit/miss accounting are identical
    /// to issuing the requests one by one.
    pub fn decide_batch(&self, requests: &[DecisionRequest]) -> Vec<Option<Decision>> {
        let mut results: Vec<Option<Decision>> = vec![None; requests.len()];
        // One epoch read covers the whole batch: every plain request in it
        // is keyed (and answered) under the same calibration epoch.
        let epoch = self.calib_epoch();
        // Resolve keys and group plain request indices by shard.
        let mut keyed: Vec<Option<(CacheKey, &RegionAttributes)>> =
            Vec::with_capacity(requests.len());
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.cache.shards.len()];
        for (i, request) in requests.iter().enumerate() {
            if request.policy_override().is_some() || request.deadline().is_some() {
                results[i] = self.decide_request(request);
                keyed.push(None);
                continue;
            }
            match self.database.region_entry(request.region()) {
                Some((id, attrs)) => {
                    let key = CacheKey::new(
                        id,
                        DeviceId::FLEET,
                        OWN_POLICY,
                        epoch,
                        attrs,
                        request.binding(),
                    );
                    by_shard[self.cache.shard_index(&key)].push(i);
                    keyed.push(Some((key, attrs)));
                }
                None => keyed.push(None),
            }
        }
        // Phase 1: one lock per shard for every lookup in its group. A
        // repeated key later in the batch is a hit against the earlier
        // request's (still pending) evaluation — the same accounting serial
        // decides would produce.
        /// Per-shard phase-1 outcome: which request slots missed and which
        /// are intra-batch duplicates of an earlier miss `(slot, source)`.
        struct ShardPlan {
            shard: usize,
            missed: Vec<usize>,
            duplicates: Vec<(usize, usize)>,
        }
        let mut plans: Vec<ShardPlan> = Vec::new();
        for (shard_idx, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let shard = &self.cache.shards[shard_idx];
            let mut missed: Vec<usize> = Vec::new();
            let mut duplicates: Vec<(usize, usize)> = Vec::new(); // (slot, source slot)
            let mut pending: HashMap<&CacheKey, usize> = HashMap::new();
            let mut lru = shard.lru.lock();
            for &i in indices {
                let (key, _) = keyed[i].as_ref().expect("grouped index was keyed");
                match lru.get(key) {
                    Some(cached) => {
                        shard.hits.fetch_add(1, Ordering::Relaxed);
                        hetsel_obs::static_counter!("hetsel.core.cache.hit").inc();
                        record_decide_event(&cached, key.hash, true);
                        results[i] = Some(cached);
                    }
                    None => match pending.get(key) {
                        Some(&first) => duplicates.push((i, first)),
                        None => {
                            pending.insert(key, i);
                            missed.push(i);
                        }
                    },
                }
            }
            drop(lru);
            if !missed.is_empty() {
                plans.push(ShardPlan {
                    shard: shard_idx,
                    missed,
                    duplicates,
                });
            }
        }
        // Phase 2: evaluate every cold miss across all shards in one
        // parallel pass, no lock held. Results come back tagged with their
        // request slot and are scattered in order, so the output is
        // independent of evaluation order.
        let all_missed: Vec<usize> = plans
            .iter()
            .flat_map(|plan| plan.missed.iter().copied())
            .collect();
        let evaluated: Vec<(usize, Decision)> = all_missed
            .into_par_iter()
            .map(|i| {
                let (_, attrs) = keyed[i].as_ref().expect("grouped index was keyed");
                (i, self.selector.decide(*attrs, requests[i].binding()))
            })
            .collect();
        for (i, decision) in evaluated {
            results[i] = Some(decision);
        }
        // Phase 3: duplicates copy their source slot as hits, then each
        // shard takes its lock once more for the inserts, re-probing each
        // key: a concurrent caller may have completed the same miss since
        // phase 1, and the loser counts a late hit (see `decide`) so
        // `misses == insertions` holds exactly.
        for plan in &plans {
            let shard = &self.cache.shards[plan.shard];
            for &(i, first) in &plan.duplicates {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                hetsel_obs::static_counter!("hetsel.core.cache.hit").inc();
                results[i] = results[first].clone();
                if let (Some(d), Some((key, _))) = (results[i].as_ref(), keyed[i].as_ref()) {
                    record_decide_event(d, key.hash, true);
                }
            }
            let mut lru = shard.lru.lock();
            for &i in &plan.missed {
                let (key, _) = keyed[i].as_ref().expect("grouped index was keyed");
                if let Some(cached) = lru.get(key) {
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    hetsel_obs::static_counter!("hetsel.core.cache.hit").inc();
                    record_decide_event(&cached, key.hash, true);
                    results[i] = Some(cached);
                    continue;
                }
                let decision = results[i].as_ref().expect("miss was evaluated");
                lru.insert(key.clone(), decision.clone());
                shard.misses.fetch_add(1, Ordering::Relaxed);
                hetsel_obs::static_counter!("hetsel.core.cache.miss").inc();
                record_decide_event(decision, key.hash, false);
            }
        }
        results
    }

    /// Takes the decision and explains it in the same call: the
    /// explanation is the full evidence behind exactly that decision (see
    /// [`Explanation::describes`](crate::explain::Explanation::describes)).
    /// The decision goes through the cache as usual; the explanation is
    /// always freshly evaluated, with its `cached` flag reporting whether
    /// the decision key now sits in the cache.
    pub fn decide_explained(
        &self,
        region: &str,
        binding: &Binding,
    ) -> Option<(Decision, crate::explain::Explanation)> {
        let decision = self.decide(region, binding)?;
        let explanation = self.explain(region, binding)?;
        Some((decision, explanation))
    }

    /// Produces the full [`Explanation`](crate::explain::Explanation) for a
    /// known region under `binding`, without consulting or populating the
    /// decision cache (the `cached` field reports whether a decision for
    /// this key is currently cached). Returns `None` for an unknown region.
    pub fn explain(&self, region: &str, binding: &Binding) -> Option<crate::explain::Explanation> {
        let (id, attrs) = self.database.region_entry(region)?;
        let mut explanation = self.selector.explain(attrs, binding);
        let key = CacheKey::new(
            id,
            DeviceId::FLEET,
            OWN_POLICY,
            self.calib_epoch(),
            attrs,
            binding,
        );
        explanation.cached = self.cache.shard(&key).lru.lock().contains(&key);
        Some(explanation)
    }

    /// Cache statistics so far, aggregated over every shard. Hit and miss
    /// tallies are shard-local atomics summed without taking any lock; each
    /// shard's mutex is held briefly, one at a time, only to read its
    /// occupancy and eviction count.
    pub fn stats(&self) -> DecisionCacheStats {
        let mut stats = DecisionCacheStats {
            hits: 0,
            misses: 0,
            len: 0,
            capacity: 0,
            evictions: 0,
            shards: self.cache.shards.len(),
        };
        for shard in self.cache.shards.iter() {
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
            let lru = shard.lru.lock();
            stats.len += lru.map.len();
            stats.capacity += lru.capacity;
            stats.evictions += lru.evictions;
        }
        stats
    }

    /// Publishes the current cache statistics as gauges in the process-wide
    /// metrics registry: the aggregates under
    /// `hetsel.core.cache.{hits,misses,len,capacity,evictions,shards}` plus
    /// per-shard occupancy under
    /// `hetsel.core.cache.shard.<i>.{hits,misses,len,evictions}`, so a
    /// metrics snapshot taken by a harness reflects this engine — shard
    /// balance included — without holding a reference to it. Counter values
    /// saturate at `i64::MAX` instead of wrapping negative.
    pub fn publish_stats(&self) -> DecisionCacheStats {
        let stats = self.stats();
        let registry = hetsel_obs::registry();
        registry
            .gauge("hetsel.core.cache.hits")
            .set(saturating_i64(stats.hits));
        registry
            .gauge("hetsel.core.cache.misses")
            .set(saturating_i64(stats.misses));
        registry
            .gauge("hetsel.core.cache.len")
            .set(saturating_i64(stats.len as u64));
        registry
            .gauge("hetsel.core.cache.capacity")
            .set(saturating_i64(stats.capacity as u64));
        registry
            .gauge("hetsel.core.cache.evictions")
            .set(saturating_i64(stats.evictions));
        registry
            .gauge("hetsel.core.cache.shards")
            .set(saturating_i64(stats.shards as u64));
        for (i, shard) in self.cache.shards.iter().enumerate() {
            let (len, evictions) = {
                let lru = shard.lru.lock();
                (lru.map.len() as u64, lru.evictions)
            };
            for (leaf, value) in [
                ("hits", shard.hits.load(Ordering::Relaxed)),
                ("misses", shard.misses.load(Ordering::Relaxed)),
                ("len", len),
                ("evictions", evictions),
            ] {
                registry
                    .gauge(&hetsel_obs::metrics::shard_metric_name(
                        "hetsel.core.cache.shard",
                        i,
                        leaf,
                    ))
                    .set(saturating_i64(value));
            }
        }
        stats
    }
}

/// Narrows a counter value into a gauge without wrapping: values above
/// `i64::MAX` clamp to `i64::MAX` instead of going negative.
fn saturating_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_polybench::{find_kernel, Dataset};

    fn selector() -> Selector {
        Selector::new(Platform::power9_v100())
    }

    #[test]
    fn always_policies_ignore_models() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Test);
        let s = selector().with_policy(Policy::AlwaysHost);
        assert_eq!(s.decide(&k, &b).device, Device::Host);
        let s = selector().with_policy(Policy::AlwaysOffload);
        assert_eq!(s.decide(&k, &b).device, Device::Gpu);
    }

    #[test]
    fn model_driven_produces_predictions() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let d = selector().decide(&k, &binding(Dataset::Benchmark));
        assert!(d.predicted_cpu_s.unwrap() > 0.0);
        assert!(d.predicted_gpu_s.unwrap() > 0.0);
        assert!(d.predicted_speedup().unwrap() > 0.0);
    }

    #[test]
    fn unresolved_binding_falls_back_to_offload() {
        let (k, _) = find_kernel("gemm").unwrap();
        let d = selector().decide(&k, &Binding::new());
        assert_eq!(d.device, Device::Gpu);
        assert!(d.predicted_speedup().is_none());
    }

    #[test]
    fn evaluation_bookkeeping() {
        let (k, binding) = find_kernel("2dconv").unwrap();
        let e = selector().evaluate(&k, &binding(Dataset::Test)).unwrap();
        assert!(e.achieved_s() >= e.oracle_s());
        let m = e.measured;
        assert_eq!(m.on(m.best_device()), m.cpu_s.min(m.gpu_s));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        assert!((geomean([8.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn model_driven_never_worse_than_worst_policy_on_gemm() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Benchmark);
        let s = selector();
        let e = s.evaluate(&k, &b).unwrap();
        let worst = e.measured.cpu_s.max(e.measured.gpu_s);
        assert!(e.achieved_s() <= worst);
    }

    #[test]
    fn geomean_skips_degenerate_values() {
        assert!((geomean([4.0, 0.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([4.0, -3.0, f64::NAN, 1.0, f64::INFINITY]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean([0.0, -1.0, f64::NAN]), 1.0);
    }

    #[test]
    fn errors_recorded_on_fallback() {
        let (k, _) = find_kernel("gemm").unwrap();
        let d = selector().decide(&k, &Binding::new());
        assert_eq!(d.device, Device::Gpu);
        assert!(matches!(
            d.cpu_error,
            Some(ModelError::UnboundSymbol { .. })
        ));
        assert!(matches!(
            d.gpu_error,
            Some(ModelError::UnboundSymbol { .. })
        ));
        // A resolvable binding records no errors.
        let (k, binding) = find_kernel("gemm").unwrap();
        let d = selector().decide(&k, &binding(Dataset::Test));
        assert_eq!(d.cpu_error, None);
        assert_eq!(d.gpu_error, None);
    }

    fn engine_with(kernels: &[Kernel], capacity: usize) -> DecisionEngine {
        DecisionEngine::with_capacity(selector(), kernels, capacity)
    }

    #[test]
    fn cached_decision_identical_to_uncached() {
        // Acceptance criterion: for every suite kernel, the engine's cached
        // answer equals both its own first (uncached) answer and what a cold
        // selector computes from scratch.
        let kernels: Vec<Kernel> = hetsel_polybench::suite()
            .into_iter()
            .flat_map(|b| b.kernels)
            .collect();
        let engine = DecisionEngine::new(selector(), &kernels);
        let s = selector();
        for bench in hetsel_polybench::suite() {
            for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
                let b = (bench.binding)(ds);
                for k in &bench.kernels {
                    let first = engine.decide(&k.name, &b).unwrap();
                    let second = engine.decide(&k.name, &b).unwrap();
                    assert_eq!(first, second, "{} {:?} cache changed answer", k.name, ds);
                    let cold = s.decide(k, &b);
                    assert_eq!(first, cold, "{} {:?} engine != cold path", k.name, ds);
                }
            }
        }
        let stats = engine.stats();
        assert!(
            stats.hits >= stats.misses,
            "every miss was re-hit: {stats:?}"
        );
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 16);
        let b = binding(Dataset::Test);
        assert!(engine.decide("gemm", &b).is_some());
        assert!(engine.decide("gemm", &b).is_some());
        assert!(engine.decide("gemm", &b).is_some());
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (2, 1, 1));
        // Unknown regions neither decide nor touch the counters.
        assert!(engine.decide("missing", &b).is_none());
        assert_eq!(engine.stats().hits, 2);
    }

    #[test]
    fn distinct_bindings_get_distinct_entries() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 16);
        let d_small = engine.decide("gemm", &binding(Dataset::Mini)).unwrap();
        let d_large = engine.decide("gemm", &binding(Dataset::Benchmark)).unwrap();
        assert_eq!(engine.stats().misses, 2);
        assert_ne!(d_small.predicted_cpu_s, d_large.predicted_cpu_s);
        // Irrelevant extra symbols do not split the cache key.
        let mut padded = binding(Dataset::Mini);
        padded = padded.with("unrelated", 999);
        let d_padded = engine.decide("gemm", &padded).unwrap();
        assert_eq!(d_padded, d_small);
        assert_eq!(engine.stats().misses, 2);
    }

    #[test]
    fn unresolved_bindings_cache_the_fallback() {
        let (k, _) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 16);
        let d1 = engine.decide("gemm", &Binding::new()).unwrap();
        let d2 = engine.decide("gemm", &Binding::new()).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(d1.device, Device::Gpu);
        assert!(d1.cpu_error.is_some());
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cache_stays_bounded_and_evicts_lru() {
        // Recency ordering is a per-stripe guarantee, so this test pins the
        // engine to a single shard to observe it end to end.
        let (k, binding) = find_kernel("gemm").unwrap();
        let sel = selector();
        let db = AttributeDatabase::compile(std::slice::from_ref(&k), &sel);
        let engine = DecisionEngine::from_database_sharded(sel, db, 2, 1);
        let mini = binding(Dataset::Mini);
        let test = binding(Dataset::Test);
        let bench = binding(Dataset::Benchmark);
        engine.decide("gemm", &mini).unwrap();
        engine.decide("gemm", &test).unwrap();
        // Touch `mini` so `test` is the least recently used...
        engine.decide("gemm", &mini).unwrap();
        // ...then overflow: `test` must be the one evicted.
        engine.decide("gemm", &bench).unwrap();
        assert_eq!(engine.stats().len, 2);
        engine.decide("gemm", &mini).unwrap();
        assert_eq!(engine.stats().misses, 3, "mini survived eviction");
        engine.decide("gemm", &test).unwrap();
        assert_eq!(engine.stats().misses, 4, "test was evicted");
        assert!(engine.stats().len <= 2);
        assert!(
            engine.stats().evictions >= 2,
            "both overflows evicted a live entry: {:?}",
            engine.stats()
        );
    }

    #[test]
    fn stats_publish_to_the_metrics_registry() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 16);
        let b = binding(Dataset::Test);
        engine.decide("gemm", &b).unwrap();
        engine.decide("gemm", &b).unwrap();
        let stats = engine.publish_stats();
        assert_eq!(stats.evictions, 0);
        let registry = hetsel_obs::registry();
        assert_eq!(
            registry.gauge("hetsel.core.cache.hits").get(),
            stats.hits as i64
        );
        assert_eq!(
            registry.gauge("hetsel.core.cache.misses").get(),
            stats.misses as i64
        );
        // (`hetsel.core.cache.len` is also written by concurrent tests'
        // engines, so only the single-writer gauges are asserted on.)
    }

    #[test]
    fn choose_device_is_nan_safe() {
        // Comparable predictions: strict win offloads, ties stay home.
        assert_eq!(choose_device(Some(2.0), Some(1.0)), Device::Gpu);
        assert_eq!(choose_device(Some(1.0), Some(2.0)), Device::Host);
        assert_eq!(choose_device(Some(1.0), Some(1.0)), Device::Host);
        // Any unusable side falls back to the compiler default (offload) —
        // including the NaN that `if g < c` used to send to the host.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            assert_eq!(choose_device(Some(bad), Some(1.0)), Device::Gpu, "{bad}");
            assert_eq!(choose_device(Some(1.0), Some(bad)), Device::Gpu, "{bad}");
            assert_eq!(choose_device(Some(bad), Some(bad)), Device::Gpu, "{bad}");
        }
        assert_eq!(choose_device(None, Some(1.0)), Device::Gpu);
        assert_eq!(choose_device(Some(1.0), None), Device::Gpu);
        assert_eq!(choose_device(None, None), Device::Gpu);
    }

    #[test]
    fn non_finite_predictions_are_recorded_model_failures() {
        let s = selector();
        // A NaN GPU prediction must not silently select the host: it is a
        // model failure, recorded, with the compiler-default fallback.
        let d = s.decide_from_outcomes("r", Some(Ok(1.0)), &[Some(Ok(f64::NAN))]);
        assert_eq!(d.device, Device::Gpu);
        assert_eq!(d.predicted_gpu_s, None);
        assert!(matches!(
            d.gpu_error,
            Some(ModelError::NonFinitePrediction { .. })
        ));
        assert_eq!(d.predicted_cpu_s, Some(1.0));
        // Same for an infinite or negative CPU prediction.
        for bad in [f64::INFINITY, -2.5] {
            let d = s.decide_from_outcomes("r", Some(Ok(bad)), &[Some(Ok(1.0))]);
            assert_eq!(d.device, Device::Gpu, "{bad}");
            assert!(
                matches!(d.cpu_error, Some(ModelError::NonFinitePrediction { .. })),
                "{bad}"
            );
            assert!(d.predicted_speedup().is_none());
        }
        // Both sides poisoned: still the fallback, both reasons recorded.
        let d = s.decide_from_outcomes("r", Some(Ok(f64::NAN)), &[Some(Ok(f64::NEG_INFINITY))]);
        assert_eq!(d.device, Device::Gpu);
        assert!(d.cpu_error.is_some() && d.gpu_error.is_some());
    }

    #[test]
    fn choose_among_generalizes_the_pair_rule() {
        use DeviceChoice::{Accelerator, Host};
        // Host-only candidate set: the terminal fallback, unconditionally.
        assert_eq!(choose_among(Some(1.0), &[]), Host);
        assert_eq!(choose_among(None, &[]), Host);
        assert_eq!(choose_among(Some(f64::NAN), &[]), Host);
        // Argmin across accelerators, host wins ties against the best.
        assert_eq!(
            choose_among(Some(3.0), &[Some(2.0), Some(1.0)]),
            Accelerator(1)
        );
        assert_eq!(choose_among(Some(1.0), &[Some(2.0), Some(1.0)]), Host);
        assert_eq!(choose_among(Some(0.5), &[Some(2.0), Some(1.0)]), Host);
        // Accelerator ties go to the lower (registration-order) index.
        assert_eq!(
            choose_among(Some(3.0), &[Some(1.0), Some(1.0)]),
            Accelerator(0)
        );
        // Unusable candidates are skipped, not compared.
        assert_eq!(
            choose_among(Some(3.0), &[Some(f64::NAN), Some(2.0)]),
            Accelerator(1)
        );
        assert_eq!(choose_among(Some(1.0), &[None, Some(2.0), None]), Host);
        // A single finite accelerator beats an unusable host.
        for bad in [None, Some(f64::NAN), Some(-1.0)] {
            assert_eq!(choose_among(bad, &[None, Some(2.0)]), Accelerator(1));
        }
        // Nothing usable anywhere: compiler default, the primary candidate.
        assert_eq!(
            choose_among(Some(f64::NAN), &[None, Some(f64::INFINITY)]),
            Accelerator(0)
        );
    }

    #[test]
    fn decisions_carry_the_fleet_identity() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Benchmark);
        let s = selector();
        let d = s.decide(&k, &b);
        assert_eq!(d.device_name.as_ref(), d.device.name());
        assert_eq!(d.device_id, s.fleet().device_id_of(&d.device_name).unwrap());
        // The label is the fleet's interned allocation, not a copy.
        assert!(Arc::ptr_eq(
            s.fleet().label_arc(d.device_id).unwrap(),
            &d.device_name
        ));
    }

    #[test]
    fn multi_accelerator_fleet_picks_the_argmin() {
        let s = selector();
        let fleet = Fleet::pair_labeled(&Platform::power9_v100(), "a")
            .with_accelerator_from("b", &Platform::power9_v100());
        let s = s.with_fleet(fleet);
        // `b` strictly fastest → chosen, with its id and label.
        let d = s.decide_from_outcomes("r", Some(Ok(3.0)), &[Some(Ok(2.0)), Some(Ok(1.0))]);
        assert_eq!(d.device, Device::Gpu);
        assert_eq!(d.device_id, DeviceId(2));
        assert_eq!(&*d.device_name, "b");
        assert_eq!(d.predicted_gpu_s, Some(1.0));
        // Host tie against the best accelerator → host; the representative
        // GPU evidence is the best accelerator it beat.
        let d = s.decide_from_outcomes("r", Some(Ok(1.0)), &[Some(Ok(2.0)), Some(Ok(1.0))]);
        assert_eq!((d.device, d.device_id), (Device::Host, DeviceId::HOST));
        assert_eq!(&*d.device_name, "host");
        assert_eq!(d.predicted_gpu_s, Some(1.0));
        // Nothing usable → compiler default: the primary accelerator, with
        // its failure recorded.
        let d = s.decide_from_outcomes("r", Some(Ok(f64::NAN)), &[Some(Ok(f64::NAN)), None]);
        assert_eq!((d.device, d.device_id), (Device::Gpu, DeviceId(1)));
        assert_eq!(&*d.device_name, "a");
        assert!(d.gpu_error.is_some());
    }

    #[test]
    fn host_only_fleet_never_offloads() {
        let s = selector().with_fleet(Fleet::host_only());
        let d = s.decide_from_outcomes("r", Some(Ok(f64::NAN)), &[]);
        assert_eq!((d.device, d.device_id), (Device::Host, DeviceId::HOST));
        assert!(d.predicted_gpu_s.is_none() && d.gpu_error.is_none());
        // Even under AlwaysOffload there is nowhere to offload to.
        let s = s.with_policy(Policy::AlwaysOffload);
        let (k, binding) = find_kernel("gemm").unwrap();
        let d = s.decide(&k, &binding(Dataset::Test));
        assert_eq!(d.device, Device::Host);
    }

    #[test]
    fn decide_for_restricts_the_candidate_set() {
        let kernels: Vec<Kernel> = vec![find_kernel("gemm").unwrap().0];
        let fleet = Fleet::pair_labeled(&Platform::power9_v100(), "v100")
            .with_accelerator_from("k80", &Platform::power8_k80());
        let sel = Selector::new(Platform::power9_v100()).with_fleet(fleet);
        let engine = DecisionEngine::new(sel, &kernels);
        let (_, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Benchmark);
        let full = engine.decide("gemm", &b).unwrap();
        // Restricting to the primary accelerator is the classic pair.
        let primary = engine.decide_for("gemm", &b, DeviceId(1)).unwrap();
        assert_eq!(&*primary.device_name, full.device_name.as_ref());
        // A host-scoped decision cannot offload.
        let host = engine.decide_for("gemm", &b, DeviceId::HOST).unwrap();
        assert_eq!(host.device, Device::Host);
        assert!(host.predicted_cpu_s.is_some());
        // The k80 scope carries the true fleet identity.
        let k80 = engine.decide_for("gemm", &b, DeviceId(2)).unwrap();
        if k80.device == Device::Gpu {
            assert_eq!((&*k80.device_name, k80.device_id), ("k80", DeviceId(2)));
        }
        // Scoped and whole-fleet decisions are cached under distinct keys.
        let stats = engine.stats();
        assert_eq!(stats.misses, 4, "{stats:?}");
        assert_eq!(engine.decide_for("gemm", &b, DeviceId(2)).unwrap(), k80);
        assert_eq!(engine.stats().hits, 1);
        // Unregistered ids refuse rather than guess.
        assert!(engine.decide_for("gemm", &b, DeviceId(9)).is_none());
    }

    #[test]
    fn shard_capacities_sum_to_the_requested_capacity() {
        for capacity in [1, 2, 3, 7, 16, 100, 1000, 1024] {
            for shards in [1, 2, 3, 5, 8, 16, 64] {
                let cache = ShardedCache::new(capacity, shards);
                assert!(cache.shards.len().is_power_of_two());
                assert!(cache.shards.len() <= capacity.max(1));
                let total: usize = cache.shards.iter().map(|s| s.lru.lock().capacity).sum();
                assert_eq!(
                    total, capacity,
                    "capacity {capacity} over {shards} shards inflated to {total}"
                );
                assert!(cache.shards.iter().all(|s| s.lru.lock().capacity >= 1));
            }
        }
    }

    #[test]
    fn sharded_engine_reports_shard_count_and_stays_bounded() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 8);
        let stats = engine.stats();
        assert_eq!(stats.shards, 8, "8 entries cap the stripes at 8");
        assert_eq!(stats.capacity, 8);
        // Thrash with far more distinct bindings than capacity.
        let mut base = binding(Dataset::Mini);
        for n in 1..200 {
            base.set("n", n);
            engine.decide("gemm", &base).unwrap();
        }
        let stats = engine.stats();
        assert!(stats.len <= stats.capacity, "{stats:?}");
        assert_eq!(stats.hits + stats.misses, 199, "{stats:?}");
    }

    #[test]
    fn decide_batch_matches_one_by_one_decides() {
        let kernels: Vec<Kernel> = hetsel_polybench::suite()
            .into_iter()
            .flat_map(|b| b.kernels)
            .collect();
        let batch_engine = DecisionEngine::new(selector(), &kernels);
        let solo_engine = DecisionEngine::new(selector(), &kernels);
        let mut requests: Vec<(String, Binding)> = Vec::new();
        for bench in hetsel_polybench::suite() {
            for ds in [Dataset::Mini, Dataset::Benchmark] {
                for k in &bench.kernels {
                    requests.push((k.name.clone(), (bench.binding)(ds)));
                }
            }
        }
        // Unknown regions produce `None` slots without disturbing others;
        // a duplicate of the first request exercises intra-batch reuse.
        requests.push(("no-such-region".to_string(), Binding::new()));
        requests.push(requests[0].clone());
        let built: Vec<DecisionRequest> = requests
            .iter()
            .map(|(r, b)| DecisionRequest::new(r.clone(), b.clone()))
            .collect();
        let batched = batch_engine.decide_batch(&built);
        assert_eq!(batched.len(), requests.len());
        for (i, (region, b)) in requests.iter().enumerate() {
            let solo = solo_engine.decide(region, b);
            assert_eq!(batched[i], solo, "slot {i} ({region}) diverged");
        }
        // Identical traffic, identical accounting.
        let (bs, ss) = (batch_engine.stats(), solo_engine.stats());
        assert_eq!((bs.hits, bs.misses), (ss.hits, ss.misses));
        let decided = batched.iter().filter(|d| d.is_some()).count() as u64;
        assert_eq!(bs.hits + bs.misses, decided);
        // A second identical batch is all hits.
        let again = batch_engine.decide_batch(&built);
        assert_eq!(again, batched);
        assert_eq!(batch_engine.stats().misses, bs.misses);
    }

    #[test]
    fn saturating_i64_clamps_instead_of_wrapping() {
        assert_eq!(saturating_i64(0), 0);
        assert_eq!(saturating_i64(42), 42);
        assert_eq!(saturating_i64(i64::MAX as u64), i64::MAX);
        assert_eq!(saturating_i64(i64::MAX as u64 + 1), i64::MAX);
        assert_eq!(saturating_i64(u64::MAX), i64::MAX);
    }

    #[test]
    fn cache_queue_compaction_keeps_hits_working() {
        // Hammer a single entry far past the compaction threshold; the
        // entry must remain a hit throughout and the cache stay bounded.
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 2);
        let b = binding(Dataset::Test);
        for _ in 0..500 {
            assert!(engine.decide("gemm", &b).is_some());
        }
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (499, 1, 1));
    }

    #[test]
    fn plain_requests_match_decide_exactly() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 16);
        let b = binding(Dataset::Test);
        let request = DecisionRequest::new("gemm", b.clone());
        let via_request = engine.decide_request(&request).unwrap();
        let via_decide = engine.decide("gemm", &b).unwrap();
        assert_eq!(via_request, via_decide);
        // The plain request went through the cache like any decide call.
        assert_eq!(engine.stats().hits, 1);
        // Unknown regions refuse, deadline or not.
        assert!(engine
            .decide_request(&DecisionRequest::new("missing", b.clone()))
            .is_none());
        assert!(engine
            .decide_request(&DecisionRequest::new("missing", b).with_deadline(Duration::ZERO))
            .is_none());
    }

    #[test]
    fn policy_overrides_use_a_scoped_cache_partition() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 16);
        let b = binding(Dataset::Test);
        let request = DecisionRequest::new("gemm", b.clone()).with_policy(Policy::AlwaysHost);
        let host = engine.decide_request(&request).unwrap();
        assert_eq!(
            (host.device, host.policy),
            (Device::Host, Policy::AlwaysHost)
        );
        // The override populated its own policy partition...
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 1, 1));
        // ...which a repeat of the same override answers warm...
        let again = engine.decide_request(&request).unwrap();
        assert_eq!(again, host);
        assert_eq!(engine.stats().hits, 1);
        // ...while the engine's own policy still evaluates independently:
        // the foreign-policy entry can never answer a plain decide.
        let own = engine.decide("gemm", &b).unwrap();
        assert_eq!(own.policy, Policy::ModelDriven);
        let stats = engine.stats();
        assert_eq!((stats.misses, stats.len), (2, 2));
    }

    #[test]
    fn deadline_missed_computation_is_cached_for_retry() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 16);
        let b = binding(Dataset::Test);
        // One nanosecond is a budget no cold evaluation can meet, but —
        // unlike zero — it does not short-circuit evaluation, so the
        // computed decision exists by the time the deadline check fires.
        let tight = DecisionRequest::new("gemm", b.clone()).with_deadline(Duration::from_nanos(1));
        let degraded = engine.decide_request(&tight).unwrap();
        assert_eq!(degraded.cpu_error, Some(ModelError::DeadlineExceeded));
        // The blown budget did not waste the evaluation: the computed
        // decision went into the cache before the reply degraded, so the
        // retry (with or without a deadline) is a warm hit.
        assert_eq!((engine.stats().misses, engine.stats().len), (1, 1));
        let retried = engine
            .decide_request(&DecisionRequest::new("gemm", b.clone()))
            .unwrap();
        assert_eq!(engine.stats().hits, 1);
        assert_eq!(retried.policy, Policy::ModelDriven);
        assert_eq!(retried.cpu_error, None);
        // Same story for the override branch: tight-deadline override
        // misses its budget, but warms its policy partition for the retry.
        let tight_host = DecisionRequest::new("gemm", b)
            .with_policy(Policy::AlwaysHost)
            .with_deadline(Duration::from_nanos(1));
        let degraded = engine.decide_request(&tight_host).unwrap();
        assert_eq!(degraded.cpu_error, Some(ModelError::DeadlineExceeded));
        assert_eq!((engine.stats().misses, engine.stats().len), (2, 2));
        let retried = engine
            .decide_request(&tight_host.clone().with_deadline(Duration::from_secs(3600)))
            .unwrap();
        assert_eq!(engine.stats().hits, 2);
        assert_eq!(retried.device, Device::Host);
        assert_eq!(retried.policy, Policy::AlwaysHost);
    }

    #[test]
    fn overridden_decisions_reach_the_flight_recorder() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 16);
        let b = binding(Dataset::Test);
        hetsel_obs::set_flight_recording(true);
        engine
            .decide_request(&DecisionRequest::new("gemm", b).with_policy(Policy::AlwaysOffload))
            .unwrap();
        hetsel_obs::set_flight_recording(false);
        // The override went through the recorded path: at least one
        // Decide event for this region sits in the (process-global) ring.
        // Other tests may be recording concurrently, so scan rather than
        // count.
        let seen = hetsel_obs::flight_recorder()
            .snapshot()
            .iter()
            .any(|ev| ev.kind == hetsel_obs::EventKind::Decide && ev.region_str() == "gemm");
        assert!(seen, "override emitted no flight-recorder Decide event");
    }

    #[test]
    fn zero_deadline_degrades_to_the_compiler_default() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let engine = engine_with(std::slice::from_ref(&k), 16);
        let b = binding(Dataset::Test);
        let request = DecisionRequest::new("gemm", b).with_deadline(Duration::ZERO);
        let d = engine.decide_request(&request).unwrap();
        assert_eq!(d.device, Device::Gpu);
        assert_eq!(d.policy, Policy::AlwaysOffload);
        assert_eq!(d.cpu_error, Some(ModelError::DeadlineExceeded));
        assert_eq!(d.gpu_error, Some(ModelError::DeadlineExceeded));
        assert_eq!(d.predicted_speedup(), None);
        // Degraded decisions are not cached.
        assert_eq!(engine.stats().len, 0);
        // A generous deadline decides normally.
        let request = request.with_deadline(Duration::from_secs(3600));
        let d = engine.decide_request(&request).unwrap();
        assert_eq!(d.policy, Policy::ModelDriven);
    }

    #[test]
    fn decision_request_serde_round_trips() {
        let request = DecisionRequest::new("gemm", Binding::new().with("ni", 1024).with("nj", 32))
            .with_policy(Policy::AlwaysHost)
            .with_deadline(Duration::from_nanos(1_234_567));
        let json = serde_json::to_string(&request).unwrap();
        let back: DecisionRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request);
        // Optional fields serialize as null and round-trip to None.
        let plain = DecisionRequest::new("atax", Binding::new());
        let json = serde_json::to_string(&plain).unwrap();
        assert!(json.contains("\"policy_override\":null"), "{json}");
        let back: DecisionRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plain);
        // Unknown policies are rejected, not silently dropped.
        let bad = json.replace("null", "\"turbo_mode\"");
        assert!(serde_json::from_str::<DecisionRequest>(&bad).is_err());
    }

    #[test]
    fn policy_and_device_names_round_trip() {
        for p in [
            Policy::AlwaysHost,
            Policy::AlwaysOffload,
            Policy::ModelDriven,
        ] {
            assert_eq!(Policy::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(Policy::parse("nonsense"), None);
        assert_eq!(Device::Host.name(), "host");
        assert_eq!(Device::Gpu.name(), "gpu");
        assert_eq!(Device::Host.other(), Device::Gpu);
        assert_eq!(Device::Gpu.other(), Device::Host);
    }
}
