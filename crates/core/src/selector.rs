//! The runtime target selector.
//!
//! The execution-time half of the framework (paper Figure 2 and Section
//! IV.D): on reaching a target region, the augmented OpenMP runtime pulls
//! the region's static attributes from the database, binds the runtime
//! values, evaluates both analytical models, and launches whichever version
//! — host or GPU — the models predict faster. "Because of the analytical
//! nature of the model, generating a prediction for either target is
//! equivalent to solving an equation, making decision time negligible."

use crate::attributes::RegionAttributes;
use crate::platform::Platform;
use hetsel_models::{CoalescingMode, TripMode};
use hetsel_ir::{Binding, Kernel};

/// An execution target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// The host CPU (fallback path).
    Host,
    /// The GPU accelerator.
    Gpu,
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Host => write!(f, "host"),
            Device::Gpu => write!(f, "gpu"),
        }
    }
}

/// A selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Never offload (OpenMP with offloading disabled).
    AlwaysHost,
    /// The compiler's default: always offload target regions.
    AlwaysOffload,
    /// The paper's contribution: offload iff the models predict a win.
    ModelDriven,
}

/// One offloading decision with the model evidence behind it.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Region name.
    pub region: String,
    /// Chosen target.
    pub device: Device,
    /// Policy that made the choice.
    pub policy: Policy,
    /// Predicted host time, seconds (None under `Always*` policies).
    pub predicted_cpu_s: Option<f64>,
    /// Predicted GPU time, seconds.
    pub predicted_gpu_s: Option<f64>,
}

impl Decision {
    /// Predicted offloading speedup (host time / GPU time); `None` when a
    /// prediction is missing.
    pub fn predicted_speedup(&self) -> Option<f64> {
        match (self.predicted_cpu_s, self.predicted_gpu_s) {
            (Some(c), Some(g)) if g > 0.0 => Some(c / g),
            _ => None,
        }
    }
}

/// Ground-truth ("measured") times from the timing simulators.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Host execution time, seconds.
    pub cpu_s: f64,
    /// GPU execution time (kernel + transfers), seconds.
    pub gpu_s: f64,
}

impl Measured {
    /// True offloading speedup.
    pub fn speedup(&self) -> f64 {
        self.cpu_s / self.gpu_s
    }

    /// Time under a given device choice.
    pub fn on(&self, d: Device) -> f64 {
        match d {
            Device::Host => self.cpu_s,
            Device::Gpu => self.gpu_s,
        }
    }

    /// The oracle's choice.
    pub fn best_device(&self) -> Device {
        if self.cpu_s <= self.gpu_s {
            Device::Host
        } else {
            Device::Gpu
        }
    }
}

/// A decision together with its measured consequences.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The decision taken.
    pub decision: Decision,
    /// Simulated ground truth.
    pub measured: Measured,
}

impl Evaluation {
    /// Wall time actually obtained under the decision.
    pub fn achieved_s(&self) -> f64 {
        self.measured.on(self.decision.device)
    }

    /// Wall time the oracle would have obtained.
    pub fn oracle_s(&self) -> f64 {
        self.measured.on(self.measured.best_device())
    }

    /// True iff the decision matched the oracle.
    pub fn correct(&self) -> bool {
        self.decision.device == self.measured.best_device()
    }
}

/// The selector: a platform plus policy and model-abstraction knobs.
#[derive(Debug, Clone)]
pub struct Selector {
    /// The platform the decision is made for.
    pub platform: Platform,
    /// Selection policy.
    pub policy: Policy,
    /// Trip-count abstraction used by the models.
    pub trip_mode: TripMode,
    /// Coalescing analysis mode used by the GPU model.
    pub coal_mode: CoalescingMode,
}

impl Selector {
    /// A model-driven selector with the paper's hybrid configuration
    /// (runtime trip counts, IPDA coalescing).
    pub fn new(platform: Platform) -> Selector {
        Selector {
            platform,
            policy: Policy::ModelDriven,
            trip_mode: TripMode::Runtime,
            coal_mode: CoalescingMode::Ipda,
        }
    }

    /// Builder-style policy override.
    pub fn with_policy(mut self, policy: Policy) -> Selector {
        self.policy = policy;
        self
    }

    /// Builder-style trip-mode override.
    pub fn with_trip_mode(mut self, mode: TripMode) -> Selector {
        self.trip_mode = mode;
        self
    }

    /// Builder-style coalescing-mode override.
    pub fn with_coalescing(mut self, mode: CoalescingMode) -> Selector {
        self.coal_mode = mode;
        self
    }

    /// Evaluates both models for a region under a runtime binding.
    pub fn predict(&self, kernel: &Kernel, binding: &Binding) -> (Option<f64>, Option<f64>) {
        let cpu = hetsel_models::cpu::predict(
            kernel,
            binding,
            &self.platform.cpu_model,
            self.platform.host_threads,
            self.trip_mode,
        )
        .map(|p| p.seconds);
        let gpu = hetsel_models::gpu::predict(
            kernel,
            binding,
            &self.platform.gpu_model,
            self.trip_mode,
            self.coal_mode,
        )
        .map(|p| p.seconds);
        (cpu, gpu)
    }

    /// Makes the offloading decision for a region under a runtime binding.
    ///
    /// Under `ModelDriven`, missing predictions (unresolved bindings) fall
    /// back to the compiler default of offloading.
    pub fn select(&self, region: &RegionAttributes, binding: &Binding) -> Decision {
        self.select_kernel(&region.kernel, binding)
    }

    /// As [`Selector::select`] for a bare kernel.
    pub fn select_kernel(&self, kernel: &Kernel, binding: &Binding) -> Decision {
        let (cpu, gpu) = match self.policy {
            Policy::ModelDriven => self.predict(kernel, binding),
            _ => (None, None),
        };
        let device = match self.policy {
            Policy::AlwaysHost => Device::Host,
            Policy::AlwaysOffload => Device::Gpu,
            Policy::ModelDriven => match (cpu, gpu) {
                (Some(c), Some(g)) => {
                    if g < c {
                        Device::Gpu
                    } else {
                        Device::Host
                    }
                }
                _ => Device::Gpu, // compiler default when unresolvable
            },
        };
        Decision {
            region: kernel.name.clone(),
            device,
            policy: self.policy,
            predicted_cpu_s: cpu,
            predicted_gpu_s: gpu,
        }
    }

    /// Runs the timing simulators for both targets ("measures" the region).
    pub fn measure(&self, kernel: &Kernel, binding: &Binding) -> Option<Measured> {
        let cpu = hetsel_cpusim::simulate(
            kernel,
            binding,
            &self.platform.cpu,
            self.platform.host_threads,
        )?;
        let gpu = hetsel_gpusim::simulate(kernel, binding, &self.platform.gpu)?;
        Some(Measured {
            cpu_s: cpu.total_s(),
            gpu_s: gpu.total_s(),
        })
    }

    /// Decides and measures: the full model-vs-actual record for one region.
    pub fn evaluate(&self, kernel: &Kernel, binding: &Binding) -> Option<Evaluation> {
        let decision = self.select_kernel(kernel, binding);
        let measured = self.measure(kernel, binding)?;
        Some(Evaluation { decision, measured })
    }
}

/// Geometric mean of a sequence of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        debug_assert!(v > 0.0);
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_polybench::{find_kernel, Dataset};

    fn selector() -> Selector {
        Selector::new(Platform::power9_v100())
    }

    #[test]
    fn always_policies_ignore_models() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Test);
        let s = selector().with_policy(Policy::AlwaysHost);
        assert_eq!(s.select_kernel(&k, &b).device, Device::Host);
        let s = selector().with_policy(Policy::AlwaysOffload);
        assert_eq!(s.select_kernel(&k, &b).device, Device::Gpu);
    }

    #[test]
    fn model_driven_produces_predictions() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let d = selector().select_kernel(&k, &binding(Dataset::Benchmark));
        assert!(d.predicted_cpu_s.unwrap() > 0.0);
        assert!(d.predicted_gpu_s.unwrap() > 0.0);
        assert!(d.predicted_speedup().unwrap() > 0.0);
    }

    #[test]
    fn unresolved_binding_falls_back_to_offload() {
        let (k, _) = find_kernel("gemm").unwrap();
        let d = selector().select_kernel(&k, &Binding::new());
        assert_eq!(d.device, Device::Gpu);
        assert!(d.predicted_speedup().is_none());
    }

    #[test]
    fn evaluation_bookkeeping() {
        let (k, binding) = find_kernel("2dconv").unwrap();
        let e = selector().evaluate(&k, &binding(Dataset::Test)).unwrap();
        assert!(e.achieved_s() >= e.oracle_s());
        let m = e.measured;
        assert_eq!(m.on(m.best_device()), m.cpu_s.min(m.gpu_s));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        assert!((geomean([8.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn model_driven_never_worse_than_worst_policy_on_gemm() {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Benchmark);
        let s = selector();
        let e = s.evaluate(&k, &b).unwrap();
        let worst = e.measured.cpu_s.max(e.measured.gpu_s);
        assert!(e.achieved_s() <= worst);
    }
}
