//! Online calibration of the analytical models: streaming bias
//! corrections fitted from observed runtimes and blended back into
//! predictions.
//!
//! The paper's MWP/CWP-style models are static, but the runtime has ground
//! truth flowing through it — every dispatch completion and every
//! [`AdaptiveSelector`](crate::AdaptiveSelector) measurement compares a
//! prediction against what the device actually did. This module closes
//! that loop analytically (the cross-machine black-box calibration idea of
//! Stevens & Klöckner, without the ML stack): a [`Calibrator`] keeps one
//! streaming cell per `(region, device, binding-class)` accumulating the
//! **log-ratio** `ln(observed / predicted)` with Welford's algorithm, and
//! predictions are corrected multiplicatively as
//!
//! ```text
//! corrected = raw * exp(bias)        bias = published mean log-ratio
//! ```
//!
//! Three properties make the correction safe to leave on:
//!
//! * **Cold regions are untouched, bit for bit.** Until a cell has
//!   [`CalibratorConfig::min_samples`] observations *and* its mean moves
//!   past [`CalibratorConfig::epoch_threshold`], nothing is published:
//!   the correction factor is exactly `exp(0) = 1.0` and `raw * 1.0`
//!   is bit-identical to `raw`.
//! * **Corrections are clamped.** A published bias never exceeds
//!   [`CalibratorConfig::max_abs_log`] in magnitude, so one wild
//!   observation cannot swing verdicts by orders of magnitude.
//! * **Cache invalidation is epoch-based.** Decisions are memoized; the
//!   calibrator bumps a global [`Calibrator::epoch`] only when a cell
//!   *publishes* a moved bias, not on every sample, so cached verdicts are
//!   invalidated exactly when a correction that could change them appears.
//!
//! The correction is applied (or merely shadowed) according to
//! [`CalibrationMode`] on the [`Selector`](crate::Selector); the feeding
//! happens in [`Dispatcher`](crate::Dispatcher) completions and
//! [`AdaptiveSelector::run_and_learn`](crate::AdaptiveSelector::run_and_learn).
//! Locks follow the observatory's poison-tolerance idiom: a panicked
//! holder can leave at worst a stale value behind, never a torn one, and
//! calibration keeps answering after an observer thread dies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use hetsel_ir::{Binding, Snap};

/// Whether and how calibration participates in decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CalibrationMode {
    /// Calibration is disconnected: no corrections are computed, decisions
    /// carry no calibration tag, and the engine is bit-for-bit the
    /// uncalibrated engine. The default.
    #[default]
    Off,
    /// Corrections are computed and recorded on every decision (tag,
    /// metrics, would-flip flags) but **never alter the verdict or the
    /// predictions** — the dry-run mode for building confidence in the
    /// corrections before trusting them.
    Shadow,
    /// Corrections are blended into the predictions before the comparison:
    /// `corrected = raw * exp(bias)`, confidence-gated and clamped.
    Active,
}

impl CalibrationMode {
    /// Stable lowercase name (`"off"` / `"shadow"` / `"active"`), the
    /// spelling used in explain JSON.
    pub fn name(self) -> &'static str {
        match self {
            CalibrationMode::Off => "off",
            CalibrationMode::Shadow => "shadow",
            CalibrationMode::Active => "active",
        }
    }

    /// Inverse of [`CalibrationMode::name`].
    pub fn parse(s: &str) -> Option<CalibrationMode> {
        match s {
            "off" => Some(CalibrationMode::Off),
            "shadow" => Some(CalibrationMode::Shadow),
            "active" => Some(CalibrationMode::Active),
            _ => None,
        }
    }
}

impl std::fmt::Display for CalibrationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs of a [`Calibrator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratorConfig {
    /// Observations a cell needs before its bias may publish (the
    /// confidence gate). Below this, the correction factor is exactly 1.0.
    pub min_samples: u64,
    /// Clamp on the published bias magnitude, in log space: the correction
    /// factor stays within `[exp(-max_abs_log), exp(max_abs_log)]`.
    pub max_abs_log: f64,
    /// A cell republishes (and bumps the global epoch) only when its mean
    /// log-ratio has moved more than this far from the published value —
    /// epoch-based invalidation instead of per-sample churn.
    pub epoch_threshold: f64,
    /// Bound on the number of cells; the least-recently-touched cell is
    /// spilled to make room.
    pub capacity: usize,
}

impl Default for CalibratorConfig {
    /// Conservative production defaults: three samples before any
    /// correction, corrections clamped to a factor of 4 either way, and
    /// republish when the bias moves by more than 0.1 in log space
    /// (~10.5%).
    fn default() -> CalibratorConfig {
        CalibratorConfig {
            min_samples: 3,
            max_abs_log: 4.0f64.ln(),
            epoch_threshold: 0.1,
            capacity: 4096,
        }
    }
}

impl CalibratorConfig {
    /// The greedy configuration profile feedback uses
    /// ([`AdaptiveSelector`](crate::AdaptiveSelector)): trust a single
    /// observation fully — no sample gate, no clamp, publish on any
    /// movement. After one measurement the corrected prediction *is* the
    /// observation, which reproduces (and generalises) the old
    /// history-beats-model behaviour.
    pub fn greedy() -> CalibratorConfig {
        CalibratorConfig {
            min_samples: 1,
            max_abs_log: f64::INFINITY,
            epoch_threshold: 0.0,
            capacity: 4096,
        }
    }
}

/// A coarse equivalence class of runtime bindings, so corrections learned
/// in one problem-size regime do not leak into a very different one.
///
/// The class is the saturating sum of the bit lengths of the region's
/// *required* parameter values (an unbound required parameter contributes
/// a large sentinel), capped at `u8::MAX`. Bindings that agree on every
/// required parameter always share a class; doubling a problem size moves
/// the class by one per doubled parameter, so each class spans roughly one
/// binary order of magnitude per parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BindingClass(pub u8);

impl BindingClass {
    /// Contribution of an unbound required parameter: large enough that a
    /// fully-unbound binding never shares a class with a small bound one.
    const UNBOUND_BITS: u32 = 63;

    /// The class of `binding` over an explicit parameter list (the
    /// region's required parameters — symbols outside the list cannot
    /// perturb the class, mirroring the decision cache's key discipline).
    pub fn over<'a>(params: impl IntoIterator<Item = &'a str>, binding: &Binding) -> BindingClass {
        let mut bits: u32 = 0;
        for p in params {
            bits = bits.saturating_add(match binding.get(p) {
                Some(v) => 64 - v.unsigned_abs().max(1).leading_zeros(),
                None => BindingClass::UNBOUND_BITS,
            });
        }
        BindingClass(bits.min(u32::from(u8::MAX)) as u8)
    }

    /// The class over every symbol the binding carries — the fallback for
    /// callers without a parameter list.
    pub fn of(binding: &Binding) -> BindingClass {
        BindingClass::over(binding.iter().map(|(name, _)| name), binding)
    }
}

impl std::fmt::Display for BindingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The calibration evidence a [`Decision`](crate::Decision) carries when
/// it was taken with calibration in Shadow or Active mode (`None` in Off
/// mode — an Off-mode decision is bit-identical to the uncalibrated
/// engine's).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationTag {
    /// Binding class the corrections were looked up under.
    pub class: BindingClass,
    /// The host model's raw (uncorrected) prediction, seconds.
    pub raw_cpu_s: Option<f64>,
    /// The representative accelerator's raw prediction, seconds.
    pub raw_gpu_s: Option<f64>,
    /// Multiplicative correction applied (Active) or that would apply
    /// (Shadow) to the host prediction; exactly 1.0 while the cell is cold.
    pub cpu_factor: f64,
    /// Correction for the representative accelerator's prediction.
    pub gpu_factor: f64,
    /// True iff the mode was Active and at least one consulted correction
    /// differed from 1.0 — i.e. the decision's predictions really are
    /// corrected values. The serve wire protocol echoes this as
    /// `calibrated`.
    pub applied: bool,
    /// True iff the corrected comparison picks a different device than the
    /// raw one would (in Shadow mode: *would* pick — the verdict itself is
    /// still the raw one).
    pub flipped: bool,
}

/// Welford accumulator over the log-ratio, plus the published bias and the
/// LRU touch stamp, for one cell.
#[derive(Debug, Default, Clone, Copy)]
struct CalibCell {
    count: u64,
    mean: f64,
    m2: f64,
    /// The bias currently blended into predictions (0.0 = none). Updated
    /// only when the confidence gate passes *and* the mean has moved past
    /// the epoch threshold, in the same step that bumps the global epoch —
    /// so a cached decision keyed on an epoch always replays the factor
    /// that was live when it was computed.
    published: f64,
    /// Monotonic touch stamp for LRU spill.
    last_used: u64,
}

/// A point-in-time reading of one calibration cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibRow {
    /// Region (kernel) name.
    pub region: String,
    /// Device label (the fleet's interned spelling).
    pub device: String,
    /// Binding class.
    pub class: BindingClass,
    /// Observations folded in.
    pub samples: u64,
    /// Welford mean of `ln(observed / predicted)`.
    pub mean_log_ratio: f64,
    /// Sample variance of the log-ratio (0 while `samples < 2`).
    pub log_ratio_variance: f64,
    /// The bias currently published into predictions (0 = none yet).
    pub published_log: f64,
    /// The multiplicative factor live predictions are corrected by:
    /// `exp(clamp(published_log))`.
    pub factor: f64,
}

impl serde::Serialize for CalibRow {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        Value::Object(vec![
            ("region".to_string(), Value::Str(self.region.clone())),
            ("device".to_string(), Value::Str(self.device.clone())),
            ("class".to_string(), Value::UInt(u64::from(self.class.0))),
            ("samples".to_string(), Value::UInt(self.samples)),
            (
                "mean_log_ratio".to_string(),
                Value::Float(self.mean_log_ratio),
            ),
            (
                "log_ratio_variance".to_string(),
                Value::Float(self.log_ratio_variance),
            ),
            (
                "published_log".to_string(),
                Value::Float(self.published_log),
            ),
            ("factor".to_string(), Value::Float(self.factor)),
        ])
    }
}

impl serde::Deserialize for CalibRow {
    fn from_value(v: &serde::Value) -> Result<CalibRow, serde::Error> {
        use serde::Value;
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("missing field {name}")))
        };
        let text = |name: &str| match field(name)? {
            Value::Str(s) => Ok(s.clone()),
            other => Err(serde::Error::msg(format!("bad {name}: {other:?}"))),
        };
        let class = match field("class")? {
            Value::UInt(n) if *n <= u64::from(u8::MAX) => BindingClass(*n as u8),
            Value::Int(n) if (0..=i64::from(u8::MAX)).contains(n) => BindingClass(*n as u8),
            other => return Err(serde::Error::msg(format!("bad class: {other:?}"))),
        };
        Ok(CalibRow {
            region: text("region")?,
            device: text("device")?,
            class,
            samples: <u64 as serde::Deserialize>::from_value(field("samples")?)?,
            mean_log_ratio: <f64 as serde::Deserialize>::from_value(field("mean_log_ratio")?)?,
            log_ratio_variance: <f64 as serde::Deserialize>::from_value(field(
                "log_ratio_variance",
            )?)?,
            published_log: <f64 as serde::Deserialize>::from_value(field("published_log")?)?,
            factor: <f64 as serde::Deserialize>::from_value(field("factor")?)?,
        })
    }
}

/// `(region, device-label, class)` — the calibrator's cell key.
type CellKey = (String, String, BindingClass);

/// The streaming per-`(region, device, binding-class)` correction table.
///
/// See the module docs for the model. Thread-safe; all locks recover from
/// poisoning.
#[derive(Debug)]
pub struct Calibrator {
    config: CalibratorConfig,
    /// Bumped exactly when a cell publishes a moved bias. Cache keys mix
    /// this in (Active mode), so a bump lazily invalidates every cached
    /// decision without touching the cache.
    epoch: AtomicU64,
    /// Monotonic clock for LRU touch stamps.
    tick: AtomicU64,
    cells: RwLock<HashMap<CellKey, Arc<Mutex<CalibCell>>>>,
}

impl Default for Calibrator {
    fn default() -> Calibrator {
        Calibrator::new(CalibratorConfig::default())
    }
}

impl Calibrator {
    /// A calibrator with the given configuration and no cells.
    pub fn new(config: CalibratorConfig) -> Calibrator {
        Calibrator {
            config: CalibratorConfig {
                capacity: config.capacity.max(1),
                ..config
            },
            epoch: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            cells: RwLock::new(HashMap::new()),
        }
    }

    /// The configuration this calibrator runs with.
    pub fn config(&self) -> &CalibratorConfig {
        &self.config
    }

    /// The current calibration epoch: incremented exactly when some cell
    /// publishes a moved bias. One relaxed atomic load — cheap enough for
    /// the cache-hit decide path.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Finds or creates a cell, spilling the least-recently-touched one
    /// when the table is full.
    fn cell(&self, region: &str, device: &str, class: BindingClass) -> Arc<Mutex<CalibCell>> {
        let key = (region.to_string(), device.to_string(), class);
        if let Some(found) = self
            .cells
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Arc::clone(found);
        }
        let mut w = self.cells.write().unwrap_or_else(PoisonError::into_inner);
        if !w.contains_key(&key) && w.len() >= self.config.capacity {
            // LRU spill: evict the least-recently-touched cell. An O(n)
            // scan, but only on insert-at-capacity, never on the decide
            // path.
            let victim = w
                .iter()
                .min_by_key(|(_, cell)| {
                    cell.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .last_used
                })
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                w.remove(&victim);
                hetsel_obs::static_counter!("hetsel.core.calib.evicted").inc();
            }
        }
        Arc::clone(w.entry(key).or_default())
    }

    /// Folds one observation in: the *raw* (uncorrected) runtime the model
    /// predicted for `device` on `region` in this binding class, against
    /// what was actually observed. Degenerate samples (non-finite or
    /// non-positive on either side) are rejected. Publishes the cell's
    /// bias — and bumps the global epoch — when the confidence gate passes
    /// and the mean has moved past the epoch threshold.
    pub fn observe(
        &self,
        region: &str,
        device: &str,
        class: BindingClass,
        predicted_s: f64,
        observed_s: f64,
    ) {
        if !(predicted_s.is_finite() && observed_s.is_finite())
            || predicted_s <= 0.0
            || observed_s <= 0.0
        {
            hetsel_obs::static_counter!("hetsel.core.calib.rejected").inc();
            return;
        }
        hetsel_obs::static_counter!("hetsel.core.calib.observe").inc();
        let tick = self.next_tick();
        let cell = self.cell(region, device, class);
        let mut c = cell.lock().unwrap_or_else(PoisonError::into_inner);
        let x = (observed_s / predicted_s).ln();
        c.count += 1;
        let delta = x - c.mean;
        c.mean += delta / c.count as f64;
        c.m2 += delta * (x - c.mean);
        c.last_used = tick;
        if c.count >= self.config.min_samples
            && (c.mean - c.published).abs() > self.config.epoch_threshold
        {
            c.published = c.mean;
            drop(c);
            let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
            hetsel_obs::static_counter!("hetsel.core.calib.publish").inc();
            hetsel_obs::static_gauge!("hetsel.core.calib.epoch")
                .set(i64::try_from(epoch).unwrap_or(i64::MAX));
        }
    }

    /// The multiplicative correction factor for a cell:
    /// `exp(clamp(published_bias))`, or **exactly** `1.0` while nothing is
    /// published (cold cell, gated cell, or no cell at all) — the
    /// bit-for-bit identity guarantee for cold regions.
    pub fn factor(&self, region: &str, device: &str, class: BindingClass) -> f64 {
        let cell = {
            let cells = self.cells.read().unwrap_or_else(PoisonError::into_inner);
            match cells.get(&(region.to_string(), device.to_string(), class)) {
                Some(cell) => Arc::clone(cell),
                None => return 1.0,
            }
        };
        let tick = self.next_tick();
        let mut c = cell.lock().unwrap_or_else(PoisonError::into_inner);
        c.last_used = tick;
        if c.published == 0.0 {
            return 1.0;
        }
        c.published
            .clamp(-self.config.max_abs_log, self.config.max_abs_log)
            .exp()
    }

    /// The current reading for one cell, if it has any samples.
    pub fn lookup(&self, region: &str, device: &str, class: BindingClass) -> Option<CalibRow> {
        let cell = {
            let cells = self.cells.read().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(cells.get(&(region.to_string(), device.to_string(), class))?)
        };
        let c = *cell.lock().unwrap_or_else(PoisonError::into_inner);
        (c.count > 0).then(|| self.row(region, device, class, &c))
    }

    /// Every non-empty cell, sorted by `(region, device, class)`.
    pub fn snapshot(&self) -> Vec<CalibRow> {
        let cells = self.cells.read().unwrap_or_else(PoisonError::into_inner);
        let mut rows: Vec<CalibRow> = cells
            .iter()
            .filter_map(|((region, device, class), cell)| {
                let c = *cell.lock().unwrap_or_else(PoisonError::into_inner);
                (c.count > 0).then(|| self.row(region, device, *class, &c))
            })
            .collect();
        drop(cells);
        rows.sort_by(|a, b| (&a.region, &a.device, a.class).cmp(&(&b.region, &b.device, b.class)));
        rows
    }

    fn row(&self, region: &str, device: &str, class: BindingClass, c: &CalibCell) -> CalibRow {
        CalibRow {
            region: region.to_string(),
            device: device.to_string(),
            class,
            samples: c.count,
            mean_log_ratio: c.mean,
            log_ratio_variance: if c.count > 1 {
                c.m2 / (c.count - 1) as f64
            } else {
                0.0
            },
            published_log: c.published,
            factor: if c.published == 0.0 {
                1.0
            } else {
                c.published
                    .clamp(-self.config.max_abs_log, self.config.max_abs_log)
                    .exp()
            },
        }
    }

    /// Number of cells with at least one sample.
    pub fn len(&self) -> usize {
        self.cells
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|cell| cell.lock().unwrap_or_else(PoisonError::into_inner).count > 0)
            .count()
    }

    /// True when no cell has samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Restores previously snapshotted cells — the persistence path, the
    /// analogue of `ProfileHistory::import` for corrections. Each row
    /// (typically from [`Calibrator::snapshot`], possibly serialized in
    /// between) is reconstructed as a full Welford cell (count, mean,
    /// variance, published bias), replacing any existing cell under the
    /// same key; rows without samples are skipped. If any absorbed row
    /// carries a published bias the global epoch is bumped once, so every
    /// cached verdict that predates the restore is lazily invalidated.
    pub fn absorb(&self, rows: &[CalibRow]) {
        let mut published_any = false;
        for row in rows {
            if row.samples == 0 {
                continue;
            }
            let tick = self.next_tick();
            let cell = self.cell(&row.region, &row.device, row.class);
            let mut c = cell.lock().unwrap_or_else(PoisonError::into_inner);
            c.count = row.samples;
            c.mean = row.mean_log_ratio;
            c.m2 = row.log_ratio_variance * (row.samples.saturating_sub(1)) as f64;
            c.published = row.published_log;
            c.last_used = tick;
            published_any |= row.published_log != 0.0;
        }
        if published_any {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every cell and rewinds nothing else: the epoch keeps
    /// monotonically increasing, so cached decisions from before the reset
    /// stay valid exactly until a new publication occurs.
    pub fn reset(&self) {
        self.cells
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Serializes the current correction table into the same versioned
    /// container the attribute-database snapshots use (payload kind 2, no
    /// fleet fingerprint — corrections are portable across fleets; the
    /// region/device keys simply fail to match foreign cells).
    pub fn dump<W: std::io::Write>(&self, w: &mut W) -> Result<(), crate::snapshot::SnapshotError> {
        let rows = self.snapshot();
        let mut sw = hetsel_ir::SnapWriter::new();
        rows.snap(&mut sw);
        let container = hetsel_ir::snap::seal(hetsel_ir::snap::PAYLOAD_CALIBRATION, 0, sw.bytes());
        w.write_all(&container)?;
        Ok(())
    }

    /// Decodes the rows of a container written by [`Calibrator::dump`],
    /// without touching any table.
    pub fn load_rows<R: std::io::Read>(
        r: &mut R,
    ) -> Result<Vec<CalibRow>, crate::snapshot::SnapshotError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let payload = hetsel_ir::snap::open(&bytes, hetsel_ir::snap::PAYLOAD_CALIBRATION, None)?;
        let mut rd = hetsel_ir::SnapReader::new(payload);
        let rows = Vec::<CalibRow>::unsnap(&mut rd)?;
        rd.finish()?;
        Ok(rows)
    }

    /// [`Calibrator::load_rows`] followed by [`Calibrator::absorb`]: the
    /// one-call restore path. Returns how many rows were absorbed.
    pub fn restore<R: std::io::Read>(
        &self,
        r: &mut R,
    ) -> Result<usize, crate::snapshot::SnapshotError> {
        let rows = Calibrator::load_rows(r)?;
        self.absorb(&rows);
        Ok(rows.len())
    }
}

hetsel_ir::snap_newtype!(BindingClass);

hetsel_ir::snap_struct!(CalibRow {
    region,
    device,
    class,
    samples,
    mean_log_ratio,
    log_ratio_variance,
    published_log,
    factor,
});

#[cfg(test)]
mod tests {
    use super::*;

    const CLASS: BindingClass = BindingClass(7);

    #[test]
    fn cold_cells_are_exactly_identity() {
        let cal = Calibrator::default();
        assert_eq!(cal.factor("gemm", "gpu", CLASS), 1.0);
        // Below the sample gate: still exactly 1.0, and no epoch bump.
        cal.observe("gemm", "gpu", CLASS, 1.0, 2.0);
        cal.observe("gemm", "gpu", CLASS, 1.0, 2.0);
        assert_eq!(cal.factor("gemm", "gpu", CLASS), 1.0);
        assert_eq!(cal.epoch(), 0);
        let raw = 3.25e-4f64;
        assert_eq!(raw * cal.factor("gemm", "gpu", CLASS), raw, "bit-for-bit");
    }

    #[test]
    fn constant_bias_converges_and_publishes_once() {
        let cal = Calibrator::default();
        // The model under-predicts by exactly 2x, every time.
        for _ in 0..8 {
            cal.observe("conv", "gpu", CLASS, 0.5, 1.0);
        }
        assert_eq!(cal.epoch(), 1, "constant bias republishes exactly once");
        let f = cal.factor("conv", "gpu", CLASS);
        assert!((f - 2.0).abs() < 1e-12, "factor converges to 2.0, got {f}");
        let row = cal.lookup("conv", "gpu", CLASS).unwrap();
        assert_eq!(row.samples, 8);
        assert!((row.mean_log_ratio - 2.0f64.ln()).abs() < 1e-12);
        assert!(row.log_ratio_variance.abs() < 1e-18, "constant series");
    }

    #[test]
    fn corrections_are_clamped() {
        let cal = Calibrator::new(CalibratorConfig {
            min_samples: 1,
            max_abs_log: 2.0f64.ln(),
            epoch_threshold: 0.0,
            capacity: 16,
        });
        // A 1000x surprise publishes, but the factor is clamped to 2x.
        cal.observe("r", "d", CLASS, 1e-3, 1.0);
        let f = cal.factor("r", "d", CLASS);
        assert!((f - 2.0).abs() < 1e-12, "clamped to 2.0, got {f}");
        cal.observe("r2", "d", CLASS, 1.0, 1e-3);
        let f2 = cal.factor("r2", "d", CLASS);
        assert!((f2 - 0.5).abs() < 1e-12, "clamped to 0.5, got {f2}");
    }

    #[test]
    fn degenerate_observations_are_rejected() {
        let cal = Calibrator::new(CalibratorConfig::greedy());
        cal.observe("r", "d", CLASS, f64::NAN, 1.0);
        cal.observe("r", "d", CLASS, 1.0, f64::INFINITY);
        cal.observe("r", "d", CLASS, 0.0, 1.0);
        cal.observe("r", "d", CLASS, 1.0, -1.0);
        assert!(cal.is_empty());
        assert_eq!(cal.epoch(), 0);
        assert_eq!(cal.factor("r", "d", CLASS), 1.0);
    }

    #[test]
    fn epoch_bumps_only_past_the_threshold() {
        let cal = Calibrator::new(CalibratorConfig {
            min_samples: 1,
            max_abs_log: 10.0,
            epoch_threshold: 0.1,
            capacity: 16,
        });
        // ln(1.05) ≈ 0.049 < 0.1: gate passes but the move is too small.
        cal.observe("r", "d", CLASS, 1.0, 1.05);
        assert_eq!(cal.epoch(), 0);
        assert_eq!(cal.factor("r", "d", CLASS), 1.0);
        // A second, larger surprise pushes the mean past the threshold.
        cal.observe("r", "d", CLASS, 1.0, 2.0);
        assert_eq!(cal.epoch(), 1);
        assert!(cal.factor("r", "d", CLASS) > 1.0);
        // More identical samples drift the mean but not past 0.1 again.
        let f = cal.factor("r", "d", CLASS);
        cal.observe("r", "d", CLASS, 1.0, (f * 1.0f64).max(1e-12));
        assert_eq!(cal.epoch(), 1, "no republish within the threshold");
    }

    #[test]
    fn capacity_spills_the_least_recently_touched_cell() {
        let cal = Calibrator::new(CalibratorConfig {
            min_samples: 1,
            max_abs_log: 10.0,
            epoch_threshold: 0.0,
            capacity: 2,
        });
        cal.observe("a", "d", CLASS, 1.0, 2.0);
        cal.observe("b", "d", CLASS, 1.0, 2.0);
        // Touch `a` so `b` is the LRU victim.
        assert!((cal.factor("a", "d", CLASS) - 2.0).abs() < 1e-12);
        cal.observe("c", "d", CLASS, 1.0, 2.0);
        assert!(cal.lookup("a", "d", CLASS).is_some(), "recently touched");
        assert!(cal.lookup("b", "d", CLASS).is_none(), "LRU spilled");
        assert!(cal.lookup("c", "d", CLASS).is_some(), "new cell");
    }

    #[test]
    fn classes_partition_the_corrections() {
        let cal = Calibrator::new(CalibratorConfig::greedy());
        cal.observe("r", "d", BindingClass(10), 1.0, 4.0);
        assert!((cal.factor("r", "d", BindingClass(10)) - 4.0).abs() < 1e-12);
        assert_eq!(
            cal.factor("r", "d", BindingClass(20)),
            1.0,
            "other class cold"
        );
    }

    #[test]
    fn binding_class_tracks_problem_size_and_ignores_irrelevant_symbols() {
        let small = Binding::new().with("n", 64).with("m", 64);
        let big = Binding::new().with("n", 4096).with("m", 4096);
        let params = ["n", "m"];
        let cs = BindingClass::over(params.iter().copied(), &small);
        let cb = BindingClass::over(params.iter().copied(), &big);
        assert_ne!(cs, cb, "orders of magnitude separate classes");
        // Irrelevant symbols cannot perturb the class.
        let padded = small.clone().with("other", 1 << 40);
        assert_eq!(cs, BindingClass::over(params.iter().copied(), &padded));
        // Neighbouring sizes share a class (regime, not exact size).
        let near = Binding::new().with("n", 65).with("m", 64);
        assert_eq!(cs, BindingClass::over(params.iter().copied(), &near));
        // Unbound required parameters are their own regime.
        let unbound = Binding::new().with("n", 64);
        assert_ne!(cs, BindingClass::over(params.iter().copied(), &unbound));
    }

    #[test]
    fn poisoned_calibrator_still_observes_and_answers() {
        let cal = Calibrator::new(CalibratorConfig::greedy());
        cal.observe("gemm", "gpu", CLASS, 1.0, 2.0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cell = cal.cell("gemm", "gpu", CLASS);
            let _guard = cell.lock().unwrap();
            panic!("holder dies");
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cal.cells.write().unwrap();
            panic!("holder dies");
        }));
        assert!(cal.cells.is_poisoned());
        cal.observe("gemm", "gpu", CLASS, 1.0, 2.0);
        assert_eq!(cal.lookup("gemm", "gpu", CLASS).unwrap().samples, 2);
        assert!((cal.factor("gemm", "gpu", CLASS) - 2.0).abs() < 1e-12);
        cal.reset();
        assert!(cal.is_empty());
    }

    #[test]
    fn snapshot_absorbs_back_into_a_fresh_calibrator() {
        let cal = Calibrator::default();
        for _ in 0..5 {
            cal.observe("conv", "gpu", CLASS, 0.5, 1.0);
            cal.observe("conv", "host", CLASS, 1.0, 0.25);
        }
        let json = serde_json::to_string(&cal.snapshot()).unwrap();
        let rows: Vec<CalibRow> = serde_json::from_str(&json).unwrap();
        let restored = Calibrator::default();
        restored.absorb(&rows);
        assert!(restored.epoch() > 0, "published rows invalidate caches");
        for (device, expect) in [("gpu", 2.0), ("host", 0.25)] {
            let f = restored.factor("conv", device, CLASS);
            assert!(
                (f - expect).abs() < 1e-9,
                "{device}: restored factor {f}, want {expect}"
            );
            assert_eq!(restored.lookup("conv", device, CLASS).unwrap().samples, 5);
        }
    }

    #[test]
    fn snapshot_sorts_and_reports_factors() {
        let cal = Calibrator::new(CalibratorConfig::greedy());
        cal.observe("mvt", "host", BindingClass(3), 2.0, 1.0);
        cal.observe("atax", "v100", BindingClass(5), 1.0, 2.0);
        let rows = cal.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].region, "atax");
        assert!(rows[0].factor > 1.0, "under-prediction corrects upward");
        assert!(rows[1].factor < 1.0, "over-prediction corrects downward");
        assert_eq!(cal.len(), 2);
    }
}
