//! The device fleet: the N-device generalization of the host/GPU pair.
//!
//! The paper frames selection as a binary CPU-vs-GPU choice, but its own
//! two machines (POWER8 + K80 over PCIe 3.0, POWER9 + V100 over NVLink 2.0)
//! already show that "the GPU" is a *family* of accelerators with different
//! transfer links and occupancy limits. A [`Fleet`] registers one host and
//! any number of accelerators, each carrying its own simulator descriptor
//! and analytical model parameters, under an **interned label** — the single
//! source every metric name, decision, and explain document derives the
//! device's name from, so a renamed device can never desynchronize metrics
//! from reports.
//!
//! Identity is a dense [`DeviceId`]: the host is always id 0 and the i-th
//! registered accelerator is id `i + 1`. The decision cache keys on
//! `(RegionId, DeviceId, resolved params)`; the dispatcher keeps one
//! circuit breaker, one fault plan and one capacity gate per id.
//!
//! The safety net of the whole refactor is the **restriction equivalence**:
//! a fleet restricted to exactly one accelerator ([`Fleet::restrict`])
//! reproduces the classic two-device pair bit for bit (property-tested in
//! `crates/core/tests/fleet_equivalence.rs`).

use std::sync::Arc;

use crate::platform::Platform;
use crate::selector::Device;
use hetsel_gpusim::GpuDescriptor;
use hetsel_models::GpuModelParams;

/// Dense identifier of one device in a [`Fleet`]: the host is always
/// [`DeviceId::HOST`] (0) and the i-th registered accelerator is `i + 1`.
/// The decision cache keys on this `u16` (alongside the region id and the
/// resolved parameter values), so a per-device cache probe neither hashes
/// nor clones a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u16);

impl DeviceId {
    /// The host's id in every fleet.
    pub const HOST: DeviceId = DeviceId(0);

    /// Cache-scope sentinel for decisions taken against the *whole* fleet
    /// (the default `decide` path), distinguishing them from per-device
    /// scoped decisions (`decide_for`) in the shared cache.
    pub(crate) const FLEET: DeviceId = DeviceId(u16::MAX);

    /// True iff this id names the host.
    pub fn is_host(self) -> bool {
        self == DeviceId::HOST
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What class of device a [`DeviceId`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// The host CPU — present in every fleet, the terminal fallback.
    Host,
    /// An offload accelerator.
    Accelerator,
}

impl DeviceKind {
    /// Stable lowercase name (`"host"` / `"accelerator"`), the `kind`
    /// string in explain documents.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Host => "host",
            DeviceKind::Accelerator => "accelerator",
        }
    }

    /// The kind-level [`Device`] view (every accelerator is `Device::Gpu`).
    pub fn device(self) -> Device {
        match self {
            DeviceKind::Host => Device::Host,
            DeviceKind::Accelerator => Device::Gpu,
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One registered accelerator: the interned label plus everything the
/// framework needs to model and simulate it.
#[derive(Debug, Clone)]
pub struct AcceleratorDevice {
    /// Interned device label (`Arc` so decisions, metrics and reports share
    /// one allocation — and one spelling).
    label: Arc<str>,
    /// Hardware model for the timing simulator (ground truth).
    pub descriptor: GpuDescriptor,
    /// Analytical GPU model parameters (paper Table III) for this device.
    pub model: GpuModelParams,
    /// Dispatch capacity: how many requests may be in flight on this device
    /// at once before admission spills to a peer. `u32::MAX` = unbounded.
    pub capacity: u32,
}

impl AcceleratorDevice {
    /// The interned label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The shared label allocation (what decisions clone).
    pub fn label_arc(&self) -> &Arc<str> {
        &self.label
    }
}

/// A registered set of execution targets: one host plus zero or more
/// accelerators, each under a unique interned label.
///
/// Build the classic two-device pair from a [`Platform`] with
/// [`Fleet::pair`], or grow a multi-accelerator fleet with
/// [`Fleet::with_accelerator_from`]:
///
/// ```
/// use hetsel_core::{Fleet, Platform};
///
/// let fleet = Fleet::pair_labeled(&Platform::power9_v100(), "v100")
///     .with_accelerator_from("k80", &Platform::power8_k80());
/// assert_eq!(fleet.len(), 3); // host + v100 + k80
/// assert_eq!(fleet.restrict("k80").unwrap().accelerator_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Fleet {
    host_label: Arc<str>,
    host_capacity: u32,
    accelerators: Vec<AcceleratorDevice>,
}

impl Fleet {
    /// A fleet with only the host registered.
    pub fn host_only() -> Fleet {
        Fleet {
            host_label: Arc::from("host"),
            host_capacity: u32::MAX,
            accelerators: Vec::new(),
        }
    }

    /// The classic pair: the platform's host plus its accelerator under the
    /// label `"gpu"` — the fleet [`crate::Selector::new`] installs, which
    /// reproduces every historical metric name and document byte for byte.
    pub fn pair(platform: &Platform) -> Fleet {
        Fleet::pair_labeled(platform, "gpu")
    }

    /// As [`Fleet::pair`] with an explicit accelerator label.
    pub fn pair_labeled(platform: &Platform, label: &str) -> Fleet {
        Fleet::host_only().with_accelerator(label, platform.gpu.clone(), platform.gpu_model.clone())
    }

    /// Builder: registers one more accelerator. Labels are the fleet's
    /// identity and must be unique; re-registering a label panics.
    pub fn with_accelerator(
        mut self,
        label: &str,
        descriptor: GpuDescriptor,
        model: GpuModelParams,
    ) -> Fleet {
        assert!(
            self.device_id_of(label).is_none(),
            "device label `{label}` is already registered in this fleet"
        );
        assert!(
            self.accelerators.len() < usize::from(u16::MAX - 1),
            "fleet is full"
        );
        self.accelerators.push(AcceleratorDevice {
            label: Arc::from(label),
            descriptor,
            model,
            capacity: u32::MAX,
        });
        self
    }

    /// Builder: registers `platform`'s accelerator (descriptor and model
    /// parameters) under `label`.
    pub fn with_accelerator_from(self, label: &str, platform: &Platform) -> Fleet {
        self.with_accelerator(label, platform.gpu.clone(), platform.gpu_model.clone())
    }

    /// Builder: sets the dispatch capacity of the device labelled `label`.
    /// Panics on an unknown label (a capacity on a device that does not
    /// exist is a configuration bug, not a runtime condition).
    pub fn with_capacity(mut self, label: &str, capacity: u32) -> Fleet {
        if &*self.host_label == label {
            self.host_capacity = capacity;
            return self;
        }
        match self.accelerators.iter_mut().find(|a| &*a.label == label) {
            Some(accel) => accel.capacity = capacity,
            None => panic!("device label `{label}` is not registered in this fleet"),
        }
        self
    }

    /// The restriction safety net: the same host plus exactly the one
    /// accelerator labelled `label` (id renumbered to 1), or `None` for an
    /// unknown label. A restricted fleet is the classic pair again and
    /// reproduces single-pair decisions bit for bit.
    pub fn restrict(&self, label: &str) -> Option<Fleet> {
        let accel = self.accelerators.iter().find(|a| &*a.label == label)?;
        Some(Fleet {
            host_label: self.host_label.clone(),
            host_capacity: self.host_capacity,
            accelerators: vec![accel.clone()],
        })
    }

    /// Total registered devices (host included), always ≥ 1.
    pub fn len(&self) -> usize {
        1 + self.accelerators.len()
    }

    /// False — every fleet has at least the host. (Provided because `len`
    /// exists.)
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of registered accelerators.
    pub fn accelerator_count(&self) -> usize {
        self.accelerators.len()
    }

    /// The registered accelerators, in id order (accelerator `i` is device
    /// id `i + 1`).
    pub fn accelerators(&self) -> &[AcceleratorDevice] {
        &self.accelerators
    }

    /// The host's interned label.
    pub fn host_label(&self) -> &str {
        &self.host_label
    }

    /// The host's shared label allocation.
    pub fn host_label_arc(&self) -> &Arc<str> {
        &self.host_label
    }

    /// The host's dispatch capacity.
    pub fn host_capacity(&self) -> u32 {
        self.host_capacity
    }

    /// The accelerator registered under `id`, if `id` names one.
    pub fn accelerator(&self, id: DeviceId) -> Option<&AcceleratorDevice> {
        self.accel_index(id).map(|i| &self.accelerators[i])
    }

    /// The zero-based accelerator index behind `id`, if `id` names one.
    pub fn accel_index(&self, id: DeviceId) -> Option<usize> {
        let idx = (id.0 as usize).checked_sub(1)?;
        (idx < self.accelerators.len()).then_some(idx)
    }

    /// The device id of accelerator index `index`.
    pub fn accel_id(&self, index: usize) -> Option<DeviceId> {
        (index < self.accelerators.len()).then(|| DeviceId((index + 1) as u16))
    }

    /// The primary accelerator (id 1) — the compiler-default offload
    /// target — or `None` for a host-only fleet.
    pub fn primary_accelerator(&self) -> Option<DeviceId> {
        self.accel_id(0)
    }

    /// What kind of device `id` names, or `None` for an unregistered id.
    pub fn kind(&self, id: DeviceId) -> Option<DeviceKind> {
        if id.is_host() {
            Some(DeviceKind::Host)
        } else {
            self.accel_index(id).map(|_| DeviceKind::Accelerator)
        }
    }

    /// The interned label of `id`, or `None` for an unregistered id.
    pub fn label(&self, id: DeviceId) -> Option<&str> {
        self.label_arc(id).map(|l| &**l)
    }

    /// The shared label allocation of `id`.
    pub fn label_arc(&self, id: DeviceId) -> Option<&Arc<str>> {
        if id.is_host() {
            Some(&self.host_label)
        } else {
            self.accelerator(id).map(|a| &a.label)
        }
    }

    /// The dispatch capacity of `id`, or `None` for an unregistered id.
    pub fn capacity(&self, id: DeviceId) -> Option<u32> {
        if id.is_host() {
            Some(self.host_capacity)
        } else {
            self.accelerator(id).map(|a| a.capacity)
        }
    }

    /// Resolves a label back to its device id.
    pub fn device_id_of(&self, label: &str) -> Option<DeviceId> {
        if &*self.host_label == label {
            return Some(DeviceId::HOST);
        }
        self.accelerators
            .iter()
            .position(|a| &*a.label == label)
            .and_then(|i| self.accel_id(i))
    }

    /// Every registered device id, host first then accelerators in id
    /// order.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.len()).map(|i| DeviceId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gpu_fleet() -> Fleet {
        Fleet::pair_labeled(&Platform::power8_k80(), "k80")
            .with_accelerator_from("v100", &Platform::power9_v100())
    }

    #[test]
    fn ids_are_dense_host_first() {
        let fleet = two_gpu_fleet();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.accelerator_count(), 2);
        assert_eq!(fleet.device_id_of("host"), Some(DeviceId::HOST));
        assert_eq!(fleet.device_id_of("k80"), Some(DeviceId(1)));
        assert_eq!(fleet.device_id_of("v100"), Some(DeviceId(2)));
        assert_eq!(fleet.device_id_of("missing"), None);
        assert_eq!(fleet.primary_accelerator(), Some(DeviceId(1)));
        let ids: Vec<DeviceId> = fleet.device_ids().collect();
        assert_eq!(ids, vec![DeviceId(0), DeviceId(1), DeviceId(2)]);
        assert_eq!(fleet.kind(DeviceId(0)), Some(DeviceKind::Host));
        assert_eq!(fleet.kind(DeviceId(2)), Some(DeviceKind::Accelerator));
        assert_eq!(fleet.kind(DeviceId(3)), None);
    }

    #[test]
    fn labels_are_interned_and_unique() {
        let fleet = two_gpu_fleet();
        // The label returned by lookup IS the registered allocation.
        let by_id = fleet.label_arc(DeviceId(2)).unwrap();
        let by_accel = fleet.accelerators()[1].label_arc();
        assert!(Arc::ptr_eq(by_id, by_accel));
        assert_eq!(fleet.label(DeviceId(1)), Some("k80"));
        assert_eq!(fleet.label(DeviceId::HOST), Some("host"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_labels_are_rejected() {
        let _ = two_gpu_fleet().with_accelerator_from("k80", &Platform::power8_k80());
    }

    #[test]
    fn restriction_keeps_one_accelerator() {
        let fleet = two_gpu_fleet().with_capacity("v100", 7);
        let restricted = fleet.restrict("v100").unwrap();
        assert_eq!(restricted.accelerator_count(), 1);
        assert_eq!(restricted.device_id_of("v100"), Some(DeviceId(1)));
        assert_eq!(restricted.capacity(DeviceId(1)), Some(7));
        assert_eq!(restricted.device_id_of("k80"), None);
        assert!(fleet.restrict("missing").is_none());
        // Restriction preserves the interned label allocation.
        assert!(Arc::ptr_eq(
            restricted.label_arc(DeviceId(1)).unwrap(),
            fleet.label_arc(DeviceId(2)).unwrap()
        ));
    }

    #[test]
    fn capacities_default_unbounded() {
        let fleet = two_gpu_fleet()
            .with_capacity("k80", 2)
            .with_capacity("host", 9);
        assert_eq!(fleet.capacity(DeviceId(1)), Some(2));
        assert_eq!(fleet.capacity(DeviceId(2)), Some(u32::MAX));
        assert_eq!(fleet.capacity(DeviceId::HOST), Some(9));
        assert_eq!(fleet.capacity(DeviceId(9)), None);
    }

    #[test]
    fn kind_maps_to_the_legacy_device_enum() {
        assert_eq!(DeviceKind::Host.device(), Device::Host);
        assert_eq!(DeviceKind::Accelerator.device(), Device::Gpu);
        assert_eq!(DeviceKind::Host.name(), "host");
        assert_eq!(DeviceKind::Accelerator.name(), "accelerator");
        assert!(DeviceId::HOST.is_host());
        assert!(!DeviceId(1).is_host());
    }
}
