//! Snapshot round-trip equivalence and corruption-fallback properties.
//!
//! The tentpole guarantee of the snapshot subsystem is *bit-for-bit
//! indistinguishability*: an engine warmed from a snapshot must take
//! exactly the decisions — and produce exactly the explain reports — of an
//! engine that compiled everything from IR, across every Polybench region,
//! both paper datasets, and every device of a three-accelerator fleet.
//! And every way a snapshot can be wrong (short read, flipped bit, stale
//! version, foreign fleet, wrong payload kind) must surface as its own
//! typed error followed by a clean recompile — never a panic, never a
//! silently different model.

use hetsel_core::{
    AttributeDatabase, DecisionEngine, DeviceId, Fleet, Platform, Selector, SnapshotError,
    DEFAULT_DECISION_CACHE,
};
use hetsel_ir::SnapError;
use hetsel_polybench::Dataset;

/// The three-accelerator fleet of the cross-generation experiment: the
/// paper's V100 machine plus a K80 and a P100 registered as peers.
fn fleet_selector() -> Selector {
    let host = Platform::power9_v100();
    let fleet = Fleet::pair_labeled(&host, "v100")
        .with_accelerator_from("k80", &Platform::power8_k80())
        .with_accelerator_from("p100", &Platform::power8_p100());
    Selector::new(host).with_fleet(fleet)
}

fn all_kernels() -> Vec<hetsel_ir::Kernel> {
    hetsel_polybench::all_kernels()
        .into_iter()
        .map(|(_, k, _)| k)
        .collect()
}

fn snapshot_bytes(db: &AttributeDatabase, selector: &Selector) -> Vec<u8> {
    let mut bytes = Vec::new();
    db.dump(selector, &mut bytes).expect("dump to memory");
    bytes
}

#[test]
fn decisions_and_explanations_are_bit_identical_across_reload() {
    let selector = fleet_selector();
    let kernels = all_kernels();
    let fresh_db = AttributeDatabase::compile(&kernels, &selector);
    let bytes = snapshot_bytes(&fresh_db, &selector);
    let loaded_db =
        AttributeDatabase::from_snapshot_bytes(&selector, &bytes).expect("valid snapshot loads");
    assert_eq!(loaded_db.len(), fresh_db.len());

    let fresh = DecisionEngine::from_database(selector.clone(), fresh_db, DEFAULT_DECISION_CACHE);
    let loaded = DecisionEngine::from_database(selector, loaded_db, DEFAULT_DECISION_CACHE);

    let devices = [DeviceId::HOST, DeviceId(1), DeviceId(2), DeviceId(3)];
    let mut regions = 0;
    for (_, kernel, binding) in hetsel_polybench::all_kernels() {
        regions += 1;
        for ds in [Dataset::Test, Dataset::Benchmark] {
            let b = binding(ds);
            let name = kernel.name.as_str();

            // The fleet-wide verdict.
            let a = fresh.decide(name, &b).expect("fresh decides");
            let z = loaded.decide(name, &b).expect("loaded decides");
            assert_eq!(a.device_id, z.device_id, "{name} {ds:?}");
            assert_eq!(
                a.predicted_cpu_s.map(f64::to_bits),
                z.predicted_cpu_s.map(f64::to_bits),
                "{name} {ds:?} cpu prediction"
            );
            assert_eq!(
                a.predicted_gpu_s.map(f64::to_bits),
                z.predicted_gpu_s.map(f64::to_bits),
                "{name} {ds:?} gpu prediction"
            );

            // Every per-device prediction, including both extra accelerators.
            for dev in devices {
                let da = fresh.decide_for(name, &b, dev);
                let dz = loaded.decide_for(name, &b, dev);
                match (da, dz) {
                    (Some(da), Some(dz)) => {
                        assert_eq!(
                            da.predicted_cpu_s.map(f64::to_bits),
                            dz.predicted_cpu_s.map(f64::to_bits),
                            "{name} {ds:?} {dev:?}"
                        );
                        assert_eq!(
                            da.predicted_gpu_s.map(f64::to_bits),
                            dz.predicted_gpu_s.map(f64::to_bits),
                            "{name} {ds:?} {dev:?}"
                        );
                    }
                    (None, None) => {}
                    (da, dz) => panic!("{name} {ds:?} {dev:?}: {da:?} vs {dz:?}"),
                }
            }

            // The full serialized explain report. Phase timings are wall
            // clock — the only legitimately nondeterministic field — so
            // they are normalized before the byte comparison.
            let ea = fresh.explain(name, &b).expect("fresh explains");
            let mut ez = loaded.explain(name, &b).expect("loaded explains");
            ez.timings = ea.timings.clone();
            assert_eq!(
                serde_json::to_string(&ea).unwrap(),
                serde_json::to_string(&ez).unwrap(),
                "{name} {ds:?} explain JSON"
            );
        }
    }
    assert_eq!(regions, 24, "the whole suite was exercised");
}

#[test]
fn truncated_snapshot_is_a_typed_truncation_error() {
    let selector = fleet_selector();
    let db = AttributeDatabase::compile(&hetsel_polybench::atax::kernels(), &selector);
    let bytes = snapshot_bytes(&db, &selector);
    for cut in [0, 4, 16, 30, bytes.len() / 2, bytes.len() - 1] {
        let err = AttributeDatabase::from_snapshot_bytes(&selector, &bytes[..cut])
            .expect_err("truncated container must not load");
        assert_eq!(
            err,
            SnapshotError::Format(SnapError::Truncated),
            "cut at {cut}"
        );
    }
}

#[test]
fn flipped_payload_byte_is_a_checksum_mismatch() {
    let selector = fleet_selector();
    let db = AttributeDatabase::compile(&hetsel_polybench::atax::kernels(), &selector);
    let mut bytes = snapshot_bytes(&db, &selector);
    let payload_mid = 31 + (bytes.len() - 31) / 2;
    bytes[payload_mid] ^= 0x40;
    let err = AttributeDatabase::from_snapshot_bytes(&selector, &bytes)
        .expect_err("corrupt payload must not load");
    assert!(
        matches!(
            err,
            SnapshotError::Format(SnapError::ChecksumMismatch { .. })
        ),
        "{err:?}"
    );
}

#[test]
fn stale_format_version_is_rejected_by_version_not_checksum() {
    let selector = fleet_selector();
    let db = AttributeDatabase::compile(&hetsel_polybench::atax::kernels(), &selector);
    let mut bytes = snapshot_bytes(&db, &selector);
    bytes[4] = 0x7f; // version u16 LE lives at offset 4
    let err = AttributeDatabase::from_snapshot_bytes(&selector, &bytes)
        .expect_err("stale version must not load");
    assert!(
        matches!(
            err,
            SnapshotError::Format(SnapError::UnsupportedVersion { .. })
        ),
        "{err:?}"
    );
}

#[test]
fn foreign_fleet_snapshot_is_a_fingerprint_mismatch() {
    let selector = fleet_selector();
    let kernels = hetsel_polybench::atax::kernels();
    let db = AttributeDatabase::compile(&kernels, &selector);
    let bytes = snapshot_bytes(&db, &selector);

    // Same suite, different fleet (no extra accelerators) — the snapshot
    // must be refused, not reinterpreted against the wrong models.
    let other = Selector::new(Platform::power9_v100());
    assert_ne!(other.model_fingerprint(), selector.model_fingerprint());
    let err = AttributeDatabase::from_snapshot_bytes(&other, &bytes)
        .expect_err("foreign-fleet snapshot must not load");
    assert!(
        matches!(
            err,
            SnapshotError::Format(SnapError::FingerprintMismatch { .. })
        ),
        "{err:?}"
    );

    // A differently-threaded host counts as a different configuration too.
    let rethreaded = Selector::new(Platform::power9_v100().with_threads(7));
    assert_ne!(rethreaded.model_fingerprint(), other.model_fingerprint());
}

#[test]
fn calibration_container_is_the_wrong_payload_kind_for_a_database() {
    let selector = fleet_selector();
    let cal = hetsel_core::Calibrator::default();
    let class = hetsel_core::BindingClass(12);
    for _ in 0..16 {
        cal.observe("gemm", "v100", class, 1.0, 2.0);
    }
    let mut calib_bytes = Vec::new();
    cal.dump(&mut calib_bytes).expect("calibrator dumps");

    let err = AttributeDatabase::from_snapshot_bytes(&selector, &calib_bytes)
        .expect_err("a calibration container is not an attribute database");
    assert!(
        matches!(
            err,
            SnapshotError::Format(SnapError::WrongPayloadKind {
                found: 2,
                expected: 1
            })
        ),
        "{err:?}"
    );
}

#[test]
fn calibration_rows_round_trip_through_the_shared_container() {
    let cal = hetsel_core::Calibrator::default();
    let class = hetsel_core::BindingClass(9);
    for i in 0..32 {
        cal.observe("gemm", "v100", class, 1.0, 1.5 + f64::from(i) * 0.01);
        cal.observe("atax.k1", "k80", class, 2.0, 1.0);
    }
    let rows = cal.snapshot();
    assert!(!rows.is_empty());

    let mut bytes = Vec::new();
    cal.dump(&mut bytes).expect("dump");
    let restored = hetsel_core::Calibrator::default();
    let n = restored
        .restore(&mut std::io::Cursor::new(&bytes))
        .expect("restore");
    assert_eq!(n, rows.len());
    assert_eq!(restored.snapshot(), rows);

    // Corruption fallback holds for the calibration kind too.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    let err = hetsel_core::Calibrator::load_rows(&mut std::io::Cursor::new(&bad))
        .expect_err("corrupt calibration container must not load");
    assert!(
        matches!(
            err,
            SnapshotError::Format(SnapError::ChecksumMismatch { .. })
        ),
        "{err:?}"
    );
}

#[test]
fn load_or_compile_falls_back_and_self_heals() {
    let selector = fleet_selector();
    let kernels = hetsel_polybench::bicg::kernels();
    let dir = std::env::temp_dir().join(format!("hetsel-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bicg.hsnp");
    let _ = std::fs::remove_file(&path);

    // Missing file: typed Io fallback, snapshot written back.
    let (db1, err1) = AttributeDatabase::load_or_compile(&path, &kernels, &selector);
    assert!(matches!(err1, Some(SnapshotError::Io(_))), "{err1:?}");
    assert!(path.exists(), "fallback writes the snapshot for next time");

    // Second call takes the snapshot path cleanly.
    let (db2, err2) = AttributeDatabase::load_or_compile(&path, &kernels, &selector);
    assert_eq!(err2, None);
    assert_eq!(db2.len(), db1.len());

    // Corrupt the file in place: typed fallback again, file re-healed.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    let (db3, err3) = AttributeDatabase::load_or_compile(&path, &kernels, &selector);
    assert!(
        matches!(
            err3,
            Some(SnapshotError::Format(SnapError::ChecksumMismatch { .. }))
        ),
        "{err3:?}"
    );
    assert_eq!(db3.len(), db1.len());
    let healed = std::fs::read(&path).unwrap();
    AttributeDatabase::from_snapshot_bytes(&selector, &healed).expect("re-written snapshot loads");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
