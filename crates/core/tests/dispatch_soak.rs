//! Fault-injection soaks for the dispatch runtime.
//!
//! The quick variants run in every `cargo test`. The `stress_fault_*`
//! soaks are `#[ignore]`d and run by CI in release mode together with the
//! cache soaks (`cargo test --release -p hetsel-core -- --ignored stress`).
//!
//! The contract under test, per ISSUE 4's acceptance bar: for GPU transient
//! fault probability p ∈ {0, 0.1, 0.5, 1.0} with a healthy host, every
//! request completes on *some* device with no panics and no hangs, and a
//! fixed seed replays the whole `DispatchOutcome` sequence bit for bit —
//! breaker transitions included.

use std::sync::atomic::{AtomicU64, Ordering};

use hetsel_core::{
    BreakerConfig, BreakerState, DecisionEngine, DecisionRequest, Device, DispatchOutcome,
    Dispatcher, DispatcherConfig, Platform, Selector,
};
use hetsel_fault::FaultPlan;
use hetsel_ir::Kernel;
use hetsel_polybench::{suite, Dataset};

fn engine() -> DecisionEngine {
    let kernels: Vec<Kernel> = suite().into_iter().flat_map(|b| b.kernels).collect();
    DecisionEngine::new(Selector::new(Platform::power9_v100()), &kernels)
}

/// Every suite kernel under every dataset, `rounds` times over: the
/// standard soak request stream (72 requests per round, deterministic
/// order).
fn request_stream(rounds: usize) -> Vec<DecisionRequest> {
    let mut out = Vec::new();
    for _ in 0..rounds {
        for bench in suite() {
            for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
                let binding = (bench.binding)(ds);
                for k in &bench.kernels {
                    out.push(DecisionRequest::new(&k.name, binding.clone()));
                }
            }
        }
    }
    out
}

/// A small deterministic stream for the quick (non-ignored) variants: two
/// kernels of opposite decision character under two datasets. The full
/// 72-request-per-round stream runs in the release-mode `stress_fault_*`
/// soaks, where debug-build simulator cost does not dominate.
fn quick_stream() -> Vec<DecisionRequest> {
    let mut out = Vec::new();
    for name in ["gemm", "atax.k1"] {
        let (_, binding) = hetsel_polybench::find_kernel(name).unwrap();
        for ds in [Dataset::Mini, Dataset::Test] {
            out.push(DecisionRequest::new(name, binding(ds)));
        }
    }
    out
}

fn faulty(seed: u64, p: f64) -> Dispatcher {
    Dispatcher::new(
        engine(),
        DispatcherConfig::default()
            .with_gpu_faults(FaultPlan::transient(seed, p).with_jitter(1e-4))
            .with_breaker(BreakerConfig {
                failure_threshold: 3,
                open_backoff: 8,
                max_backoff: 64,
            }),
    )
}

#[test]
fn every_transient_probability_completes_every_request() {
    for p in [0.0, 0.1, 0.5, 1.0] {
        let dispatcher = faulty(0xfa11, p);
        for request in quick_stream() {
            let outcome = dispatcher
                .dispatch(&request)
                .unwrap_or_else(|e| panic!("p={p}: {} failed: {e}", request.region()));
            assert!(
                outcome.simulated_s > 0.0,
                "p={p}: {} ran nowhere",
                request.region()
            );
        }
        // The host stayed healthy, so its breaker never moved.
        assert_eq!(dispatcher.breaker_state(Device::Host), BreakerState::Closed);
    }
}

#[test]
fn same_seed_replays_the_outcome_sequence_bit_for_bit() {
    let requests = quick_stream();
    let run = |seed: u64| -> Vec<DispatchOutcome> {
        let dispatcher = faulty(seed, 0.5);
        requests
            .iter()
            .map(|r| dispatcher.dispatch(r).expect("host completes"))
            .collect()
    };
    assert_eq!(run(7), run(7), "same seed must replay bit-for-bit");
    assert_ne!(
        run(7),
        run(8),
        "different seeds must produce different fault histories"
    );
}

#[test]
#[ignore = "soak test; run with --release -- --ignored stress"]
fn stress_fault_transient_sweep_completes_and_replays() {
    let requests = request_stream(5);
    for p in [0.0, 0.1, 0.5, 1.0] {
        let run = || -> Vec<DispatchOutcome> {
            let dispatcher = faulty(0xdead_beef, p);
            requests
                .iter()
                .map(|r| {
                    dispatcher
                        .dispatch(r)
                        .unwrap_or_else(|e| panic!("p={p}: {} failed: {e}", r.region()))
                })
                .collect()
        };
        let first = run();
        assert_eq!(first.len(), requests.len(), "p={p}: a request was dropped");
        assert_eq!(first, run(), "p={p}: replay diverged");
        if p == 0.0 {
            assert!(
                first.iter().all(DispatchOutcome::clean),
                "p=0 must be fault-free"
            );
        }
        if p == 1.0 {
            // Every GPU-decided request was forced to the host.
            assert!(
                first.iter().all(|o| o.device == Device::Host),
                "p=1: something still ran on the GPU"
            );
        }
    }
}

#[test]
#[ignore = "soak test; run with --release -- --ignored stress"]
fn stress_fault_breaker_transitions_are_deterministic() {
    // Permanent GPU faults: the breaker trips at the threshold, backs off,
    // probes, re-opens with doubled backoff — and the whole trace of
    // (state, backoff, trips) after each dispatch must replay exactly.
    let requests = request_stream(3);
    let trace = || -> Vec<(BreakerState, u64, u64)> {
        let dispatcher = Dispatcher::new(
            engine(),
            DispatcherConfig::default()
                .with_gpu_faults(FaultPlan::permanent(99, 1.0))
                .with_breaker(BreakerConfig {
                    failure_threshold: 2,
                    open_backoff: 4,
                    max_backoff: 32,
                }),
        );
        requests
            .iter()
            .map(|r| {
                dispatcher.dispatch(r).expect("host completes");
                let h = dispatcher.health(Device::Gpu);
                (h.state, h.backoff, h.trips)
            })
            .collect()
    };
    let first = trace();
    assert_eq!(first, trace(), "breaker trace must be deterministic");
    assert!(
        first.iter().any(|(s, _, _)| *s == BreakerState::Open),
        "the breaker never tripped under p=1 permanent faults"
    );
    let max_trips = first.iter().map(|(_, _, t)| *t).max().unwrap();
    assert!(
        max_trips >= 2,
        "no half-open probe ever failed and re-opened"
    );
    let max_backoff = first.iter().map(|(_, b, _)| *b).max().unwrap();
    assert!(max_backoff > 4, "re-opening never doubled the backoff");
}

#[test]
#[ignore = "soak test; run with --release -- --ignored stress"]
fn stress_fault_concurrent_dispatch_never_hangs_or_drops() {
    // 8 threads share one faulty dispatcher. Interleaving makes outcome
    // *sequences* nondeterministic across runs — that is expected; the
    // invariants are completion, per-thread sanity, and exact health
    // accounting.
    let dispatcher = faulty(0xc0ffee, 0.5);
    let requests = request_stream(2);
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let dispatcher = &dispatcher;
            let requests = &requests;
            let completed = &completed;
            scope.spawn(move || {
                for i in 0..requests.len() {
                    // Offset each thread's walk so the interleaving varies.
                    let request = &requests[(i + t * 17) % requests.len()];
                    let outcome = dispatcher
                        .dispatch(request)
                        .unwrap_or_else(|e| panic!("{} failed: {e}", request.region()));
                    assert!(outcome.attempts >= 1 && outcome.simulated_s > 0.0);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(
        completed.load(Ordering::Relaxed),
        8 * requests.len() as u64,
        "every request must complete on some device"
    );
    let gpu = dispatcher.health(Device::Gpu);
    assert!(gpu.failures > 0, "p=0.5 must have injected GPU faults");
    assert_eq!(
        dispatcher.health(Device::Host).failures,
        0,
        "the host plan is healthy"
    );
}
