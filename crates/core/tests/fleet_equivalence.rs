//! Tentpole acceptance for the fleet generalization: a multi-accelerator
//! fleet restricted to one accelerator reproduces the classic single-pair
//! decisions **bit-for-bit**, across every Polybench kernel, every dataset,
//! and the unresolved-binding edge case.
//!
//! Three comparisons triangulate the guarantee:
//!
//! 1. `Fleet::restrict(label)` vs `Fleet::pair_labeled` on a platform
//!    carrying that accelerator — `Decision`s equal on every field, and
//!    `Explanation`s equal after stripping wall-clock timings.
//! 2. Scoped `DecisionEngine::decide_for(.., id)` on the *full* fleet vs
//!    the pair decision — equal on every field except `device_id`, which
//!    carries the true fleet identity instead of the pair's slot 1.
//! 3. The primary slot of a labeled fleet vs the classic
//!    `Selector::new(platform)` pair — same verdicts and predictions, only
//!    the label spelling differs.

use hetsel_core::{
    AttributeDatabase, Decision, DecisionEngine, Device, DeviceId, Explanation, Fleet,
    PhaseTimings, Platform, Selector,
};
use hetsel_ir::Binding;
use hetsel_polybench::{all_kernels, Dataset};

/// POWER9 host carrying both of the paper's accelerator generations.
fn two_gpu_fleet() -> (Platform, Fleet) {
    let platform = Platform::power9_v100();
    let fleet = Fleet::pair_labeled(&platform, "v100")
        .with_accelerator_from("k80", &Platform::power8_k80());
    (platform, fleet)
}

/// The pair comparator for `label`: the same POWER9 host with that
/// accelerator grafted in as the platform's only GPU.
fn pair_platform(label: &str) -> Platform {
    let mut p = Platform::power9_v100();
    if label == "k80" {
        let donor = Platform::power8_k80();
        p.gpu = donor.gpu;
        p.gpu_model = donor.gpu_model;
    } else {
        assert_eq!(label, "v100", "unknown comparator label");
    }
    p
}

fn engine_for(selector: Selector) -> DecisionEngine {
    let kernels: Vec<_> = all_kernels().into_iter().map(|(_, k, _)| k).collect();
    let db = AttributeDatabase::compile(&kernels, &selector);
    DecisionEngine::from_database(selector, db, 4096)
}

/// Every (region, binding) pair the equivalence must hold for: all suite
/// kernels under all three datasets, plus an empty binding (every model
/// fails with `UnboundSymbol`, exercising the fallback path).
fn all_cases() -> Vec<(String, Binding)> {
    let mut cases = Vec::new();
    for (_, kernel, binding) in all_kernels() {
        for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
            cases.push((kernel.name.clone(), binding(ds)));
        }
        cases.push((kernel.name.clone(), Binding::new()));
    }
    cases
}

/// An explanation with the fields that legitimately differ between two
/// equivalent runs (wall-clock phase timings, cache temperature) blanked.
fn normalized_explanation(engine: &DecisionEngine, region: &str, b: &Binding) -> Explanation {
    let mut e = engine.explain(region, b).expect("region is known");
    e.timings = PhaseTimings::default();
    e.cached = false;
    e
}

#[test]
fn a_restricted_fleet_reproduces_the_pair_bit_for_bit() {
    for label in ["v100", "k80"] {
        let (platform, fleet) = two_gpu_fleet();
        let restricted = fleet.restrict(label).expect("label is registered");
        let eng_restricted = engine_for(Selector::new(platform).with_fleet(restricted));
        let pp = pair_platform(label);
        let pair = Fleet::pair_labeled(&pp, label);
        let eng_pair = engine_for(Selector::new(pp).with_fleet(pair));
        for (region, b) in all_cases() {
            let restricted: Decision = eng_restricted.decide(&region, &b).expect("known region");
            let pair: Decision = eng_pair.decide(&region, &b).expect("known region");
            assert_eq!(
                restricted, pair,
                "restricted[{label}] != pair[{label}] for {region}"
            );
            assert_eq!(
                normalized_explanation(&eng_restricted, &region, &b),
                normalized_explanation(&eng_pair, &region, &b),
                "explanations diverge for {region} on {label}"
            );
        }
    }
}

#[test]
fn a_scoped_decision_on_the_full_fleet_matches_the_pair() {
    let (platform, fleet) = two_gpu_fleet();
    let eng_fleet = engine_for(Selector::new(platform).with_fleet(fleet.clone()));
    for label in ["v100", "k80"] {
        let id = fleet.device_id_of(label).expect("label is registered");
        let pp = pair_platform(label);
        let pair = Fleet::pair_labeled(&pp, label);
        let eng_pair = engine_for(Selector::new(pp).with_fleet(pair));
        for (region, b) in all_cases() {
            let scoped = eng_fleet.decide_for(&region, &b, id).expect("known scope");
            let pair = eng_pair.decide(&region, &b).expect("known region");
            // The scoped decision names the device by its true fleet id;
            // the restriction renumbers it to the pair's slot 1.
            if scoped.device == Device::Host {
                assert!(scoped.device_id.is_host());
            } else {
                assert_eq!(scoped.device_id, id, "{region} chose a foreign device");
            }
            let mut renumbered = scoped.clone();
            renumbered.device_id = pair.device_id;
            assert_eq!(renumbered, pair, "scoped[{label}] != pair for {region}");
        }
    }
}

#[test]
fn the_primary_slot_matches_the_classic_pair_selector() {
    // `Selector::new` is the classic pair under the label "gpu". A labeled
    // two-accelerator fleet restricted to its primary must agree with it
    // on everything but the spelling of the label.
    let (platform, fleet) = two_gpu_fleet();
    let eng_classic = engine_for(Selector::new(platform.clone()));
    let eng_fleet = engine_for(Selector::new(platform).with_fleet(fleet));
    let primary = DeviceId(1);
    for (region, b) in all_cases() {
        let classic = eng_classic.decide(&region, &b).expect("known region");
        let scoped = eng_fleet
            .decide_for(&region, &b, primary)
            .expect("known scope");
        let mut relabeled = scoped.clone();
        relabeled.device_name = classic.device_name.clone();
        assert_eq!(relabeled, classic, "primary slot diverged for {region}");
        if scoped.device == Device::Gpu {
            assert_eq!(&*scoped.device_name, "v100");
        }
    }
}
