//! Property tests for the decision composer's fallback semantics, over
//! fleets of one host and up to three accelerators.
//!
//! The invariant under `Policy::ModelDriven`: **no combination of model
//! outcomes ever yields `Device::Host` unless a finite, non-negative CPU
//! prediction beats (ties included) every usable accelerator
//! prediction.** Everything else — an evaluation error on any side, a
//! NaN, an infinity, a negative time, a missing outcome — must keep the
//! compiler default of offloading (to the primary accelerator) and record
//! why. The single exception is a fleet with no accelerator at all, whose
//! terminal fallback is the host unconditionally.

use hetsel_core::{
    choose_among, choose_device, Device, DeviceChoice, Fleet, Platform, Policy, Selector,
};
use hetsel_models::ModelError;
use proptest::prelude::*;

type Outcome = Option<Result<f64, ModelError>>;

/// Every shape a model outcome can take: consulted or not, failed with a
/// typed error, or "successful" with a usable, degenerate or poisonous
/// value.
fn outcome() -> BoxedStrategy<Outcome> {
    prop_oneof![
        Just(None),
        Just(Some(Err(ModelError::ZeroTrip))),
        Just(Some(Err(ModelError::ZeroThreads))),
        Just(Some(Err(ModelError::UnboundSymbol { name: "n".into() }))),
        Just(Some(Err(ModelError::UnsupportedShape {
            reason: "prop".into(),
        }))),
        Just(Some(Ok(f64::NAN))),
        Just(Some(Ok(f64::INFINITY))),
        Just(Some(Ok(f64::NEG_INFINITY))),
        Just(Some(Ok(0.0))),
        (1i64..2_000_000).prop_map(|v| Some(Ok(-(v as f64) * 1e-6))),
        (0i64..2_000_000).prop_map(|v| Some(Ok(v as f64 * 1e-6))),
    ]
    .boxed()
}

/// Only outcomes that can never yield a usable prediction.
fn bad_outcome() -> BoxedStrategy<Outcome> {
    prop_oneof![
        Just(None),
        Just(Some(Err(ModelError::ZeroTrip))),
        Just(Some(Err(ModelError::UnboundSymbol { name: "n".into() }))),
        Just(Some(Ok(f64::NAN))),
        Just(Some(Ok(f64::INFINITY))),
        Just(Some(Ok(f64::NEG_INFINITY))),
        (1i64..2_000_000).prop_map(|v| Some(Ok(-(v as f64) * 1e-6))),
    ]
    .boxed()
}

fn usable(o: &Outcome) -> Option<f64> {
    match o {
        Some(Ok(s)) if ModelError::usable_time(*s) => Some(*s),
        _ => None,
    }
}

/// A three-accelerator fleet under labels `a` / `b` / `c` (ids 1 / 2 / 3).
fn fleet_selector() -> Selector {
    let platform = Platform::power9_v100();
    let fleet = Fleet::pair_labeled(&platform, "a")
        .with_accelerator_from("b", &Platform::power8_k80())
        .with_accelerator_from("c", &Platform::power8_p100());
    Selector::new(platform).with_fleet(fleet)
}

const LABELS: [&str; 3] = ["a", "b", "c"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn host_requires_a_finite_cpu_win(cpu in outcome(), a in outcome(), b in outcome(), c in outcome()) {
        let s = fleet_selector();
        prop_assert_eq!(s.policy, Policy::ModelDriven);
        let accels = [a.clone(), b.clone(), c.clone()];
        let d = s.decide_from_outcomes("prop-region", cpu.clone(), &accels);
        if d.device == Device::Host {
            let h = usable(&cpu);
            let best = accels.iter().filter_map(usable).fold(f64::INFINITY, f64::min);
            prop_assert!(
                h.is_some() && best.is_finite() && h.unwrap() <= best,
                "Host chosen without a finite CPU win: cpu={cpu:?} accels={accels:?}"
            );
        }
    }

    #[test]
    fn decision_agrees_with_choose_among(cpu in outcome(), a in outcome(), b in outcome(), c in outcome()) {
        let s = fleet_selector();
        let accels = [a, b, c];
        let d = s.decide_from_outcomes("prop-region", cpu.clone(), &accels);
        // The recorded host prediction is exactly the usable value...
        prop_assert_eq!(d.predicted_cpu_s, usable(&cpu));
        // ...and the chosen device is the shared N-way comparison, which
        // carries the true fleet identity of the winning candidate.
        let times: Vec<Option<f64>> = accels.iter().map(usable).collect();
        match choose_among(usable(&cpu), &times) {
            DeviceChoice::Host => {
                prop_assert_eq!(d.device, Device::Host);
                prop_assert_eq!(&*d.device_name, "host");
                prop_assert!(d.device_id.is_host());
            }
            DeviceChoice::Accelerator(i) => {
                prop_assert_eq!(d.device, Device::Gpu);
                prop_assert_eq!(&*d.device_name, LABELS[i]);
                prop_assert_eq!(d.predicted_gpu_s, times[i]);
            }
        }
        // An outcome that produced no prediction left a recorded reason
        // (when the model was consulted at all).
        prop_assert_eq!(d.cpu_error.is_some(), cpu.is_some() && usable(&cpu).is_none());
    }

    #[test]
    fn decision_agrees_with_the_pair_comparison_when_restricted(cpu in outcome(), gpu in outcome()) {
        // One accelerator: the N-way rule IS the classic pair rule.
        let s = Selector::new(Platform::power9_v100());
        let d = s.decide_from_outcomes("prop-region", cpu.clone(), std::slice::from_ref(&gpu));
        prop_assert_eq!(d.predicted_cpu_s, usable(&cpu));
        prop_assert_eq!(d.predicted_gpu_s, usable(&gpu));
        prop_assert_eq!(d.device, choose_device(d.predicted_cpu_s, d.predicted_gpu_s));
        prop_assert_eq!(d.gpu_error.is_some(), gpu.is_some() && usable(&gpu).is_none());
    }

    #[test]
    fn single_finite_accelerator_wins(k in 0usize..3, t in 1i64..2_000_000) {
        // Host unusable, exactly one accelerator finite: that accelerator
        // must win regardless of its slot.
        let s = fleet_selector();
        let mut accels: [Outcome; 3] = [Some(Ok(f64::NAN)), None, Some(Err(ModelError::ZeroTrip))];
        accels[k] = Some(Ok(t as f64 * 1e-6));
        let d = s.decide_from_outcomes("prop-region", Some(Ok(f64::NAN)), &accels);
        prop_assert_eq!(d.device, Device::Gpu);
        prop_assert_eq!(&*d.device_name, LABELS[k]);
    }

    #[test]
    fn ties_go_to_the_host(t in 0i64..2_000_000, a in bad_outcome(), slack in 1i64..1_000) {
        // The best accelerator exactly ties the host: the host wins. The
        // other slots are unusable or strictly slower, so they can never
        // steal the verdict.
        let s = fleet_selector();
        let tied = t as f64 * 1e-6;
        let slower = Some(Ok(tied + slack as f64 * 1e-6));
        let d = s.decide_from_outcomes(
            "prop-region",
            Some(Ok(tied)),
            &[a, slower, Some(Ok(tied))],
        );
        prop_assert_eq!(d.device, Device::Host);
        prop_assert_eq!(&*d.device_name, "host");
    }

    #[test]
    fn all_unusable_outcomes_offload_to_the_primary(cpu in bad_outcome(), a in bad_outcome(), b in bad_outcome(), c in bad_outcome()) {
        // The pair-era compiler default, generalized: when nothing is
        // usable the request offloads to the primary accelerator. A
        // host-only fleet has no such candidate, so its terminal fallback
        // is the host.
        let accels = [a, b, c];
        let d = fleet_selector().decide_from_outcomes("prop-region", cpu.clone(), &accels);
        prop_assert_eq!(d.device, Device::Gpu);
        prop_assert_eq!(&*d.device_name, "a");
        let host_only = Selector::new(Platform::power9_v100()).with_fleet(Fleet::host_only());
        let d = host_only.decide_from_outcomes("prop-region", cpu, &[]);
        prop_assert_eq!(d.device, Device::Host);
        prop_assert!(d.device_id.is_host());
    }

    #[test]
    fn always_policies_never_consult_outcomes(cpu in outcome(), a in outcome(), b in outcome(), c in outcome()) {
        let accels = [a, b, c];
        let host = fleet_selector().with_policy(Policy::AlwaysHost);
        let d = host.decide_from_outcomes("prop-region", cpu.clone(), &accels);
        prop_assert_eq!(d.device, Device::Host);
        prop_assert_eq!(&*d.device_name, "host");
        let off = fleet_selector().with_policy(Policy::AlwaysOffload);
        let d = off.decide_from_outcomes("prop-region", cpu, &accels);
        prop_assert_eq!(d.device, Device::Gpu);
        prop_assert_eq!(&*d.device_name, "a", "compiler default offloads to the primary");
    }
}
