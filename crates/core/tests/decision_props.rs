//! Property tests for the decision composer's fallback semantics.
//!
//! The invariant under `Policy::ModelDriven`: **no combination of model
//! outcomes ever yields `Device::Host` unless a finite, non-negative CPU
//! prediction beats (ties included) a finite, non-negative GPU
//! prediction.** Everything else — an evaluation error on either side, a
//! NaN, an infinity, a negative time, a missing outcome — must keep the
//! compiler default of offloading and record why.

#![allow(deprecated)] // `decide_outcomes` is the only public outcome-level entry

use hetsel_core::{choose_device, Device, Platform, Policy, Selector};
use hetsel_models::ModelError;
use proptest::prelude::*;

type Outcome = Option<Result<f64, ModelError>>;

/// Every shape a model outcome can take: consulted or not, failed with a
/// typed error, or "successful" with a usable, degenerate or poisonous
/// value.
fn outcome() -> BoxedStrategy<Outcome> {
    prop_oneof![
        Just(None),
        Just(Some(Err(ModelError::ZeroTrip))),
        Just(Some(Err(ModelError::ZeroThreads))),
        Just(Some(Err(ModelError::UnboundSymbol { name: "n".into() }))),
        Just(Some(Err(ModelError::UnsupportedShape {
            reason: "prop".into(),
        }))),
        Just(Some(Ok(f64::NAN))),
        Just(Some(Ok(f64::INFINITY))),
        Just(Some(Ok(f64::NEG_INFINITY))),
        Just(Some(Ok(0.0))),
        (1i64..2_000_000).prop_map(|v| Some(Ok(-(v as f64) * 1e-6))),
        (0i64..2_000_000).prop_map(|v| Some(Ok(v as f64 * 1e-6))),
    ]
    .boxed()
}

fn usable(o: &Outcome) -> Option<f64> {
    match o {
        Some(Ok(s)) if ModelError::usable_time(*s) => Some(*s),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn host_requires_a_finite_cpu_win(cpu in outcome(), gpu in outcome()) {
        let s = Selector::new(Platform::power9_v100());
        prop_assert_eq!(s.policy, Policy::ModelDriven);
        let d = s.decide_outcomes("prop-region", cpu.clone(), gpu.clone());
        if d.device == Device::Host {
            let c = usable(&cpu);
            let g = usable(&gpu);
            prop_assert!(
                c.is_some() && g.is_some() && c.unwrap() <= g.unwrap(),
                "Host chosen without a finite CPU win: cpu={cpu:?} gpu={gpu:?}"
            );
        }
    }

    #[test]
    fn decision_agrees_with_choose_device(cpu in outcome(), gpu in outcome()) {
        let s = Selector::new(Platform::power9_v100());
        let d = s.decide_outcomes("prop-region", cpu.clone(), gpu.clone());
        // The recorded predictions are exactly the usable values...
        prop_assert_eq!(d.predicted_cpu_s, usable(&cpu));
        prop_assert_eq!(d.predicted_gpu_s, usable(&gpu));
        // ...and the device is their shared comparison.
        prop_assert_eq!(d.device, choose_device(d.predicted_cpu_s, d.predicted_gpu_s));
        // An outcome that produced no prediction left a recorded reason
        // (when the model was consulted at all).
        prop_assert_eq!(d.cpu_error.is_some(), cpu.is_some() && usable(&cpu).is_none());
        prop_assert_eq!(d.gpu_error.is_some(), gpu.is_some() && usable(&gpu).is_none());
    }

    #[test]
    fn always_policies_never_consult_outcomes(cpu in outcome(), gpu in outcome()) {
        let host = Selector::new(Platform::power9_v100()).with_policy(Policy::AlwaysHost);
        prop_assert_eq!(host.decide_outcomes("prop-region", cpu.clone(), gpu.clone()).device, Device::Host);
        let off = Selector::new(Platform::power9_v100()).with_policy(Policy::AlwaysOffload);
        prop_assert_eq!(off.decide_outcomes("prop-region", cpu, gpu).device, Device::Gpu);
    }
}
