//! Concurrency tests for the sharded decision cache: many threads
//! hammering `decide()` / `decide_batch()` must produce bit-for-bit the
//! decisions a cold selector computes, keep the cache inside its capacity,
//! and account every decision as exactly one hit or one miss.
//!
//! The quick variants run in every `cargo test`. The `stress_*` soak tests
//! are `#[ignore]`d and run by CI in release mode
//! (`cargo test --release -p hetsel-core -- --ignored stress`), where the
//! optimizer removes the instrumentation slack that hides real races.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use hetsel_core::{Decision, DecisionEngine, DecisionRequest, Platform, Selector};
use hetsel_ir::Binding;
use hetsel_polybench::find_kernel;

fn selector() -> Selector {
    Selector::new(Platform::power9_v100())
}

/// The ground truth for `gemm` under `n`: what a cold selector computes.
fn expected_decisions(ns: impl IntoIterator<Item = i64>) -> HashMap<i64, Decision> {
    let (kernel, _) = find_kernel("gemm").unwrap();
    let s = selector();
    ns.into_iter()
        .map(|n| (n, s.decide(&kernel, &Binding::new().with("n", n))))
        .collect()
}

/// Spawns `threads` workers, each deciding `per_thread` times by walking
/// `ns` from a thread-specific offset, and checks every answer against the
/// cold-path ground truth. Returns the total number of decisions taken.
fn hammer(engine: &DecisionEngine, threads: usize, per_thread: usize, ns: &[i64]) -> u64 {
    let expected = expected_decisions(ns.iter().copied());
    let decided = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let expected = &expected;
            let decided = &decided;
            scope.spawn(move || {
                let mut binding = Binding::new();
                for i in 0..per_thread {
                    let n = ns[(t * 7 + i) % ns.len()];
                    binding.set("n", n);
                    let d = engine.decide("gemm", &binding).expect("gemm is known");
                    assert_eq!(
                        &d, &expected[&n],
                        "n={n}: concurrent decision diverged from the cold path"
                    );
                    decided.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    decided.load(Ordering::Relaxed)
}

#[test]
fn concurrent_decides_are_bit_identical_and_accounted() {
    let (kernel, _) = find_kernel("gemm").unwrap();
    // Capacity is split across 16 shards, so it is sized for the *worst*
    // stripe, not the average: 256 gives every shard 16 slots for a
    // 24-key working set.
    let engine = DecisionEngine::with_capacity(selector(), std::slice::from_ref(&kernel), 256);
    let ns: Vec<i64> = (1..=24).collect();
    let decided = hammer(&engine, 4, 200, &ns);
    let stats = engine.stats();
    assert_eq!(stats.hits + stats.misses, decided, "{stats:?}");
    assert!(stats.len <= stats.capacity, "{stats:?}");
    assert_eq!(stats.misses, 24, "one miss per distinct key: {stats:?}");
    assert_eq!(stats.evictions, 0, "{stats:?}");
}

#[test]
fn concurrent_batches_match_the_cold_path() {
    let (kernel, _) = find_kernel("gemm").unwrap();
    let engine = DecisionEngine::with_capacity(selector(), std::slice::from_ref(&kernel), 256);
    let ns: Vec<i64> = (1..=16).collect();
    let expected = expected_decisions(ns.iter().copied());
    let bindings: Vec<Binding> = ns.iter().map(|&n| Binding::new().with("n", n)).collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            let expected = &expected;
            let bindings = &bindings;
            let ns = &ns;
            scope.spawn(move || {
                let requests: Vec<DecisionRequest> = bindings
                    .iter()
                    .map(|b| DecisionRequest::new("gemm", b.clone()))
                    .collect();
                for _ in 0..50 {
                    let results = engine.decide_batch(&requests);
                    for (slot, n) in results.iter().zip(ns) {
                        assert_eq!(slot.as_ref(), Some(&expected[n]));
                    }
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.hits + stats.misses, 4 * 50 * 16, "{stats:?}");
    assert!(stats.len <= stats.capacity);
}

/// 16 threads, a working set that mostly hits with a per-thread tail of
/// fresh keys: the mixed hit/miss soak the issue prescribes.
#[test]
#[ignore = "soak test; run with --release -- --ignored stress"]
fn stress_mixed_hit_miss_soak() {
    let (kernel, _) = find_kernel("gemm").unwrap();
    let engine = DecisionEngine::with_capacity(selector(), std::slice::from_ref(&kernel), 4096);
    // 64 hot keys shared by all threads + 16×64 cold keys touched once.
    let hot: Vec<i64> = (1..=64).collect();
    let expected_hot = expected_decisions(hot.iter().copied());
    let decided = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..16i64 {
            let engine = &engine;
            let hot = &hot;
            let expected_hot = &expected_hot;
            let decided = &decided;
            scope.spawn(move || {
                let mut binding = Binding::new();
                for i in 0..4000usize {
                    let n = if i % 20 == 19 {
                        // 5%: a key no other thread ever touches (the
                        // per-thread ranges are disjoint).
                        100_000 + t * 10_000 + i as i64
                    } else {
                        hot[(t as usize * 5 + i) % hot.len()]
                    };
                    binding.set("n", n);
                    let d = engine.decide("gemm", &binding).expect("gemm is known");
                    if let Some(e) = expected_hot.get(&n) {
                        assert_eq!(&d, e, "n={n} diverged under contention");
                    }
                    decided.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(
        stats.hits + stats.misses,
        decided.load(Ordering::Relaxed),
        "every decision is exactly one hit or one miss: {stats:?}"
    );
    assert!(stats.len <= stats.capacity, "{stats:?}");
    // 64 hot keys miss once each; each thread's 200 cold keys miss once.
    assert_eq!(stats.misses, 64 + 16 * 200, "{stats:?}");
}

/// 8 threads thrashing a deliberately tiny cache: far more live keys than
/// capacity, so eviction and re-miss churn constantly. The cache must stay
/// bounded, keep exact accounting, and never corrupt a decision.
#[test]
#[ignore = "soak test; run with --release -- --ignored stress"]
fn stress_capacity_thrash_stays_bounded() {
    let (kernel, _) = find_kernel("gemm").unwrap();
    let engine = DecisionEngine::with_capacity(selector(), std::slice::from_ref(&kernel), 32);
    let ns: Vec<i64> = (1..=256).collect();
    let decided = hammer(&engine, 8, 2000, &ns);
    let stats = engine.stats();
    assert_eq!(stats.hits + stats.misses, decided, "{stats:?}");
    assert!(stats.len <= stats.capacity, "{stats:?}");
    assert!(
        stats.evictions
            >= stats
                .misses
                .saturating_sub(stats.capacity as u64 + stats.len as u64),
        "thrash must evict: {stats:?}"
    );
}

/// Mixed one-shot and batched traffic against the same engine: the two
/// entry points share shards, stats, and decisions.
#[test]
#[ignore = "soak test; run with --release -- --ignored stress"]
fn stress_mixed_decide_and_batch_traffic() {
    let (kernel, _) = find_kernel("gemm").unwrap();
    let engine = DecisionEngine::with_capacity(selector(), std::slice::from_ref(&kernel), 1024);
    let ns: Vec<i64> = (1..=48).collect();
    let expected = expected_decisions(ns.iter().copied());
    let decided = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..12usize {
            let engine = &engine;
            let ns = &ns;
            let expected = &expected;
            let decided = &decided;
            scope.spawn(move || {
                if t % 2 == 0 {
                    let bindings: Vec<Binding> =
                        ns.iter().map(|&n| Binding::new().with("n", n)).collect();
                    let requests: Vec<DecisionRequest> = bindings
                        .iter()
                        .map(|b| DecisionRequest::new("gemm", b.clone()))
                        .collect();
                    for _ in 0..250 {
                        for (slot, n) in engine.decide_batch(&requests).iter().zip(ns) {
                            assert_eq!(slot.as_ref(), Some(&expected[n]));
                        }
                        decided.fetch_add(requests.len() as u64, Ordering::Relaxed);
                    }
                } else {
                    let mut binding = Binding::new();
                    for i in 0..12_000usize {
                        let n = ns[(t * 11 + i) % ns.len()];
                        binding.set("n", n);
                        let d = engine.decide("gemm", &binding).expect("gemm is known");
                        assert_eq!(&d, &expected[&n]);
                        decided.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.hits + stats.misses, decided.load(Ordering::Relaxed));
    assert_eq!(stats.misses, 48, "the working set fits: one miss per key");
    assert!(stats.len <= stats.capacity);
}
