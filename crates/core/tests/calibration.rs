//! The calibration equivalence and convergence contract.
//!
//! Off mode, cold (zero-sample) Shadow, and cold Active must be
//! *bit-for-bit* identical to the uncalibrated engine across the whole
//! Polybench suite — calibration is opt-in and pay-for-use. Shadow mode
//! with warm cells computes and records what it would change but never
//! alters a verdict. Active mode with a constant-bias oracle converges
//! to the oracle's bias, flips the verdict, and the flip is visible in
//! the metrics registry and the flight recorder.
//!
//! The `stress_*` variants are `#[ignore]`d sweeps picked up by the CI
//! release stress filter (`cargo test --release -p hetsel-core --
//! --ignored stress`).

use std::sync::Arc;

use hetsel_core::{
    CalibrationMode, Calibrator, CalibratorConfig, Decision, DecisionEngine, Device, Platform,
    Selector,
};
use hetsel_polybench::{all_kernels, find_kernel, Dataset};

/// An unclamped, instantly-publishing calibrator profile for tests that
/// need warm cells after a single observation.
fn eager_config() -> CalibratorConfig {
    CalibratorConfig {
        min_samples: 1,
        max_abs_log: f64::INFINITY,
        epoch_threshold: 0.0,
        capacity: 256,
    }
}

/// Bitwise equality on the verdict-bearing fields. The calibration tag
/// itself is allowed to differ — Off mode carries none, Shadow carries
/// its would-be corrections.
fn same_verdict(a: &Decision, b: &Decision) -> bool {
    let bits = |v: Option<f64>| v.map(f64::to_bits);
    a.device == b.device
        && a.device_id == b.device_id
        && a.device_name == b.device_name
        && bits(a.predicted_cpu_s) == bits(b.predicted_cpu_s)
        && bits(a.predicted_gpu_s) == bits(b.predicted_gpu_s)
        && a.cpu_error.is_some() == b.cpu_error.is_some()
        && a.gpu_error.is_some() == b.gpu_error.is_some()
}

fn equivalence_sweep(datasets: &[Dataset]) {
    let platform = Platform::power9_v100();
    let off = Selector::new(platform.clone());
    let shadow = Selector::new(platform.clone()).with_calibration(CalibrationMode::Shadow);
    let active_cold = Selector::new(platform).with_calibration(CalibrationMode::Active);
    for (name, kernel, binding) in all_kernels() {
        for &ds in datasets {
            let b = binding(ds);
            let base = off.decide(&kernel, &b);
            assert!(
                base.calibration.is_none(),
                "{name}: Off mode must not carry a calibration tag"
            );

            let s = shadow.decide(&kernel, &b);
            assert!(
                same_verdict(&base, &s),
                "{name}/{ds:?}: zero-sample Shadow drifted from Off"
            );
            let tag = s.calibration.expect("shadow tags model-driven decisions");
            assert_eq!(tag.cpu_factor.to_bits(), 1f64.to_bits(), "{name}: cold cpu");
            assert_eq!(tag.gpu_factor.to_bits(), 1f64.to_bits(), "{name}: cold gpu");
            assert!(!tag.applied && !tag.flipped, "{name}: cold shadow is inert");

            let a = active_cold.decide(&kernel, &b);
            assert!(
                same_verdict(&base, &a),
                "{name}/{ds:?}: zero-sample Active drifted from Off"
            );
            assert!(
                !a.calibration.expect("active tags too").applied,
                "{name}: nothing to apply on cold cells"
            );
        }
    }
}

#[test]
fn off_and_cold_calibration_are_bit_for_bit_the_uncalibrated_engine() {
    equivalence_sweep(&[Dataset::Benchmark]);
}

#[test]
fn warm_shadow_flags_but_never_flips_the_verdict() {
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let base = Selector::new(Platform::power9_v100()).decide(&kernel, &b);

    let cal = Arc::new(Calibrator::new(eager_config()));
    let shadow = Selector::new(Platform::power9_v100())
        .with_calibration(CalibrationMode::Shadow)
        .with_calibrator(Arc::clone(&cal));
    let tag0 = shadow.decide(&kernel, &b).calibration.unwrap();
    let raw = if base.device == Device::Gpu {
        tag0.raw_gpu_s.unwrap()
    } else {
        tag0.raw_cpu_s.unwrap()
    };

    // Teach the calibrator that the chosen side is catastrophically
    // mispredicted — a correction that would flip the verdict.
    let flips_before = hetsel_obs::registry()
        .counter("hetsel.core.calib.shadow_flip")
        .get();
    cal.observe(&kernel.name, &base.device_name, tag0.class, raw, raw * 1e3);

    let d = shadow.decide(&kernel, &b);
    assert!(
        same_verdict(&base, &d),
        "shadow mode must never alter the verdict"
    );
    let tag = d.calibration.unwrap();
    assert!(tag.flipped, "the would-be flip is recorded");
    assert!(!tag.applied, "but nothing was applied");
    assert!(
        hetsel_obs::registry()
            .counter("hetsel.core.calib.shadow_flip")
            .get()
            > flips_before,
        "shadow flips are counted"
    );
}

#[test]
fn constant_bias_oracle_converges_and_flips_through_the_engine() {
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let cal = Arc::new(Calibrator::new(CalibratorConfig {
        min_samples: 3,
        max_abs_log: f64::INFINITY,
        ..CalibratorConfig::default()
    }));
    let selector = Selector::new(Platform::power9_v100())
        .with_calibration(CalibrationMode::Active)
        .with_calibrator(Arc::clone(&cal));
    let engine = DecisionEngine::new(selector, std::slice::from_ref(&kernel));

    let d0 = engine.decide("gemm", &b).unwrap();
    let tag0 = d0.calibration.unwrap();
    assert!(!tag0.applied, "cold engine applies nothing");
    let raw = if d0.device == Device::Gpu {
        tag0.raw_gpu_s.unwrap()
    } else {
        tag0.raw_cpu_s.unwrap()
    };

    // Constant-bias oracle: the chosen side actually runs 50x slower
    // than the model predicts, every time.
    let epoch0 = cal.epoch();
    for _ in 0..6 {
        cal.observe("gemm", &d0.device_name, tag0.class, raw, raw * 50.0);
    }
    assert!(
        cal.epoch() > epoch0,
        "a published correction bumps the epoch (lazy cache invalidation)"
    );

    let flips_before = hetsel_obs::registry()
        .counter("hetsel.core.calib.flip")
        .get();
    hetsel_obs::set_flight_recording(true);
    let d1 = engine.decide("gemm", &b).unwrap();
    hetsel_obs::set_flight_recording(false);

    assert_ne!(d0.device, d1.device, "the correction flips the verdict");
    let tag1 = d1.calibration.unwrap();
    assert!(tag1.applied && tag1.flipped);
    let factor = if d0.device == Device::Gpu {
        tag1.gpu_factor
    } else {
        tag1.cpu_factor
    };
    assert!(
        ((factor - 50.0) / 50.0).abs() < 1e-9,
        "correction converged to the oracle's bias, got {factor}"
    );
    assert!(
        hetsel_obs::registry()
            .counter("hetsel.core.calib.flip")
            .get()
            > flips_before,
        "active flips are counted"
    );
    assert!(
        hetsel_obs::flight_recorder()
            .snapshot()
            .iter()
            .any(|e| e.kind == hetsel_obs::EventKind::CalibrationFlip && e.region_str() == "gemm"),
        "the flip is in the flight recorder"
    );
}

#[test]
fn epoch_movement_invalidates_lazily_not_per_sample() {
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let cal = Arc::new(Calibrator::default());
    let selector = Selector::new(Platform::power9_v100())
        .with_calibration(CalibrationMode::Active)
        .with_calibrator(Arc::clone(&cal));
    let engine = DecisionEngine::new(selector, std::slice::from_ref(&kernel));

    engine.decide("gemm", &b).unwrap();
    engine.decide("gemm", &b).unwrap();
    let warm = engine.stats();
    assert_eq!((warm.hits, warm.misses), (1, 1), "second decide is a hit");

    // Below the default gate (min_samples 3): samples fold, nothing
    // publishes, cached decisions keep answering.
    let epoch0 = cal.epoch();
    cal.observe("gemm", "host", hetsel_core::BindingClass::of(&b), 1.0, 2.0);
    assert_eq!(cal.epoch(), epoch0, "one sample publishes nothing");
    engine.decide("gemm", &b).unwrap();
    assert_eq!(
        engine.stats().hits,
        warm.hits + 1,
        "still the cached verdict"
    );
}

#[test]
#[ignore = "release-mode stress sweep (CI: --ignored stress)"]
fn stress_calibration_equivalence_across_every_dataset() {
    equivalence_sweep(&[Dataset::Mini, Dataset::Test, Dataset::Benchmark]);
}

#[test]
#[ignore = "release-mode stress sweep (CI: --ignored stress)"]
fn stress_warm_shadow_never_alters_any_suite_verdict() {
    // Deterministically perturb every (kernel, device) cell, then verify
    // Shadow still reproduces the Off verdicts across the whole suite.
    let platform = Platform::power9_v100();
    let off = Selector::new(platform.clone());
    let cal = Arc::new(Calibrator::new(eager_config()));
    let shadow = Selector::new(platform)
        .with_calibration(CalibrationMode::Shadow)
        .with_calibrator(Arc::clone(&cal));
    let mut lcg: u64 = 0x9e37_79b9_7f4a_7c15;
    for (name, kernel, binding) in all_kernels() {
        for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
            let b = binding(ds);
            let base = off.decide(&kernel, &b);
            if let Some(tag) = shadow.decide(&kernel, &b).calibration {
                // Bias both sides by pseudo-random factors in [1/8, 8].
                for (label, raw) in [("host", tag.raw_cpu_s), ("gpu", tag.raw_gpu_s)] {
                    if let Some(raw) = raw {
                        lcg = lcg
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let bias = ((lcg >> 40) as f64 / (1u64 << 24) as f64) * 6.0 - 3.0;
                        cal.observe(name, label, tag.class, raw, raw * bias.exp2());
                    }
                }
            }
            let d = shadow.decide(&kernel, &b);
            assert!(
                same_verdict(&base, &d),
                "{name}/{ds:?}: warm shadow altered the verdict"
            );
        }
    }
}
