//! Property tests for the `DecisionRequest` serialization contract:
//! every request — any region name, any binding, any policy override, any
//! deadline — must survive a JSON round trip bit for bit, and the JSON
//! shape must match what DESIGN.md documents
//! (`{"region", "binding", "policy_override", "deadline_ns"}`).

use std::time::Duration;

use hetsel_core::{DecisionRequest, Policy};
use hetsel_ir::Binding;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

fn region() -> BoxedStrategy<String> {
    select(vec![
        "gemm".to_string(),
        "atax.k1".to_string(),
        "jacobi-2d.a".to_string(),
        "r".to_string(),
        "a-very-long-region-name-with-dashes".to_string(),
    ])
    .boxed()
}

fn binding() -> BoxedStrategy<Binding> {
    let entry = (select(vec!["n", "m", "ni", "nj", "tsteps"]), -1i64..1 << 40);
    vec(entry, 0..5)
        .prop_map(|pairs| {
            let mut b = Binding::new();
            for (name, value) in pairs {
                b.set(name, value);
            }
            b
        })
        .boxed()
}

fn policy() -> BoxedStrategy<Option<Policy>> {
    prop_oneof![
        Just(None),
        Just(Some(Policy::ModelDriven)),
        Just(Some(Policy::AlwaysHost)),
        Just(Some(Policy::AlwaysOffload)),
    ]
    .boxed()
}

fn request() -> BoxedStrategy<DecisionRequest> {
    (region(), binding(), policy(), 0u64..u64::MAX / 2)
        .prop_map(|(region, binding, policy, deadline_ns)| {
            let mut request = DecisionRequest::new(region, binding);
            if let Some(p) = policy {
                request = request.with_policy(p);
            }
            // Odd nanosecond budgets double as the "no deadline" case so
            // both shapes are exercised.
            if deadline_ns % 2 == 0 {
                request = request.with_deadline(Duration::from_nanos(deadline_ns));
            }
            request
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_round_trips_through_json(request in request()) {
        let json = serde_json::to_string(&request).expect("serializes");
        let back: DecisionRequest = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(&back, &request);

        // The documented schema shape: all four keys present.
        for key in ["\"region\"", "\"binding\"", "\"policy_override\"", "\"deadline_ns\""] {
            prop_assert!(json.contains(key), "missing {} in {}", key, json);
        }
        // And the override is stored as the policy's stable name.
        if let Some(p) = request.policy_override() {
            prop_assert!(json.contains(p.name()), "{}", json);
        }
    }

    #[test]
    fn cleared_overrides_round_trip_as_plain_requests(request in request()) {
        // `without_policy` / `without_deadline` are the documented inverses
        // of their `with_*` builders: clearing both must produce a request
        // that (a) reports no overrides, (b) equals the never-overridden
        // construction, and (c) still round-trips through JSON bit for bit.
        let cleared = request.clone().without_policy().without_deadline();
        prop_assert!(cleared.policy_override().is_none());
        prop_assert!(cleared.deadline().is_none());
        let plain = DecisionRequest::new(
            request.region().to_string(),
            request.binding().clone(),
        );
        prop_assert_eq!(&cleared, &plain);
        let json = serde_json::to_string(&cleared).expect("serializes");
        let back: DecisionRequest = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(&back, &cleared);
    }

    #[test]
    fn serialization_is_deterministic(request in request()) {
        // Bindings are ordered maps and every field renders canonically, so
        // equal requests must produce byte-identical JSON (the property the
        // decision cache's key discipline relies on).
        let a = serde_json::to_string(&request).expect("serializes");
        let b = serde_json::to_string(&request.clone()).expect("serializes");
        prop_assert_eq!(a, b);
    }
}

/// The deadline values where the `u128 → u64` nanosecond conversion, the
/// zero-budget fast path, and `Duration`'s own resolution all meet.
fn edge_deadline() -> BoxedStrategy<Duration> {
    prop_oneof![
        Just(Duration::ZERO),
        Just(Duration::from_nanos(1)),
        Just(Duration::from_nanos(999)),
        Just(Duration::from_nanos(u64::MAX - 1)),
        Just(Duration::from_nanos(u64::MAX)),
        (0u64..u64::MAX).prop_map(Duration::from_nanos),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn deadline_edges_round_trip_exactly(deadline in edge_deadline()) {
        // Everything representable in u64 nanoseconds — including the
        // 0 ns "no budget" sentinel and the u64::MAX-adjacent extremes —
        // survives the JSON round trip bit for bit.
        let request = DecisionRequest::new("gemm", Binding::new().with("n", 64))
            .with_deadline(deadline);
        let json = serde_json::to_string(&request).expect("serializes");
        prop_assert!(
            json.contains(&deadline.as_nanos().to_string()),
            "deadline_ns missing from {}",
            json
        );
        let back: DecisionRequest = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(back.deadline(), Some(deadline));
    }

    #[test]
    fn oversized_deadlines_saturate_to_u64_max_ns(
        extra_secs in 0u64..1_000_000,
        extra_ns in 0u32..1_000_000_000,
    ) {
        // `Duration` holds up to u64::MAX whole seconds — far beyond the
        // u64 nanosecond wire field. Serialization must saturate, not
        // wrap, and the saturated value must be a round-trip fixpoint.
        let beyond = Duration::new(u64::MAX / 1_000_000_000 + 1 + extra_secs, extra_ns);
        prop_assert!(beyond.as_nanos() > u128::from(u64::MAX));
        let request = DecisionRequest::new("gemm", Binding::new()).with_deadline(beyond);
        let json = serde_json::to_string(&request).expect("serializes");
        let back: DecisionRequest = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(back.deadline(), Some(Duration::from_nanos(u64::MAX)));
        // Fixpoint: re-serializing the clamped request changes nothing.
        let json2 = serde_json::to_string(&back).expect("serializes");
        let back2: DecisionRequest = serde_json::from_str(&json2).expect("parses");
        prop_assert_eq!(back2, back);
    }

    #[test]
    fn float_built_deadlines_add_no_loss_beyond_duration_truncation(raw in 0u64..(1u64 << 53)) {
        // Budgets often originate as float seconds (config files, CLI
        // flags). `Duration::from_secs_f64` already truncates below one
        // nanosecond; the wire format must not lose anything further —
        // the truncated duration round-trips exactly.
        let seconds = raw as f64 / 1e9; // sub-nanosecond bits present
        let deadline = Duration::from_secs_f64(seconds);
        let request = DecisionRequest::new("gemm", Binding::new()).with_deadline(deadline);
        let json = serde_json::to_string(&request).expect("serializes");
        let back: DecisionRequest = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(back.deadline(), Some(deadline));
    }
}

#[test]
fn corrupt_documents_are_rejected() {
    let good =
        serde_json::to_string(&DecisionRequest::new("gemm", Binding::new().with("n", 64))).unwrap();
    let back: DecisionRequest = serde_json::from_str(&good).unwrap();
    assert_eq!(back.region(), "gemm");

    // Unknown policy name.
    let bad = good.replace("null", "\"turbo_mode\"");
    assert!(serde_json::from_str::<DecisionRequest>(&bad).is_err());
    // Not an object at all.
    assert!(serde_json::from_str::<DecisionRequest>("[1,2]").is_err());
    assert!(serde_json::from_str::<DecisionRequest>("not json").is_err());
}
