//! Satellite pin: one interned fleet label is the single source of truth
//! for every spelling of a device's name — the decision, the explain
//! struct and its JSON, the metric names, and the dispatch outcome. A
//! custom label must show up verbatim in all of them, and the hot-path
//! carriers must share the very same `Arc<str>` allocation (no copy can
//! ever drift from the registered spelling).

use hetsel_core::{
    DecisionEngine, DecisionRequest, Device, DeviceId, Dispatcher, DispatcherConfig, Fleet,
    Platform, Selector,
};
use hetsel_polybench::{find_kernel, Dataset};
use std::sync::Arc;

#[test]
fn one_interned_label_names_the_device_everywhere() {
    let platform = Platform::power9_v100();
    let fleet = Fleet::pair_labeled(&platform, "v100");
    let label: Arc<str> = fleet.label_arc(DeviceId(1)).expect("accel exists").clone();
    let (kernel, binding) = find_kernel("gemm").expect("gemm is in the suite");
    let b = binding(Dataset::Benchmark);
    let engine = DecisionEngine::new(
        Selector::new(platform).with_fleet(fleet),
        std::slice::from_ref(&kernel),
    );

    let reg = hetsel_obs::registry();
    let decisions_before = reg.counter("hetsel.core.decisions.v100").get();

    // The decision's name IS the registered label, pointer-for-pointer,
    // and the decision counter is named after the same spelling.
    let d = engine.decide("gemm", &b).expect("gemm is known");
    assert_eq!(d.device, Device::Gpu, "gemm offloads under Benchmark");
    assert!(
        Arc::ptr_eq(&d.device_name, &label),
        "label was re-allocated"
    );
    assert_eq!(
        reg.counter("hetsel.core.decisions.v100").get(),
        decisions_before + 1,
        "decision counter is not derived from the fleet label"
    );

    // The explain struct and its JSON rendering spell it identically.
    let e = engine.explain("gemm", &b).expect("gemm is known");
    assert_eq!(e.device_name, "v100");
    assert!(e
        .devices
        .iter()
        .any(|p| p.name == "v100" && p.kind == "accelerator"));
    let report = hetsel_core::ExplainReport {
        platform: "POWER9 + V100 (NVLink2)".to_string(),
        dataset: "benchmark".to_string(),
        explanations: vec![e],
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("v100"), "label missing from explain JSON");
    hetsel_core::validate_report_json(&json).expect("explain JSON validates");

    // The dispatcher's outcome, its breaker metrics, and the per-device
    // accuracy/flight-recorder counters all reuse the label.
    let dispatcher = Dispatcher::new(engine, DispatcherConfig::default());
    hetsel_obs::set_flight_recording(true);
    let flight_before = reg.counter("hetsel.core.flight.v100.events").get();
    let samples_before = reg.counter("hetsel.core.accuracy.v100.samples").get();
    let outcome = dispatcher
        .dispatch(&DecisionRequest::new("gemm", b))
        .expect("dispatch succeeds");
    hetsel_obs::set_flight_recording(false);
    assert!(Arc::ptr_eq(&outcome.device_name, &label));
    assert_eq!(
        reg.counter("hetsel.core.flight.v100.events").get(),
        flight_before + 1,
        "flight event counter is not derived from the fleet label"
    );
    assert_eq!(
        reg.counter("hetsel.core.accuracy.v100.samples").get(),
        samples_before + 1,
        "accuracy sample counter is not derived from the fleet label"
    );
    assert!(
        hetsel_obs::accuracy().lookup("gemm", "v100").is_some(),
        "observatory rows are keyed by the registered label"
    );
    assert!(
        hetsel_obs::flight_recorder()
            .drain()
            .iter()
            .any(|ev| ev.device == 1 && ev.region_str() == "gemm"),
        "drained flight events carry the dispatched region and device id"
    );
    dispatcher.publish_health_all();
    let snapshot = reg.snapshot();
    let gauges: Vec<&str> = snapshot.gauges.iter().map(|(n, _)| n.as_str()).collect();
    assert!(gauges.contains(&"hetsel.core.breaker.v100.state"));
    assert!(gauges.contains(&"hetsel.core.breaker.host.state"));
}
