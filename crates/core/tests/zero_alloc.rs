//! Proof that a cache-hit `decide` performs **zero heap allocations**.
//!
//! A counting global allocator tallies every `alloc`/`realloc`/
//! `alloc_zeroed` on a per-thread counter; the test primes the engine (the
//! miss populates the cache and first hits initialise every lazily-created
//! metric), snapshots the counter, runs a burst of cache-hit decides, and
//! asserts the counter did not move. This pins the whole hot-path design:
//! the inline-slot `CacheKey` with its precomputed hash, the intrusive
//! index-linked LRU (no key clones, no queue records), and the `Arc<str>`
//! region name that makes `Decision::clone` pointer-copy only.
//!
//! The counter is thread-local so the libtest harness's own threads cannot
//! perturb the measurement.
//!
//! The flight recorder must not regress this: with recording *disabled*
//! (the default — the two original tests) the hot path pays one relaxed
//! load; with recording *enabled* the event is written into the
//! preallocated lock-free ring, so even the instrumented path stays
//! allocation-free once the ring's one-time `Box` exists.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

use hetsel_core::{
    CalibrationMode, Calibrator, CalibratorConfig, DecisionEngine, DecisionRequest, DeviceId,
    Dispatcher, DispatcherConfig, Fleet, Platform, Selector,
};
use hetsel_polybench::{find_kernel, Dataset};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn count_one() {
    ALLOCS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn cache_hit_decide_allocates_nothing() {
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let engine = DecisionEngine::new(
        Selector::new(Platform::power9_v100()),
        std::slice::from_ref(&kernel),
    );

    // Prime: the first call misses (evaluates the models, inserts, and
    // creates every lazily-initialised counter/histogram); the next calls
    // hit and warm whatever the hit path touches lazily.
    let first = engine.decide("gemm", &b).expect("gemm is known");
    assert!(
        first.cpu_error.is_none() && first.gpu_error.is_none(),
        "fully-bound gemm must produce clean predictions: {first:?}"
    );
    for _ in 0..3 {
        engine.decide("gemm", &b).expect("primed hit");
    }

    let before = allocs_on_this_thread();
    let mut last = None;
    for _ in 0..1000 {
        last = engine.decide("gemm", &b);
    }
    let after = allocs_on_this_thread();

    assert_eq!(
        after - before,
        0,
        "cache-hit decide must not allocate (1000 hits allocated {} times)",
        after - before
    );
    // The burst really was answering from the cache, bit-identically.
    assert_eq!(last.expect("hit"), first);
    let stats = engine.stats();
    assert_eq!(stats.misses, 1);
    assert!(stats.hits >= 1003);
}

#[test]
fn cache_hit_decide_with_flight_recorder_enabled_allocates_nothing() {
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let engine = DecisionEngine::new(
        Selector::new(Platform::power9_v100()),
        std::slice::from_ref(&kernel),
    );

    // Prime the ring's one-time slot allocation, the cache entry, and
    // every lazily-created metric before counting.
    let recorder = hetsel_obs::flight_recorder();
    hetsel_obs::set_flight_recording(true);
    let first = engine.decide("gemm", &b).expect("gemm is known");
    for _ in 0..3 {
        engine.decide("gemm", &b).expect("primed hit");
    }

    let recorded_before = recorder.total_recorded();
    let before = allocs_on_this_thread();
    let mut last = None;
    for _ in 0..1000 {
        last = engine.decide("gemm", &b);
    }
    let after = allocs_on_this_thread();
    hetsel_obs::set_flight_recording(false);

    assert_eq!(
        after - before,
        0,
        "recorded cache-hit decide must not allocate (1000 hits allocated {} times)",
        after - before
    );
    assert_eq!(last.expect("hit"), first);
    assert!(
        recorder.total_recorded() >= recorded_before + 1000,
        "the burst really was recorded, not silently dropped"
    );
}

#[test]
fn calibrated_cache_hit_decide_allocates_nothing() {
    // Active calibration must not tax the hit path: the per-decide cost is
    // one relaxed epoch load folded into the cache key. Corrections are
    // resolved only on misses, so a warm engine with *published* (epoch >
    // 0) corrections answers hits exactly as allocation-free as an
    // uncalibrated one.
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let calibrator = std::sync::Arc::new(Calibrator::new(CalibratorConfig {
        min_samples: 1,
        ..CalibratorConfig::default()
    }));
    let engine = DecisionEngine::new(
        Selector::new(Platform::power9_v100())
            .with_calibration(CalibrationMode::Active)
            .with_calibrator(std::sync::Arc::clone(&calibrator)),
        std::slice::from_ref(&kernel),
    );

    // Warm a real correction so the stamped epoch is nonzero, then prime
    // the post-publication cache entry and the lazily-created metrics.
    let cold = engine.decide("gemm", &b).expect("gemm is known");
    let tag = cold.calibration.expect("active mode tags decisions");
    let raw = tag.raw_cpu_s.expect("fully-bound gemm predicts the host");
    calibrator.observe("gemm", "host", tag.class, raw, raw * 1.5);
    assert!(calibrator.epoch() > 0, "the correction published");
    let first = engine.decide("gemm", &b).expect("gemm is known");
    assert!(
        first.calibration.expect("tagged").applied,
        "the burst below must exercise the corrected path"
    );
    for _ in 0..3 {
        engine.decide("gemm", &b).expect("primed hit");
    }

    let before = allocs_on_this_thread();
    let mut last = None;
    for _ in 0..1000 {
        last = engine.decide("gemm", &b);
    }
    let after = allocs_on_this_thread();

    assert_eq!(
        after - before,
        0,
        "calibrated cache-hit decide must not allocate (1000 hits allocated {} times)",
        after - before
    );
    assert_eq!(last.expect("hit"), first);
}

#[test]
fn scoped_cache_hit_decide_allocates_nothing() {
    // The fleet generalization must not have bought its `(region, device)`
    // cache key at the price of hot-path allocations: a `decide_for` hit
    // on a multi-accelerator fleet is as allocation-free as `decide`.
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let platform = Platform::power9_v100();
    let fleet = Fleet::pair_labeled(&platform, "v100")
        .with_accelerator_from("k80", &Platform::power8_k80());
    let scope = fleet.device_id_of("k80").expect("k80 is registered");
    let engine = DecisionEngine::new(
        Selector::new(platform).with_fleet(fleet),
        std::slice::from_ref(&kernel),
    );

    let first = engine
        .decide_for("gemm", &b, scope)
        .expect("gemm is known and k80 has a compiled model");
    assert_eq!(first.device_id, scope);
    for _ in 0..3 {
        engine.decide_for("gemm", &b, scope).expect("primed hit");
    }
    // The whole-fleet and host-scoped entries live under different keys in
    // the same cache; prime them too so the burst below is all hits even
    // if a future change makes the paths share state.
    engine.decide("gemm", &b).expect("gemm is known");
    engine
        .decide_for("gemm", &b, DeviceId::HOST)
        .expect("host scope");

    let before = allocs_on_this_thread();
    let mut last = None;
    for _ in 0..1000 {
        last = engine.decide_for("gemm", &b, scope);
    }
    let after = allocs_on_this_thread();

    assert_eq!(
        after - before,
        0,
        "scoped cache-hit decide must not allocate (1000 hits allocated {} times)",
        after - before
    );
    assert_eq!(last.expect("hit"), first);
}

#[test]
fn dispatch_within_allocates_no_more_than_dispatch() {
    // `dispatch_within` once cloned the whole request just to attach the
    // deadline — region string, binding vector and all. The override is
    // now threaded through the bounded decide path in place, so a warm
    // deadline-carrying dispatch must have exactly the allocation profile
    // of a plain one.
    let (kernel, binding) = find_kernel("gemm").unwrap();
    let b = binding(Dataset::Benchmark);
    let engine = DecisionEngine::new(
        Selector::new(Platform::power9_v100()),
        std::slice::from_ref(&kernel),
    );
    let dispatcher = Dispatcher::new(engine, DispatcherConfig::default());
    let request = DecisionRequest::new("gemm", b);
    // A deadline no warm decision can miss: the decision itself stays
    // un-degraded, so both loops below execute the identical path apart
    // from how the deadline reaches the engine.
    let generous = Duration::from_secs(3600);

    // Prime the cache, the accuracy cells, and every lazily-created
    // metric on both variants before counting.
    for _ in 0..3 {
        dispatcher.dispatch(&request).expect("healthy dispatch");
        dispatcher
            .dispatch_within(&request, generous)
            .expect("healthy bounded dispatch");
    }

    const N: u64 = 200;
    let before = allocs_on_this_thread();
    for _ in 0..N {
        dispatcher.dispatch(&request).expect("healthy dispatch");
    }
    let plain = allocs_on_this_thread() - before;

    let before = allocs_on_this_thread();
    for _ in 0..N {
        dispatcher
            .dispatch_within(&request, generous)
            .expect("healthy bounded dispatch");
    }
    let bounded = allocs_on_this_thread() - before;

    assert_eq!(
        bounded, plain,
        "deadline override must not clone the request ({bounded} allocs over {N} bounded dispatches vs {plain} plain)"
    );
}
