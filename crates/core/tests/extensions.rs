//! Integration tests for the framework extensions working together:
//! profile history layered over split/program planning, and the x86
//! platform driving the full stack.

use std::sync::Arc;

use hetsel_core::{
    best_split, plan_program, AdaptiveSelector, CalibRow, CalibrationMode, Calibrator,
    CalibratorConfig, Device, Platform, ProfileHistory, Selector,
};
use hetsel_ir::Binding;
use hetsel_polybench::{find_kernel, suite, Dataset};

#[test]
fn calibration_survives_serialisation_and_still_decides() {
    let platform = Platform::power9_v100();
    let adaptive = AdaptiveSelector::new(Selector::new(platform.clone()));
    let (kernel, binding) = find_kernel("3dconv").unwrap();
    let b = binding(Dataset::Benchmark);
    adaptive.run_and_learn(&kernel, &b).unwrap();
    assert_eq!(
        adaptive.select(&kernel, &b).device,
        Device::Gpu,
        "learned corrections flip the conv decision in-process"
    );

    // Persist both learning sinks: the raw outcome history and the derived
    // calibration corrections. Restore into a fresh process-equivalent
    // selector and decide again from the restored corrections alone.
    let history_json = serde_json::to_string(&adaptive.history.export()).unwrap();
    let calib_json = serde_json::to_string(&adaptive.selector.calibrator().snapshot()).unwrap();

    let restored_history = ProfileHistory::import(&serde_json::from_str(&history_json).unwrap());
    let rows: Vec<CalibRow> = serde_json::from_str(&calib_json).unwrap();
    let restored_cal = Calibrator::new(CalibratorConfig::greedy());
    restored_cal.absorb(&rows);
    let adaptive2 = AdaptiveSelector {
        selector: Selector::new(platform)
            .with_calibration(CalibrationMode::Active)
            .with_calibrator(Arc::new(restored_cal)),
        history: restored_history,
    };
    let d = adaptive2.select(&kernel, &b);
    assert_eq!(
        d.device,
        Device::Gpu,
        "restored corrections flip the conv decision"
    );
}

#[test]
fn history_is_binding_sensitive() {
    let platform = Platform::power9_v100();
    let adaptive = AdaptiveSelector::new(Selector::new(platform));
    let (kernel, binding) = find_kernel("3dconv").unwrap();
    adaptive
        .run_and_learn(&kernel, &binding(Dataset::Benchmark))
        .unwrap();
    // A different binding is a different configuration: back to the model.
    let d_model = adaptive.select(&kernel, &binding(Dataset::Test));
    let s_model = Selector::new(Platform::power9_v100()).decide(&kernel, &binding(Dataset::Test));
    assert_eq!(d_model.device, s_model.device);
}

#[test]
fn split_and_plan_are_consistent_with_the_binary_selector() {
    let platform = Platform::power9_v100();
    let sel = Selector::new(platform.clone());
    for name in ["gemm", "2dconv", "corr.mean"] {
        let (kernel, binding) = find_kernel(name).unwrap();
        let b = binding(Dataset::Benchmark);
        let d = sel.decide(&kernel, &b);
        let s = best_split(&kernel, &b, &platform, 32).unwrap();
        // The split's endpoints reproduce the binary predictions' ordering.
        let split_prefers_gpu = s.gpu_only_s < s.host_only_s;
        assert_eq!(
            split_prefers_gpu,
            d.device == Device::Gpu,
            "{name}: split endpoints vs selector"
        );
    }
}

#[test]
fn program_plans_exist_for_every_program_on_every_platform() {
    for platform in [
        Platform::power8_k80(),
        Platform::power8_p100(),
        Platform::power9_v100(),
        Platform::xeon_v100(),
    ] {
        for b in suite() {
            let binding = (b.binding)(Dataset::Test);
            let p = plan_program(&b.kernels, &binding, &platform)
                .unwrap_or_else(|| panic!("{}: no plan on {}", b.name, platform.name));
            assert_eq!(p.assignments.len(), b.kernels.len());
            assert!(p.predicted_s.is_finite() && p.predicted_s > 0.0);
        }
    }
}

#[test]
fn xeon_platform_full_stack_on_mini() {
    let platform = Platform::xeon_v100();
    let sel = Selector::new(platform);
    for (_, kernel, binding) in hetsel_polybench::all_kernels() {
        let b = binding(Dataset::Mini);
        let e = sel.evaluate(&kernel, &b).expect("xeon stack runs");
        assert!(
            e.measured.cpu_s > 0.0 && e.measured.gpu_s > 0.0,
            "{}",
            kernel.name
        );
    }
}

#[test]
fn unresolved_program_returns_none() {
    let platform = Platform::power9_v100();
    let b = suite().remove(0);
    assert!(plan_program(&b.kernels, &Binding::new(), &platform).is_none());
}
