//! The no-fault equivalence contract, in its own test binary.
//!
//! This file must contain exactly one test: it asserts that a healthy
//! dispatcher adds **zero** fault/retry/fallback/breaker counts to the
//! process-wide metrics registry, and the registry is shared by every test
//! in a binary — a sibling test injecting faults in another thread would
//! make the assertion racy. One test per process makes it exact.

use hetsel_core::{
    BreakerState, DecisionEngine, DecisionRequest, Device, Dispatcher, DispatcherConfig, Platform,
    Selector,
};
use hetsel_ir::Kernel;
use hetsel_polybench::{suite, Dataset};

#[test]
fn p0_dispatch_is_decide_plus_one_run_with_zero_added_counters() {
    let kernels: Vec<Kernel> = suite().into_iter().flat_map(|b| b.kernels).collect();
    let reference = DecisionEngine::new(Selector::new(Platform::power9_v100()), &kernels);
    let dispatcher = Dispatcher::new(
        DecisionEngine::new(Selector::new(Platform::power9_v100()), &kernels),
        DispatcherConfig::default(),
    );

    let registry = hetsel_obs::registry();
    let watched = [
        "hetsel.core.dispatch.retries",
        "hetsel.core.dispatch.faults.gpu",
        "hetsel.core.dispatch.faults.host",
        "hetsel.core.dispatch.fallback.deadline_exceeded",
        "hetsel.core.dispatch.fallback.breaker_open",
        "hetsel.core.dispatch.fallback.device_fault",
        "hetsel.core.breaker.gpu.trip",
        "hetsel.core.breaker.host.trip",
    ];
    let before: Vec<u64> = watched.iter().map(|n| registry.counter(n).get()).collect();

    // Two passes per key: the second pass exercises the cache-hit path,
    // where the zero-added-counters claim matters most.
    for _pass in 0..2 {
        for bench in suite() {
            for ds in [Dataset::Mini, Dataset::Test, Dataset::Benchmark] {
                let binding = (bench.binding)(ds);
                for k in &bench.kernels {
                    let expected = reference.decide(&k.name, &binding).expect("known region");
                    let outcome = dispatcher
                        .dispatch(&DecisionRequest::new(&k.name, binding.clone()))
                        .expect("healthy dispatch completes");
                    assert_eq!(
                        outcome.decision, expected,
                        "{} {ds}: p=0 dispatch decision diverged from decide",
                        k.name
                    );
                    assert_eq!(outcome.device, expected.device);
                    assert!(outcome.clean(), "{} {ds}: {outcome:?}", k.name);
                }
            }
        }
    }

    for (name, before) in watched.iter().zip(before) {
        assert_eq!(
            registry.counter(name).get(),
            before,
            "`{name}` moved under a no-fault dispatcher"
        );
    }
    assert_eq!(dispatcher.breaker_state(Device::Gpu), BreakerState::Closed);
    assert_eq!(dispatcher.breaker_state(Device::Host), BreakerState::Closed);
    // The engines took identical decision paths: same hit/miss accounting.
    assert_eq!(dispatcher.engine().stats().misses, reference.stats().misses);
}
