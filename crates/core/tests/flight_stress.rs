//! Release-mode soak: the flight recorder must never block the decide hot
//! path. Eight threads hammer `decide_batch` with recording enabled while
//! a drainer thread concurrently snapshots and drains the ring — the
//! recorder's per-slot seqlock makes writers wait-free (a torn slot is
//! skipped by readers, never retried by writers), so the soak passing
//! under `--release` (where weak-memory reorderings actually happen) pins
//! that claim.
//!
//! Run with the other soaks: `cargo test --release -p hetsel-core --
//! --ignored stress`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use hetsel_core::{DecisionEngine, DecisionRequest, Platform, Selector};
use hetsel_ir::Kernel;
use hetsel_polybench::Dataset;

#[test]
#[ignore = "release-mode soak; run via `cargo test --release -- --ignored stress`"]
fn stress_flight_recorder_never_blocks_decide_batch() {
    let kernels: Vec<Kernel> = hetsel_polybench::suite()
        .into_iter()
        .flat_map(|b| b.kernels)
        .collect();
    let requests: Vec<DecisionRequest> = hetsel_polybench::suite()
        .into_iter()
        .flat_map(|b| {
            let binding = (b.binding)(Dataset::Benchmark);
            b.kernels
                .into_iter()
                .map(move |k| DecisionRequest::new(k.name.clone(), binding.clone()))
        })
        .collect();
    let engine = Arc::new(DecisionEngine::new(
        Selector::new(Platform::power9_v100()),
        &kernels,
    ));

    let recorder = hetsel_obs::flight_recorder();
    let recorded_before = recorder.total_recorded();
    hetsel_obs::set_flight_recording(true);

    let stop = Arc::new(AtomicBool::new(false));
    let drainer = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let recorder = hetsel_obs::flight_recorder();
            let mut drained = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Non-destructive peek, then a destructive drain: both run
                // concurrently with eight writer threads.
                let _peek = recorder.snapshot();
                drained += recorder.drain().len() as u64;
            }
            drained += recorder.drain().len() as u64;
            drained
        })
    };

    let threads = 8;
    let rounds = 2_000;
    let expected: Vec<Option<_>> = requests.iter().map(|r| engine.decide_request(r)).collect();
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let requests = requests.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                for _ in 0..rounds {
                    let got = engine.decide_batch(&requests);
                    assert_eq!(got, expected, "recording must not corrupt decisions");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("a decide_batch worker panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let drained = drainer.join().expect("the drainer panicked");
    hetsel_obs::set_flight_recording(false);

    // Every batch over R regions appends R decide events; with the
    // concurrent drainer racing the ring's wrap-around some may be
    // overwritten before being read, but the recorder's own tally counts
    // every append.
    let appended = recorder.total_recorded() - recorded_before;
    let floor = threads as u64 * rounds as u64 * requests.len() as u64;
    assert!(
        appended >= floor,
        "expected at least {floor} recorded events, saw {appended}"
    );
    assert!(drained > 0, "the drainer observed live traffic");
}
