//! # hetsel-fault — seeded, deterministic device-fault injection
//!
//! The dispatch runtime's robustness story needs an adversary: devices that
//! fail, sometimes for one request (transient), sometimes for good
//! (permanent), and devices whose latency spikes. Real hardware faults are
//! not reproducible; this crate provides their simulation-grade stand-in —
//! a [`FaultPlan`] that, given a draw sequence number, deterministically
//! decides whether an execution attempt faults and how much latency jitter
//! a successful one absorbs.
//!
//! Determinism is the load-bearing property: a draw is a pure function of
//! `(plan.seed, sequence_number)`, so a single-threaded dispatch run with a
//! fixed seed produces a bit-for-bit identical outcome sequence every time
//! — the property the fault-injection soak asserts. Concurrent runs stay
//! *individually* deterministic per draw; only the interleaving of sequence
//! numbers varies.
//!
//! The generator is SplitMix64 (Steele, Lea, Flood — "Fast splittable
//! pseudorandom number generators", OOPSLA 2014): one multiply-xorshift
//! chain per draw, no state to share or lock.

#![warn(missing_docs)]

use std::fmt;

/// How an injected fault behaves.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The attempt fails, but a retry of the same request may succeed —
    /// the model for ECC hiccups, evicted contexts, transient driver
    /// errors.
    Transient,
    /// The device is gone for this request: retries on the same device are
    /// pointless and the dispatcher must fail over.
    Permanent,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::Permanent => write!(f, "permanent"),
        }
    }
}

/// An injected device fault: the typed error a fault-wrapped simulator call
/// returns instead of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceFault {
    /// Which device faulted (`"host"` or `"gpu"` by convention).
    pub device: &'static str,
    /// Transient or permanent.
    pub kind: FaultKind,
    /// The draw sequence number that produced the fault (ties the fault
    /// back to the deterministic draw that injected it).
    pub seq: u64,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault on {} (draw #{})",
            self.kind, self.device, self.seq
        )
    }
}

impl std::error::Error for DeviceFault {}

/// Why a fault-wrapped simulator call produced no run.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedFailure {
    /// The fault plan injected a failure for this attempt.
    Fault(DeviceFault),
    /// The simulator itself could not run the kernel (unresolved binding,
    /// empty iteration space) — a modelling limitation, *not* an injected
    /// fault, and therefore not something a circuit breaker should count.
    Unresolvable,
}

impl InjectedFailure {
    /// The injected fault, when this failure is one.
    pub fn fault(&self) -> Option<&DeviceFault> {
        match self {
            InjectedFailure::Fault(f) => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for InjectedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedFailure::Fault(fault) => fault.fmt(f),
            InjectedFailure::Unresolvable => {
                write!(
                    f,
                    "simulator could not resolve the kernel under this binding"
                )
            }
        }
    }
}

impl std::error::Error for InjectedFailure {}

/// What one deterministic draw decided for an execution attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDraw {
    /// `Some(kind)` — the attempt faults; `None` — it proceeds.
    pub fault: Option<FaultKind>,
    /// Latency jitter added to a successful attempt, seconds
    /// (`0.0 ≤ jitter_s ≤ plan.max_jitter_s`).
    pub jitter_s: f64,
}

/// A seeded fault-injection plan for one device.
///
/// Probabilities are per *attempt*: each draw independently faults with
/// probability `transient_prob + permanent_prob` (permanent wins the
/// overlap). [`FaultPlan::none`] is the identity plan — it never faults,
/// never jitters, and wrapped simulator calls under it are bit-for-bit
/// identical to unwrapped ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic draw stream.
    pub seed: u64,
    /// Probability an attempt fails transiently, in `[0, 1]`.
    pub transient_prob: f64,
    /// Probability an attempt fails permanently, in `[0, 1]`.
    pub permanent_prob: f64,
    /// Upper bound of the uniform latency jitter added to successful
    /// attempts, seconds.
    pub max_jitter_s: f64,
}

impl Default for FaultPlan {
    /// The default plan is the identity plan ([`FaultPlan::none`]).
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The identity plan: no faults, no jitter.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            transient_prob: 0.0,
            permanent_prob: 0.0,
            max_jitter_s: 0.0,
        }
    }

    /// A plan injecting transient faults with probability `p`.
    pub fn transient(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_prob: p,
            permanent_prob: 0.0,
            max_jitter_s: 0.0,
        }
    }

    /// A plan injecting permanent faults with probability `p`.
    pub fn permanent(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_prob: 0.0,
            permanent_prob: p,
            max_jitter_s: 0.0,
        }
    }

    /// Builder-style jitter bound.
    pub fn with_jitter(mut self, max_jitter_s: f64) -> FaultPlan {
        self.max_jitter_s = max_jitter_s;
        self
    }

    /// True iff this plan can never alter an execution: no fault
    /// probability and no jitter. The dispatcher uses this to skip the
    /// draw-sequence increment entirely, keeping the healthy path
    /// bit-for-bit independent of fault machinery.
    pub fn is_none(&self) -> bool {
        self.transient_prob <= 0.0 && self.permanent_prob <= 0.0 && self.max_jitter_s <= 0.0
    }

    /// The deterministic draw for sequence number `seq`: a pure function of
    /// `(self.seed, seq)` — no interior state, safe to call from any
    /// thread, identical across processes.
    pub fn draw(&self, seq: u64) -> FaultDraw {
        let mut rng = FaultRng::for_draw(self.seed, seq);
        let u = rng.next_unit();
        let fault = if u < self.permanent_prob.clamp(0.0, 1.0) {
            Some(FaultKind::Permanent)
        } else if u < (self.permanent_prob + self.transient_prob).clamp(0.0, 1.0) {
            Some(FaultKind::Transient)
        } else {
            None
        };
        let jitter_s = if self.max_jitter_s > 0.0 {
            rng.next_unit() * self.max_jitter_s
        } else {
            0.0
        };
        FaultDraw { fault, jitter_s }
    }
}

/// SplitMix64: the draw stream generator. Public so the sweep harness and
/// soak tests can derive auxiliary deterministic choices (request orders,
/// binding shuffles) from the same seed discipline.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed }
    }

    /// The generator for one `(seed, seq)` draw: the two inputs are mixed
    /// through one scramble round so that nearby sequence numbers land in
    /// unrelated parts of the stream.
    pub fn for_draw(seed: u64, seq: u64) -> FaultRng {
        FaultRng {
            state: scramble(seed ^ scramble(seq.wrapping_add(0x9e3779b97f4a7c15))),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        scramble(self.state)
    }

    /// Next uniform value in `[0, 1)`: the top 53 bits of the stream, the
    /// exact mantissa width of an `f64`, so every representable value is
    /// reachable and the mapping is bit-stable across platforms.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next value in `[0, bound)` (0 for `bound == 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// The SplitMix64 output scramble.
fn scramble(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_in_seed_and_seq() {
        let plan = FaultPlan::transient(42, 0.5).with_jitter(1e-3);
        for seq in 0..100 {
            assert_eq!(plan.draw(seq), plan.draw(seq), "seq {seq}");
        }
        let other_seed = FaultPlan::transient(43, 0.5).with_jitter(1e-3);
        assert!(
            (0..100).any(|s| plan.draw(s) != other_seed.draw(s)),
            "different seeds must produce different streams"
        );
    }

    #[test]
    fn probability_zero_never_faults_probability_one_always() {
        let none = FaultPlan::none();
        let all = FaultPlan::transient(7, 1.0);
        let perm = FaultPlan::permanent(7, 1.0);
        for seq in 0..1000 {
            assert_eq!(none.draw(seq).fault, None);
            assert_eq!(none.draw(seq).jitter_s, 0.0);
            assert_eq!(all.draw(seq).fault, Some(FaultKind::Transient));
            assert_eq!(perm.draw(seq).fault, Some(FaultKind::Permanent));
        }
        assert!(none.is_none());
        assert!(!all.is_none());
        assert!(!FaultPlan::none().with_jitter(1.0).is_none());
    }

    #[test]
    fn fault_rate_tracks_probability() {
        let plan = FaultPlan::transient(1234, 0.3);
        let faults = (0..10_000)
            .filter(|&s| plan.draw(s).fault.is_some())
            .count();
        let rate = faults as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
    }

    #[test]
    fn permanent_wins_the_overlap() {
        let plan = FaultPlan {
            seed: 5,
            transient_prob: 1.0,
            permanent_prob: 1.0,
            max_jitter_s: 0.0,
        };
        for seq in 0..100 {
            assert_eq!(plan.draw(seq).fault, Some(FaultKind::Permanent));
        }
    }

    #[test]
    fn jitter_is_bounded_and_nonnegative() {
        let plan = FaultPlan::none().with_jitter(2.5e-4);
        let plan = FaultPlan { seed: 99, ..plan };
        let mut max_seen = 0.0f64;
        for seq in 0..10_000 {
            let d = plan.draw(seq);
            assert!(d.jitter_s >= 0.0 && d.jitter_s <= 2.5e-4, "{}", d.jitter_s);
            max_seen = max_seen.max(d.jitter_s);
        }
        assert!(max_seen > 1e-4, "jitter never explores its range");
    }

    #[test]
    fn unit_samples_are_in_range_and_spread() {
        let mut rng = FaultRng::new(7);
        let mut below_half = 0usize;
        for _ in 0..10_000 {
            let u = rng.next_unit();
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        assert!((4500..5500).contains(&below_half), "{below_half}");
    }

    #[test]
    fn errors_display_and_implement_error() {
        let fault = DeviceFault {
            device: "gpu",
            kind: FaultKind::Transient,
            seq: 17,
        };
        assert!(fault.to_string().contains("transient"));
        assert!(fault.to_string().contains("gpu"));
        let failure: Box<dyn std::error::Error> = Box::new(InjectedFailure::Fault(fault.clone()));
        assert!(failure.to_string().contains("#17"));
        assert_eq!(InjectedFailure::Fault(fault).fault().unwrap().seq, 17);
        assert!(InjectedFailure::Unresolvable.fault().is_none());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = FaultRng::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
        assert_eq!(rng.next_below(0), 0);
    }
}
