//! Property tests on the GPU simulator: geometry always covers the
//! iteration space, occupancy respects hardware limits, and timing obeys
//! physical monotonicities across random kernels.

use hetsel_gpusim::{occupancy, select, simulate, tesla_k80, tesla_v100};
use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};
use proptest::prelude::*;

fn geometry_devices() -> impl Strategy<Value = u8> {
    0u8..2
}

proptest! {
    /// Geometry covers the space, respects residency caps, and occupancy
    /// stays within device limits for arbitrary iteration counts.
    #[test]
    fn geometry_and_occupancy_invariants(p in 1u64..200_000_000, dev in geometry_devices()) {
        let gpu = if dev == 0 { tesla_v100() } else { tesla_k80() };
        let g = select(&gpu, p);
        prop_assert!(g.total_threads() * g.omp_rep >= p, "{g:?} does not cover {p}");
        prop_assert!(g.blocks >= 1);
        let o = occupancy(&gpu, &g);
        prop_assert!(o.warps_per_sm >= 1);
        prop_assert!(o.warps_per_sm <= gpu.max_warps_per_sm);
        prop_assert!(o.blocks_per_sm <= gpu.max_blocks_per_sm);
        prop_assert!(o.active_sms <= gpu.num_sms);
        prop_assert!(o.waves >= 1);
        // No over-provisioning: at most one extra rep of slack.
        prop_assert!(g.total_threads() * (g.omp_rep.saturating_sub(1)) < p.max(1) + g.total_threads());
    }
}

/// A configurable stencil-ish kernel: stride controls coalescing.
fn strided_kernel(stride_param: bool) -> Kernel {
    let mut kb = KernelBuilder::new("prop-strided");
    let a = kb.array("a", 4, &[Expr::param("n") * Expr::param("s")], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    let idx = if stride_param {
        Expr::param("s") * Expr::var(i)
    } else {
        Expr::var(i)
    };
    let ld = kb.load(a, &[idx]);
    kb.store(y, &[i.into()], cexpr::mul(cexpr::scalar("alpha"), ld));
    kb.end_loop();
    kb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Worse coalescing (bigger stride) never makes the simulated kernel
    /// faster, all else equal.
    #[test]
    fn monotone_in_stride(n in 4096i64..1_000_000, s1 in 1i64..8, ds in 1i64..25) {
        let s2 = s1 + ds;
        let k = strided_kernel(true);
        let gpu = tesla_v100();
        let r1 = simulate(&k, &Binding::new().with("n", n).with("s", s1), &gpu).unwrap();
        let r2 = simulate(&k, &Binding::new().with("n", n).with("s", s2), &gpu).unwrap();
        prop_assert!(
            r2.kernel_s + 1e-12 >= r1.kernel_s,
            "stride {s2} ({}) beat stride {s1} ({})",
            r2.kernel_s,
            r1.kernel_s
        );
    }

    /// The kernel time respects the DRAM roofline and the issue floor.
    #[test]
    fn rooflines_hold(n in 1024i64..4_000_000) {
        let k = strided_kernel(false);
        let gpu = tesla_v100();
        let b = Binding::new().with("n", n).with("s", 1);
        let r = simulate(&k, &b, &gpu).unwrap();
        prop_assert!(r.kernel_s * gpu.mem_bandwidth_gbs * 1e9 + 1.0 >= r.dram_bytes);
        prop_assert!(r.kernel_cycles >= 1.0);
        prop_assert!(r.total_s() > r.kernel_s);
    }

    /// More iterations never run faster.
    #[test]
    fn monotone_in_iterations(n in 1024i64..1_000_000, f in 2i64..5) {
        let k = strided_kernel(false);
        let gpu = tesla_v100();
        let r1 = simulate(&k, &Binding::new().with("n", n).with("s", 1), &gpu).unwrap();
        let r2 = simulate(&k, &Binding::new().with("n", n * f).with("s", 1), &gpu).unwrap();
        prop_assert!(r2.kernel_s + 1e-12 >= r1.kernel_s);
        prop_assert!(r2.transfer_in_s >= r1.transfer_in_s);
    }
}
