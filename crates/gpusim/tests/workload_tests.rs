//! Unit coverage of the GPU workload characterisation's derived
//! quantities: per-warp transactions, stall estimates, and the DRAM
//! stream-deduplication behaviour.

use hetsel_gpusim::{characterize, select, tesla_v100};
use hetsel_ir::{cexpr, Binding, Expr, Kernel, KernelBuilder, Transfer};

fn stencil3(loads: usize) -> Kernel {
    // `loads` taps of a 1-D stencil: same array, offsets 0..loads.
    let mut kb = KernelBuilder::new("stencil");
    let a = kb.array("a", 4, &[Expr::param("n") + Expr::Const(64)], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    let mut acc = kb.load(a, &[Expr::var(i)]);
    for d in 1..loads as i64 {
        acc = cexpr::add(acc, kb.load(a, &[Expr::var(i) + Expr::Const(d)]));
    }
    kb.store(y, &[i.into()], acc);
    kb.end_loop();
    kb.finish()
}

#[test]
fn stencil_taps_share_one_dram_stream() {
    let gpu = tesla_v100();
    let b = Binding::new().with("n", 1 << 22);
    let k1 = stencil3(1);
    let k9 = stencil3(9);
    let g = select(&gpu, 1 << 22);
    let w1 = characterize(&k1, &b, &gpu, &g).unwrap();
    let w9 = characterize(&k9, &b, &gpu, &g).unwrap();
    // Nine taps issue nine times the memory instructions...
    assert_eq!(w9.mem_insts, w1.mem_insts + 8.0);
    // ...but the DRAM traffic grows by far less than 9x: the taps are one
    // stream (offsets within a few elements).
    let d1 = w1.dram_bytes(&g);
    let d9 = w9.dram_bytes(&g);
    assert!(d9 < d1 * 2.0, "d1={d1:.3e} d9={d9:.3e}");
}

#[test]
fn txns_per_warp_iter_counts_weighted_accesses() {
    let gpu = tesla_v100();
    let b = Binding::new().with("n", 1 << 20);
    let k = stencil3(2);
    let g = select(&gpu, 1 << 20);
    let w = characterize(&k, &b, &gpu, &g).unwrap();
    // 3 unit-stride f32 accesses (2 loads + 1 store), 4 txns each at 32 B
    // segments, L1 spatial reuse 1 (no inner loop): 12 transactions.
    assert!(
        (w.txns_per_warp_iter() - 12.0).abs() < 1e-9,
        "{}",
        w.txns_per_warp_iter()
    );
}

#[test]
fn mem_stall_scales_with_latency_and_mlp() {
    let gpu = tesla_v100();
    let b = Binding::new().with("n", 1 << 20);
    let k = stencil3(4);
    let g = select(&gpu, 1 << 20);
    let w = characterize(&k, &b, &gpu, &g).unwrap();
    // 4 independent loads in the innermost block: mlp capped at 4.
    assert_eq!(w.mlp, 4.0);
    let stall = w.mem_stall_per_iter();
    // Stall = sum(load latencies) / mlp; each latency is bounded by DRAM.
    assert!(stall > 0.0);
    assert!(stall <= 4.0 * gpu.mem_latency_cycles / w.mlp + 1e-9);
}

#[test]
fn broadcast_access_is_one_transaction_per_iteration() {
    let mut kb = KernelBuilder::new("bcast");
    let s = kb.array("s", 4, &[Expr::Const(64)], Transfer::In);
    let y = kb.array("y", 4, &["n".into()], Transfer::Out);
    let i = kb.parallel_loop(0, "n");
    let ld = kb.load(s, &[Expr::Const(7)]);
    kb.store(y, &[i.into()], ld);
    kb.end_loop();
    let k = kb.finish();
    let gpu = tesla_v100();
    let b = Binding::new().with("n", 1 << 20);
    let g = select(&gpu, 1 << 20);
    let w = characterize(&k, &b, &gpu, &g).unwrap();
    let bcast = &w.accesses[0];
    assert_eq!(bcast.txns, 1.0);
    // A 256-byte array is trivially L2 (indeed L1) resident.
    assert!(bcast.l2_share_eff > 0.9);
}
