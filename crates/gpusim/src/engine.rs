//! The timing engine: a four-roofline SM model plus transfer and launch
//! costs.
//!
//! Kernel cycles are the maximum of four limits, each computed from the
//! characterised workload:
//!
//! 1. **issue** — warp-instructions issued per SM against the schedulers;
//! 2. **LSU** — memory transactions retired per SM per cycle;
//! 3. **DRAM** — total device-memory traffic against peak bandwidth;
//! 4. **latency** — one thread's serial critical path (issue + memory
//!    stalls), repeated `#OMP_Rep` times and per wave, which dominates when
//!    too few warps are resident to hide memory latency.
//!
//! Total region time adds the host↔device transfers implied by the region's
//! `map` clauses and the kernel-launch overhead; CUDA context creation is
//! deliberately excluded, as in the paper's methodology (Section III).

use crate::arch::GpuDescriptor;
use crate::geometry::{occupancy, select, Geometry, Occupancy};
use crate::workload::{characterize, Workload};
use hetsel_ir::{Binding, Kernel};

/// Which roofline limited the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuBound {
    /// Scheduler issue throughput.
    Issue,
    /// LSU transaction throughput.
    Lsu,
    /// Device-memory bandwidth.
    Dram,
    /// Memory-latency exposure (insufficient warps to hide it).
    Latency,
}

/// Full timing report for one kernel launch.
#[derive(Debug, Clone)]
pub struct GpuRun {
    /// Kernel name.
    pub kernel: String,
    /// Selected geometry.
    pub geometry: Geometry,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
    /// Host-to-device transfer time, seconds.
    pub transfer_in_s: f64,
    /// Device-to-host transfer time, seconds.
    pub transfer_out_s: f64,
    /// Kernel-launch overhead, seconds.
    pub launch_s: f64,
    /// Kernel execution time, seconds.
    pub kernel_s: f64,
    /// Kernel execution, cycles.
    pub kernel_cycles: f64,
    /// Total DRAM traffic, bytes.
    pub dram_bytes: f64,
    /// The dominant limit.
    pub bound: GpuBound,
}

impl GpuRun {
    /// End-to-end region time (transfers + launch + kernel), seconds.
    pub fn total_s(&self) -> f64 {
        self.transfer_in_s + self.transfer_out_s + self.launch_s + self.kernel_s
    }
}

/// Simulates one kernel launch on a device. Returns `None` if the binding
/// leaves the kernel's extents or trip counts unresolved.
///
/// ```
/// use hetsel_ir::{cexpr, Binding, KernelBuilder, Transfer};
///
/// let mut kb = KernelBuilder::new("scale");
/// let x = kb.array("x", 4, &["n".into()], Transfer::InOut);
/// let i = kb.parallel_loop(0, "n");
/// let ld = kb.load(x, &[i.into()]);
/// kb.store(x, &[i.into()], cexpr::mul(cexpr::scalar("a"), ld));
/// kb.end_loop();
/// let kernel = kb.finish();
///
/// let gpu = hetsel_gpusim::tesla_v100();
/// let run = hetsel_gpusim::simulate(&kernel, &Binding::new().with("n", 1 << 22), &gpu).unwrap();
/// assert!(run.kernel_s > 0.0);
/// assert!(run.transfer_in_s > 0.0); // x maps tofrom: both directions paid
/// assert!(run.total_s() > run.kernel_s);
/// ```
pub fn simulate(kernel: &Kernel, binding: &Binding, gpu: &GpuDescriptor) -> Option<GpuRun> {
    debug_assert_eq!(gpu.validate(), Ok(()));
    let p = kernel.parallel_iterations(binding)?;
    if p == 0 {
        return None;
    }
    let geom = select(gpu, p);
    let occ = occupancy(gpu, &geom);
    let w = characterize(kernel, binding, gpu, &geom)?;

    let cycles_and_bound = kernel_cycles(&w, gpu, &geom, &occ);
    let (kernel_cycles, bound) = cycles_and_bound;
    let kernel_s = kernel_cycles / (gpu.clock_ghz * 1e9);

    let bytes_in = kernel.bytes_to_device(binding)? as f64;
    let bytes_out = kernel.bytes_from_device(binding)? as f64;
    let transfer = |bytes: f64| -> f64 {
        if bytes <= 0.0 {
            0.0
        } else {
            gpu.bus.latency_us * 1e-6 + bytes / (gpu.bus.bandwidth_gbs * 1e9)
        }
    };

    Some(GpuRun {
        kernel: kernel.name.clone(),
        geometry: geom,
        occupancy: occ,
        transfer_in_s: transfer(bytes_in),
        transfer_out_s: transfer(bytes_out),
        launch_s: gpu.launch_overhead_us * 1e-6,
        kernel_s,
        kernel_cycles,
        dram_bytes: w.dram_bytes(&geom),
        bound,
    })
}

/// Computes kernel cycles as the max of the four rooflines.
fn kernel_cycles(
    w: &Workload,
    gpu: &GpuDescriptor,
    geom: &Geometry,
    occ: &Occupancy,
) -> (f64, GpuBound) {
    let active_sms = f64::from(occ.active_sms.max(1));
    let total_warp_iters = w.parallel_iters / 32.0;
    let warp_iters_per_sm = total_warp_iters / active_sms;

    // Per-warp-iteration issue cycles: every instruction takes one slot at
    // the pipeline's issue rate; the OMP_Rep loop adds its own bookkeeping.
    let issue_per_iter = (w.issue_slots + w.mem_insts) * gpu.issue_rate + 4.0;
    let issue_bound = warp_iters_per_sm * issue_per_iter / f64::from(gpu.schedulers_per_sm);

    // LSU transaction throughput per SM.
    let lsu_bound = warp_iters_per_sm * w.txns_per_warp_iter() / gpu.lsu_txns_per_cycle;

    // Device-wide DRAM bandwidth.
    let dram_bound = w.dram_bytes(geom) / gpu.dram_bytes_per_cycle();

    // One thread's serial critical path across its OMP_Rep iterations and
    // the SM's sequential waves.
    let serial_per_iter = issue_per_iter + w.mem_stall_per_iter();
    let latency_bound = serial_per_iter * geom.omp_rep as f64 * occ.waves as f64;

    let bounds = [
        (issue_bound, GpuBound::Issue),
        (lsu_bound, GpuBound::Lsu),
        (dram_bound, GpuBound::Dram),
        (latency_bound, GpuBound::Latency),
    ];
    let mut best = bounds[0];
    for b in &bounds[1..] {
        if b.0 > best.0 {
            best = *b;
        }
    }
    (best.0.max(1.0), best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{tesla_k80, tesla_v100};
    use hetsel_polybench::{find_kernel, Dataset};

    fn run(name: &str, ds: Dataset, gpu: &GpuDescriptor) -> GpuRun {
        let (k, binding) = find_kernel(name).unwrap();
        simulate(&k, &binding(ds), gpu).unwrap()
    }

    #[test]
    fn gemm_benchmark_timescale_is_plausible() {
        let r = run("gemm", Dataset::Benchmark, &tesla_v100());
        // 2*9600^3 FMA-flops of naive f32 GEMM on a V100: hundreds of ms,
        // certainly between 50 ms and 10 s.
        assert!(
            r.kernel_s > 0.05 && r.kernel_s < 10.0,
            "kernel_s = {}",
            r.kernel_s
        );
        // Transfers (4 matrices over NVLink) are tens of ms, well under the
        // kernel itself.
        assert!(r.transfer_in_s < r.kernel_s);
    }

    #[test]
    fn conv2d_is_bandwidth_or_lsu_bound() {
        let r = run("2dconv", Dataset::Benchmark, &tesla_v100());
        assert!(
            matches!(r.bound, GpuBound::Dram | GpuBound::Lsu),
            "bound = {:?}",
            r.bound
        );
    }

    #[test]
    fn v100_beats_k80_everywhere() {
        for name in ["gemm", "2dconv", "3dconv", "atax.k1", "corr.corr"] {
            for ds in [Dataset::Test, Dataset::Benchmark] {
                let v = run(name, ds, &tesla_v100());
                let k = run(name, ds, &tesla_k80());
                assert!(
                    v.total_s() < k.total_s(),
                    "{name}/{ds}: V100 {} vs K80 {}",
                    v.total_s(),
                    k.total_s()
                );
            }
        }
    }

    #[test]
    fn benchmark_mode_slower_than_test_mode() {
        for name in ["gemm", "atax.k2", "syrk", "covar.covar"] {
            let t = run(name, Dataset::Test, &tesla_v100());
            let b = run(name, Dataset::Benchmark, &tesla_v100());
            assert!(
                b.total_s() > t.total_s() * 5.0,
                "{name}: benchmark {} vs test {}",
                b.total_s(),
                t.total_s()
            );
        }
    }

    #[test]
    fn transfer_dominates_small_vector_kernels_on_pcie() {
        // atax.k1 test on K80: moving 1100x1100 floats over PCIe costs more
        // than computing with them.
        let r = run("atax.k1", Dataset::Test, &tesla_k80());
        assert!(r.transfer_in_s > 0.0);
        assert!(
            r.transfer_in_s + r.transfer_out_s > r.kernel_s * 0.2,
            "transfers {} vs kernel {}",
            r.transfer_in_s + r.transfer_out_s,
            r.kernel_s
        );
    }

    #[test]
    fn nvlink_slashes_transfer_time() {
        let v = run("atax.k1", Dataset::Test, &tesla_v100());
        let k = run("atax.k1", Dataset::Test, &tesla_k80());
        assert!(v.transfer_in_s < k.transfer_in_s / 3.0);
    }

    #[test]
    fn unresolved_binding_returns_none() {
        let (k, _) = find_kernel("gemm").unwrap();
        assert!(simulate(&k, &Binding::new(), &tesla_v100()).is_none());
    }

    #[test]
    fn dram_traffic_bounded_by_sanity() {
        let r = run("gemm", Dataset::Test, &tesla_v100());
        // Not less than one matrix, not more than the no-reuse worst case
        // (3 ops * 1100^3 * 32B).
        let m = 1100.0f64 * 1100.0 * 4.0;
        assert!(r.dram_bytes > m * 0.5, "{}", r.dram_bytes);
        assert!(r.dram_bytes < 3.0 * 1100.0 * m * 8.0, "{}", r.dram_bytes);
    }
}
