//! Grid-geometry selection, mirroring the OpenMP device runtime.
//!
//! When an OpenMP `target teams distribute parallel for` launches, the
//! runtime picks a team count and a team size. We model the XL/libomptarget
//! default: 128 threads per team, and as many teams as fill the device's
//! resident-warp capacity (capped by the iteration count). When the grid
//! still has fewer threads than parallel work items, each thread executes
//! `#OMP_Rep` distinct loop iterations — the paper's extension to the Hong
//! model (Figure 4).

use crate::arch::GpuDescriptor;

/// Default OpenMP team size (threads per block).
pub const DEFAULT_THREADS_PER_BLOCK: u32 = 128;

/// A selected launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Thread blocks (OpenMP teams).
    pub blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Distinct parallel-loop iterations each thread executes.
    pub omp_rep: u64,
}

impl Geometry {
    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.blocks * u64::from(self.threads_per_block)
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block.div_ceil(32)
    }
}

/// Selects the launch geometry for `parallel_iterations` work items.
pub fn select(gpu: &GpuDescriptor, parallel_iterations: u64) -> Geometry {
    let tpb = DEFAULT_THREADS_PER_BLOCK.min(gpu.max_warps_per_sm * 32);
    // Enough blocks to cover the iteration space...
    let needed = parallel_iterations.div_ceil(u64::from(tpb)).max(1);
    // ...but no more than fills the device's resident capacity (the runtime
    // re-uses threads via the OMP_Rep loop beyond this point).
    let resident_cap = u64::from(gpu.num_sms)
        * u64::from(gpu.max_blocks_per_sm.min(gpu.max_warps_per_sm * 32 / tpb));
    let blocks = needed.min(resident_cap).max(1);
    let total = blocks * u64::from(tpb);
    let omp_rep = parallel_iterations.div_ceil(total).max(1);
    Geometry {
        blocks,
        threads_per_block: tpb,
        omp_rep,
    }
}

/// Occupancy for a geometry: concurrent blocks and warps per SM, and the
/// number of SMs that actually receive work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Blocks resident per SM while the grid saturates the device.
    pub blocks_per_sm: u32,
    /// Warps resident per SM (`N` in the Hong model).
    pub warps_per_sm: u32,
    /// SMs with at least one block.
    pub active_sms: u32,
    /// Sequential "waves" of blocks each SM processes.
    pub waves: u64,
}

/// Computes the occupancy of a geometry on a device.
pub fn occupancy(gpu: &GpuDescriptor, g: &Geometry) -> Occupancy {
    let wpb = g.warps_per_block();
    let by_warps = gpu.max_warps_per_sm / wpb.max(1);
    let limit = gpu.max_blocks_per_sm.min(by_warps).max(1);
    let active_sms = g.blocks.min(u64::from(gpu.num_sms)) as u32;
    let blocks_per_sm = if g.blocks >= u64::from(gpu.num_sms) * u64::from(limit) {
        limit
    } else {
        (g.blocks.div_ceil(u64::from(active_sms.max(1)))) as u32
    };
    let concurrent = u64::from(active_sms) * u64::from(blocks_per_sm);
    let waves = g.blocks.div_ceil(concurrent.max(1));
    Occupancy {
        blocks_per_sm,
        warps_per_sm: blocks_per_sm * wpb,
        active_sms,
        waves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{tesla_k80, tesla_v100};

    #[test]
    fn small_grid_one_iteration_per_thread() {
        let v = tesla_v100();
        let g = select(&v, 1100);
        assert_eq!(g.threads_per_block, 128);
        assert_eq!(g.blocks, 9); // ceil(1100/128)
        assert_eq!(g.omp_rep, 1);
    }

    #[test]
    fn paper_omp_rep_example() {
        // "a statically scheduled parallel for loop with 1024 iterations
        // executing in a kernel with 1 thread block of 128 threads: each
        // thread executes 8 distinct iterations."
        let g = Geometry {
            blocks: 1,
            threads_per_block: 128,
            omp_rep: 1024_u64.div_ceil(128),
        };
        assert_eq!(g.omp_rep, 8);
    }

    #[test]
    fn huge_grid_caps_blocks_and_reps() {
        let v = tesla_v100();
        let p = 9600u64 * 9600;
        let g = select(&v, p);
        let cap = u64::from(v.num_sms)
            * u64::from(v.max_blocks_per_sm.min(v.max_warps_per_sm * 32 / 128));
        assert_eq!(g.blocks, cap);
        assert!(g.omp_rep > 1);
        assert!(g.total_threads() * g.omp_rep >= p);
    }

    #[test]
    fn occupancy_saturated_device() {
        let v = tesla_v100();
        let g = select(&v, 9600 * 9600);
        let o = occupancy(&v, &g);
        assert_eq!(o.active_sms, v.num_sms);
        assert_eq!(o.warps_per_sm, o.blocks_per_sm * 4);
        assert!(o.warps_per_sm <= v.max_warps_per_sm);
        assert_eq!(o.waves, 1); // resident cap means a single wave
    }

    #[test]
    fn occupancy_tiny_grid() {
        let k = tesla_k80();
        let g = select(&k, 256);
        let o = occupancy(&k, &g);
        assert_eq!(g.blocks, 2);
        assert_eq!(o.active_sms, 2);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.waves, 1);
    }

    #[test]
    fn geometry_covers_iteration_space() {
        let v = tesla_v100();
        for p in [1u64, 37, 128, 4096, 1_000_000, 92_160_000] {
            let g = select(&v, p);
            assert!(
                g.total_threads() * g.omp_rep >= p,
                "p={p}: {g:?} does not cover"
            );
        }
    }
}
