//! Fault-injection layer over the GPU timing simulator.
//!
//! Wraps [`simulate`] with a seeded [`FaultPlan`]: each
//! call is one *attempt* identified by a draw sequence number. The plan
//! deterministically decides whether the attempt faults (transient or
//! permanent) and how much latency jitter a successful launch absorbs —
//! charged to the kernel-launch overhead, which is where a real
//! accelerator's driver and queueing hiccups land.
//!
//! Under [`FaultPlan::none`] the wrapper is bit-for-bit the plain
//! simulator: no draw is taken and no term is altered.

use crate::arch::GpuDescriptor;
use crate::engine::{simulate, GpuRun};
use hetsel_fault::{DeviceFault, FaultPlan, InjectedFailure};
use hetsel_ir::{Binding, Kernel};

/// The device label GPU faults carry.
pub const GPU_FAULT_DEVICE: &str = "gpu";

/// As [`simulate`], through a fault plan. `seq` identifies the attempt in
/// the plan's deterministic draw stream (the dispatcher hands out one
/// sequence number per attempt).
///
/// * injected fault → `Err(InjectedFailure::Fault(_))`;
/// * unresolved binding / empty iteration space →
///   `Err(InjectedFailure::Unresolvable)` (not a device fault — breakers
///   must not count it);
/// * success → the plain simulator's run with `jitter_s` added to
///   `launch_s`.
pub fn simulate_with_faults(
    kernel: &Kernel,
    binding: &Binding,
    gpu: &GpuDescriptor,
    plan: &FaultPlan,
    seq: u64,
) -> Result<GpuRun, InjectedFailure> {
    if plan.is_none() {
        return simulate(kernel, binding, gpu).ok_or(InjectedFailure::Unresolvable);
    }
    let draw = plan.draw(seq);
    if let Some(kind) = draw.fault {
        return Err(InjectedFailure::Fault(DeviceFault {
            device: GPU_FAULT_DEVICE,
            kind,
            seq,
        }));
    }
    let mut run = simulate(kernel, binding, gpu).ok_or(InjectedFailure::Unresolvable)?;
    run.launch_s += draw.jitter_s;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsel_fault::FaultKind;
    use hetsel_polybench::{find_kernel, Dataset};

    fn gemm() -> (Kernel, Binding) {
        let (k, binding) = find_kernel("gemm").unwrap();
        let b = binding(Dataset::Test);
        (k, b)
    }

    #[test]
    fn none_plan_is_bit_identical_to_plain_simulate() {
        let (k, b) = gemm();
        let gpu = crate::tesla_v100();
        let plain = simulate(&k, &b, &gpu).unwrap();
        for seq in [0, 7, u64::MAX] {
            let wrapped = simulate_with_faults(&k, &b, &gpu, &FaultPlan::none(), seq).unwrap();
            assert_eq!(wrapped.total_s().to_bits(), plain.total_s().to_bits());
            assert_eq!(wrapped.launch_s.to_bits(), plain.launch_s.to_bits());
        }
    }

    #[test]
    fn certain_faults_always_fail_with_the_planned_kind() {
        let (k, b) = gemm();
        let gpu = crate::tesla_v100();
        let plan = FaultPlan::transient(3, 1.0);
        for seq in 0..20 {
            let err = simulate_with_faults(&k, &b, &gpu, &plan, seq).unwrap_err();
            let fault = err.fault().expect("injected, not unresolvable");
            assert_eq!(fault.kind, FaultKind::Transient);
            assert_eq!(fault.device, GPU_FAULT_DEVICE);
            assert_eq!(fault.seq, seq);
        }
    }

    #[test]
    fn jitter_is_added_to_launch_deterministically() {
        let (k, b) = gemm();
        let gpu = crate::tesla_v100();
        let plain = simulate(&k, &b, &gpu).unwrap();
        let plan = FaultPlan {
            seed: 21,
            transient_prob: 0.0,
            permanent_prob: 0.0,
            max_jitter_s: 5e-4,
        };
        let a = simulate_with_faults(&k, &b, &gpu, &plan, 9).unwrap();
        let b2 = simulate_with_faults(&k, &b, &gpu, &plan, 9).unwrap();
        assert_eq!(a.launch_s.to_bits(), b2.launch_s.to_bits());
        let jitter = a.launch_s - plain.launch_s;
        assert!((0.0..=5e-4).contains(&jitter), "{jitter}");
        assert_eq!(jitter, plan.draw(9).jitter_s);
    }

    #[test]
    fn unresolved_bindings_are_not_device_faults() {
        let (k, _) = gemm();
        let gpu = crate::tesla_v100();
        let err =
            simulate_with_faults(&k, &Binding::new(), &gpu, &FaultPlan::none(), 0).unwrap_err();
        assert_eq!(err, InjectedFailure::Unresolvable);
    }
}
