//! # hetsel-gpusim — a SIMT GPU timing simulator
//!
//! The stand-in for the paper's physical accelerators (Tesla K80 and Tesla
//! V100): where the paper *measures* GPU kernel time on hardware, this crate
//! *simulates* it, producing the "actual" side of every model-vs-actual
//! comparison.
//!
//! The simulator is strictly more detailed than the Hong–Kim analytical
//! model it serves as ground truth for (see `hetsel-models`): grid geometry
//! follows the OpenMP device runtime's heuristic including the `#OMP_Rep`
//! thread-reuse loop; warp transactions come from the resolved inter-thread
//! strides of every access; L1 spatial reuse and cross-thread L2 sharing
//! shape DRAM traffic; and kernel time is the max of four rooflines (issue,
//! LSU, DRAM, latency exposure). Host↔device transfers ride the platform's
//! bus model (PCIe 3.0 for the K80, NVLink 2.0 for the V100).

#![warn(missing_docs)]

pub mod arch;
pub mod detailed;
pub mod engine;
pub mod fault;
pub mod geometry;
pub mod workload;

pub use arch::{
    nvlink1, nvlink2, pcie3, tesla_k80, tesla_p100, tesla_v100, BusDescriptor, GpuDescriptor,
};
pub use detailed::{simulate_detailed, DetailedRun};
pub use engine::{simulate, GpuBound, GpuRun};
pub use fault::simulate_with_faults;
pub use geometry::{occupancy, select, Geometry, Occupancy, DEFAULT_THREADS_PER_BLOCK};
pub use workload::{characterize, AccessSim, Workload, L1_LATENCY};
