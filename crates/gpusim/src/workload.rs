//! Per-kernel workload characterisation: what one warp executes, and what
//! the memory system sees.
//!
//! This is where the simulator is deliberately *more detailed* than the
//! analytical model it serves as ground truth for. The Hong–Kim model
//! classifies each static memory instruction as coalesced or uncoalesced;
//! the simulator instead derives, per access:
//!
//! * exact warp **transactions** from the resolved inter-thread stride
//!   (the same arithmetic the hardware does);
//! * **L1 spatial reuse** across sequential inner-loop iterations
//!   (a stride-1 thread walking 4-byte elements reuses a 32-byte sector 8×);
//! * **cross-thread L2 sharing**: the distinct bytes the *resident* thread
//!   population touches per lockstep inner step. When that concurrent
//!   working set fits in L2, DRAM traffic collapses toward the shared
//!   footprint — the effect that makes naive GEMM compute-bound rather
//!   than bandwidth-bound on real hardware.

use crate::arch::GpuDescriptor;
use crate::geometry::Geometry;
use hetsel_ipda::{transactions_per_warp, KernelAccessInfo, WARP_SIZE};
use hetsel_ir::{trips::TripCounts, Binding, Kernel};
use hetsel_mca::{loadout, Loadout, OpKind};

/// L1 hit latency (cycles); Volta ≈ 28, and close enough for Kepler's
/// read-only path that one constant serves both.
pub const L1_LATENCY: f64 = 28.0;

/// Simulation view of one static memory access.
#[derive(Debug, Clone)]
pub struct AccessSim {
    /// Dynamic executions per parallel iteration (product of enclosing
    /// sequential-loop trip counts).
    pub weight: f64,
    /// Memory transactions per warp-wide execution (before L1 reuse).
    pub txns: f64,
    /// L1 spatial-reuse factor across inner-loop steps (≥ 1).
    pub inner_reuse: f64,
    /// DRAM bytes per warp-execution with no cross-thread reuse.
    pub upper_bytes_per_exec: f64,
    /// Distinct bytes the resident thread population touches per lockstep
    /// step of this access.
    pub shared_bytes_per_step: f64,
    /// Fraction of the cross-thread sharing L2 can realise (0..1).
    pub l2_share_eff: f64,
    /// Effective per-execution latency seen by the issuing warp, cycles.
    pub latency: f64,
    /// True for stores.
    pub is_store: bool,
    /// Stream signature: accesses to the same array whose indices differ
    /// only by constant offsets (stencil taps) share one memory stream and
    /// must not have their DRAM traffic double-counted.
    pub stream: u64,
}

impl AccessSim {
    /// Total DRAM traffic of this access over the whole kernel, bytes.
    pub fn dram_bytes(
        &self,
        total_warp_execs: f64,
        resident_threads: f64,
        parallel_iters: f64,
    ) -> f64 {
        let upper = total_warp_execs * self.weight * self.upper_bytes_per_exec / self.inner_reuse;
        // Lockstep steps: every resident thread advances one execution per step.
        let steps = (self.weight * parallel_iters / resident_threads.max(1.0)).max(1.0);
        let shared = steps * self.shared_bytes_per_step / self.inner_reuse;
        let shared = shared.min(upper);
        upper * (1.0 - self.l2_share_eff) + shared * self.l2_share_eff
    }
}

/// The complete workload characterisation of a kernel launch.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Parallel iterations (work items).
    pub parallel_iters: f64,
    /// Issue slots per parallel iteration (compute + memory instruction
    /// issue, divides/sqrts weighted by their slot cost).
    pub issue_slots: f64,
    /// Dynamic memory instructions per parallel iteration.
    pub mem_insts: f64,
    /// Dynamic compute instructions per parallel iteration.
    pub comp_insts: f64,
    /// Memory-level parallelism within a thread (independent loads per
    /// dependency group in the innermost block).
    pub mlp: f64,
    /// Per-access simulation views.
    pub accesses: Vec<AccessSim>,
    /// Instruction loadout (for reporting).
    pub loadout: Loadout,
}

impl Workload {
    /// Sum of per-warp-execution transactions per parallel iteration
    /// (after L1 reuse), for LSU-throughput accounting.
    pub fn txns_per_warp_iter(&self) -> f64 {
        self.accesses
            .iter()
            .map(|a| a.weight * a.txns / a.inner_reuse)
            .sum()
    }

    /// Memory stall cycles per parallel iteration for one warp, assuming
    /// `mlp` independent requests overlap.
    pub fn mem_stall_per_iter(&self) -> f64 {
        let total: f64 = self
            .accesses
            .iter()
            .filter(|a| !a.is_store)
            .map(|a| a.weight * a.latency)
            .sum();
        total / self.mlp.max(1.0)
    }

    /// Total DRAM traffic for the launch, bytes.
    ///
    /// Accesses with the same stream signature (e.g. the nine taps of a
    /// stencil, which sweep the same array shifted by a constant) are
    /// served by one memory stream: the group contributes the traffic of
    /// its heaviest member, not the sum.
    pub fn dram_bytes(&self, geom: &Geometry) -> f64 {
        let warp_execs = self.parallel_iters / f64::from(WARP_SIZE);
        let resident = (geom.total_threads() as f64).min(self.parallel_iters);
        let mut per_stream: std::collections::HashMap<(u64, bool), f64> =
            std::collections::HashMap::new();
        for a in &self.accesses {
            let t = a.dram_bytes(warp_execs, resident, self.parallel_iters);
            let e = per_stream.entry((a.stream, a.is_store)).or_insert(0.0);
            *e = e.max(t);
        }
        per_stream.values().sum()
    }
}

/// GPU issue-slot cost of an op kind.
fn slot_cost(kind: OpKind, gpu: &GpuDescriptor) -> f64 {
    match kind {
        OpKind::FDiv | OpKind::FSqrt => gpu.div_issue_slots,
        _ => 1.0,
    }
}

/// Characterises a kernel launch. Returns `None` when the binding leaves
/// extents or trip counts unresolved.
pub fn characterize(
    kernel: &Kernel,
    binding: &Binding,
    gpu: &GpuDescriptor,
    geom: &Geometry,
) -> Option<Workload> {
    let trips = hetsel_ir::trips::resolve(kernel, binding);
    let parallel_iters = trips.parallel_iterations(kernel);
    if parallel_iters <= 0.0 {
        return None;
    }
    let lo = loadout(kernel, &|l| trips.of(l));
    let mut issue_slots = 0.0;
    for k in hetsel_mca::ALL_KINDS {
        issue_slots += lo.count(k) * slot_cost(k, gpu);
    }

    let info = hetsel_ipda::analyze(kernel);
    let resident = (geom.total_threads() as f64).min(parallel_iters);
    let coverage = parallel_dim_coverage(kernel, &trips, resident);

    let accesses = build_accesses(kernel, &info, &trips, binding, gpu, &coverage)?;
    let mlp = innermost_mlp(&info);

    Some(Workload {
        parallel_iters,
        issue_slots,
        mem_insts: lo.mem_insts(),
        comp_insts: lo.comp_insts(),
        mlp,
        accesses,
        loadout: lo,
    })
}

/// How many distinct values of each parallel loop variable the resident
/// thread population covers, innermost dimension first-filled (matching the
/// linearised thread-id mapping).
fn parallel_dim_coverage(
    kernel: &Kernel,
    trips: &TripCounts,
    resident: f64,
) -> Vec<(hetsel_ir::LoopVarId, f64)> {
    let ploops = kernel.parallel_loops();
    let mut cover = Vec::with_capacity(ploops.len());
    let mut remaining = resident;
    for l in ploops.iter().rev() {
        let t = trips.of(l).max(1.0);
        let c = remaining.min(t).max(1.0);
        cover.push((l.var, c));
        remaining = (remaining / t).ceil().max(1.0);
    }
    cover.reverse();
    cover
}

fn build_accesses(
    kernel: &Kernel,
    info: &KernelAccessInfo,
    trips: &TripCounts,
    binding: &Binding,
    gpu: &GpuDescriptor,
    coverage: &[(hetsel_ir::LoopVarId, f64)],
) -> Option<Vec<AccessSim>> {
    let seg = f64::from(gpu.segment_bytes);
    let mut out = Vec::with_capacity(info.accesses.len());
    for a in &info.accesses {
        let elem = f64::from(a.elem_bytes);
        // Dynamic executions per parallel iteration.
        let mut weight = 1.0;
        let mut innermost_seq_trip = 1.0;
        for (v, parallel) in &a.enclosing {
            if !*parallel {
                let t = trips.get(*v).max(0.0);
                weight *= t;
                innermost_seq_trip = t;
            }
        }
        let stream = stream_signature(a);
        if weight == 0.0 {
            // Access inside a zero-trip loop: contributes nothing.
            out.push(AccessSim {
                weight: 0.0,
                txns: 0.0,
                inner_reuse: 1.0,
                upper_bytes_per_exec: 0.0,
                shared_bytes_per_step: 0.0,
                l2_share_eff: 0.0,
                latency: 0.0,
                is_store: a.is_store,
                stream,
            });
            continue;
        }

        // Warp transactions from the resolved inter-thread stride.
        let txns = match a.thread_stride.resolve(binding) {
            Some(s) => f64::from(transactions_per_warp(s, a.elem_bytes, gpu.segment_bytes)),
            None => f64::from(WARP_SIZE),
        };

        // L1 spatial reuse along the innermost enclosing sequential loop.
        let inner_reuse = {
            let inner_seq = a.enclosing.iter().rev().find(|(_, p)| !*p).map(|(v, _)| *v);
            match (inner_seq, &a.affine) {
                (Some(v), Some(aff)) => match aff.coeff(v).eval(binding) {
                    // Loop-invariant in the inner loop: hoisted to a register.
                    Some(0) => innermost_seq_trip.max(1.0),
                    Some(s) if (s.unsigned_abs() as f64) * elem <= seg => {
                        (seg / ((s.unsigned_abs() as f64) * elem)).max(1.0)
                    }
                    _ => 1.0,
                },
                _ => 1.0,
            }
        };

        // Cross-thread concurrent footprint per lockstep step.
        let (shared_bytes, contiguous) = shared_footprint(a, binding, coverage, elem, seg);
        let l2_share_eff = (0.5 * gpu.l2_bytes as f64 / shared_bytes.max(1.0)).clamp(0.0, 1.0);
        let _ = contiguous;

        let upper_bytes_per_exec = txns * seg;

        // Effective latency: L1 spatial hits, then L2 sharing hits, then DRAM.
        let l1_frac = 1.0 - 1.0 / inner_reuse;
        let l2_frac = (1.0 - l1_frac) * l2_share_eff;
        let dram_frac = (1.0 - l1_frac - l2_frac).max(0.0);
        let latency = l1_frac * L1_LATENCY
            + l2_frac * gpu.l2_latency_cycles
            + dram_frac * gpu.mem_latency_cycles;

        out.push(AccessSim {
            weight,
            txns,
            inner_reuse,
            upper_bytes_per_exec,
            shared_bytes_per_step: shared_bytes,
            l2_share_eff,
            latency,
            is_store: a.is_store,
            stream,
        });
    }
    let _ = kernel;
    Some(out)
}

/// Stream signature: identical array + identical loop-variable coefficients
/// means the accesses sweep the same data shifted by a constant (stencil
/// taps) and share one memory stream.
fn stream_signature(a: &hetsel_ipda::AccessInfo) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    a.array.0.hash(&mut h);
    match &a.affine {
        Some(aff) => {
            for v in aff.loop_vars() {
                v.0.hash(&mut h);
                format!("{}", aff.coeff(v)).hash(&mut h);
            }
        }
        None => {
            // Irregular accesses never share a stream: hash their position.
            (a.enclosing.len() as u64 + 0x9e37_79b9).hash(&mut h);
            a.is_store.hash(&mut h);
        }
    }
    h.finish()
}

/// Distinct bytes touched by the resident population in one lockstep step of
/// an access, and whether the footprint is contiguous.
fn shared_footprint(
    a: &hetsel_ipda::AccessInfo,
    binding: &Binding,
    coverage: &[(hetsel_ir::LoopVarId, f64)],
    elem: f64,
    seg: f64,
) -> (f64, bool) {
    let Some(aff) = &a.affine else {
        // Irregular: assume every resident thread hits its own segment.
        let total: f64 = coverage.iter().map(|(_, c)| c).product();
        return (total * seg, false);
    };
    let mut distinct = 1.0;
    let mut innermost_coeff: i64 = 0;
    let mut innermost_cover = 1.0;
    for (idx, (v, c)) in coverage.iter().enumerate() {
        let coeff = aff.coeff(*v).eval(binding).unwrap_or(1);
        if coeff != 0 {
            distinct *= c;
        }
        if idx == coverage.len() - 1 {
            innermost_coeff = coeff;
            innermost_cover = if coeff != 0 { *c } else { 1.0 };
        }
    }
    // Granularity: runs along the thread-adjacent dimension are contiguous
    // when |coeff| == 1; otherwise every element occupies its own segment.
    if innermost_coeff.abs() == 1 {
        let runs = (distinct / innermost_cover).max(1.0);
        let run_bytes = (innermost_cover * elem / seg).ceil() * seg;
        (runs * run_bytes, true)
    } else {
        (distinct * seg, false)
    }
}

/// Independent loads in the innermost block: per-thread memory-level
/// parallelism the scoreboard can overlap.
fn innermost_mlp(info: &KernelAccessInfo) -> f64 {
    let max_depth = info
        .accesses
        .iter()
        .map(|a| a.enclosing.len())
        .max()
        .unwrap_or(0);
    let innermost_loads = info
        .accesses
        .iter()
        .filter(|a| !a.is_store && a.enclosing.len() == max_depth)
        .count();
    (innermost_loads as f64).clamp(1.0, 6.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::tesla_v100;
    use crate::geometry::select;
    use hetsel_polybench::{find_kernel, Dataset};

    fn workload_for(name: &str, ds: Dataset) -> (Workload, Geometry) {
        let (k, binding) = find_kernel(name).unwrap();
        let b = binding(ds);
        let gpu = tesla_v100();
        let p = k.parallel_iterations(&b).unwrap();
        let g = select(&gpu, p);
        (characterize(&k, &b, &gpu, &g).unwrap(), g)
    }

    #[test]
    fn gemm_is_compute_heavy_with_shared_b() {
        let (w, g) = workload_for("gemm", Dataset::Benchmark);
        // Inner loop runs 9600 times with 2 loads + 1 FMA.
        assert!(w.mem_insts > 2.0 * 9600.0);
        assert!(w.comp_insts > 9600.0);
        // DRAM traffic must be far below the no-reuse upper bound thanks to
        // cross-thread sharing of B and broadcast A.
        let dram = w.dram_bytes(&g);
        let upper: f64 = w
            .accesses
            .iter()
            .map(|a| (w.parallel_iters / 32.0) * a.weight * a.upper_bytes_per_exec / a.inner_reuse)
            .sum();
        assert!(dram < upper * 0.25, "dram {dram:.3e} vs upper {upper:.3e}");
        // ...but not below something on the order of the matrix footprint.
        assert!(dram > 3.0 * 9600.0 * 9600.0 * 4.0 * 0.5, "dram {dram:.3e}");
    }

    #[test]
    fn conv2d_traffic_near_compulsory() {
        let (w, g) = workload_for("2dconv", Dataset::Benchmark);
        let dram = w.dram_bytes(&g);
        let array_bytes = 9600.0 * 9600.0 * 4.0;
        // 9 taps with heavy L1/L2 reuse: traffic within a small multiple of
        // the two arrays' footprint.
        assert!(
            dram < 8.0 * array_bytes,
            "dram {dram:.3e} vs footprint {array_bytes:.3e}"
        );
        assert!(dram > 1.0 * array_bytes);
    }

    #[test]
    fn atax_k1_uncoalesced_vs_k2_coalesced() {
        let (w1, _) = workload_for("atax.k1", Dataset::Test);
        let (w2, _) = workload_for("atax.k2", Dataset::Test);
        // k1 walks A row-wise: the A access needs many transactions; k2 is
        // fully coalesced on A (with L1 reuse 8x for f32 over 32B sectors).
        let a1 = w1.accesses.iter().map(|a| a.txns).fold(0.0, f64::max);
        let a2 = w2.accesses.iter().map(|a| a.txns).fold(0.0, f64::max);
        assert_eq!(a1, 32.0);
        assert!(a2 <= 4.0);
    }

    #[test]
    fn broadcast_vector_hits_cache() {
        // GEMM's A[i][k] access: uniform across threads, stride 1 in k.
        let (w, _) = workload_for("gemm", Dataset::Test);
        // All loads have positive latency below the raw DRAM latency when
        // reuse exists.
        for a in w.accesses.iter().filter(|a| !a.is_store && a.weight > 0.0) {
            assert!(a.latency > 0.0);
            assert!(a.latency <= tesla_v100().mem_latency_cycles);
        }
    }

    #[test]
    fn zero_trip_inner_loop_contributes_nothing() {
        use hetsel_ir::{cexpr, KernelBuilder, Transfer};
        let mut kb = KernelBuilder::new("empty-inner");
        let a = kb.array("a", 4, &["n".into(), "z".into()], Transfer::In);
        let y = kb.array("y", 4, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.acc_init("s", cexpr::lit(0.0));
        let j = kb.seq_loop(0, "z");
        let ld = kb.load(a, &[i.into(), j.into()]);
        kb.assign_acc("s", cexpr::add(cexpr::acc(), ld));
        kb.end_loop();
        kb.store_acc(y, &[i.into()], "s");
        kb.end_loop();
        let k = kb.finish();
        let b = Binding::new().with("n", 1024).with("z", 0);
        let gpu = tesla_v100();
        let g = select(&gpu, 1024);
        let w = characterize(&k, &b, &gpu, &g).unwrap();
        let inner_load = &w.accesses[0];
        assert_eq!(inner_load.weight, 0.0);
        assert_eq!(inner_load.upper_bytes_per_exec, 0.0);
    }
}
