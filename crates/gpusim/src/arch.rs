//! GPU architecture descriptors.
//!
//! Parameters for the two accelerators of the paper's experiments, gathered
//! the way the paper gathered them: vendor specifications, CUDA-queryable
//! properties, and the micro-benchmarked latencies of Jia et al.'s Volta
//! dissection (paper's Table III). The K80 is modelled as one GK210 die —
//! the unit a single target region offloads to.

/// Host↔device interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusDescriptor {
    /// Bus name.
    pub name: &'static str,
    /// One-way latency per transfer, in microseconds.
    pub latency_us: f64,
    /// Effective one-direction bandwidth, GB/s.
    pub bandwidth_gbs: f64,
}

/// PCI Express 3.0 ×16 (the paper's POWER8 + K80 platform).
pub fn pcie3() -> BusDescriptor {
    BusDescriptor {
        name: "PCIe 3.0 x16",
        latency_us: 12.0,
        bandwidth_gbs: 11.0,
    }
}

/// NVLink 1.0 (the POWER8+ "Minsky" platform that sat between the paper's
/// two systems; ~80 GB/s aggregate, ~32 GB/s effective per direction).
pub fn nvlink1() -> BusDescriptor {
    BusDescriptor {
        name: "NVLink 1.0",
        latency_us: 7.0,
        bandwidth_gbs: 32.0,
    }
}

/// NVLink 2.0 (the paper's POWER9 + V100 platform; 150 GB/s aggregate,
/// ~60 GB/s effective per direction for bulk `map` traffic).
pub fn nvlink2() -> BusDescriptor {
    BusDescriptor {
        name: "NVLink 2.0",
        latency_us: 5.0,
        bandwidth_gbs: 60.0,
    }
}

/// A GPU device model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDescriptor {
    /// Device name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Warp schedulers per SM (warp-instructions issuable per cycle).
    pub schedulers_per_sm: u32,
    /// Processor clock, GHz.
    pub clock_ghz: f64,
    /// Device memory bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// DRAM access latency, cycles.
    pub mem_latency_cycles: f64,
    /// L2 cache size, bytes.
    pub l2_bytes: u64,
    /// L2 hit latency, cycles.
    pub l2_latency_cycles: f64,
    /// Memory transaction (segment) size, bytes.
    pub segment_bytes: u32,
    /// Memory transactions the SM's LSUs retire per cycle.
    pub lsu_txns_per_cycle: f64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Cycles between dependent issues of the same warp (pipeline issue
    /// rate; Kepler's shared pipelines make this worse than Volta's).
    pub issue_rate: f64,
    /// Extra issue slots consumed by divides and square roots (SFU/iterative).
    pub div_issue_slots: f64,
    /// Kernel-launch overhead, microseconds.
    pub launch_overhead_us: f64,
    /// Host interconnect.
    pub bus: BusDescriptor,
}

impl GpuDescriptor {
    /// Peak device-memory bytes per core clock cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e9 / (self.clock_ghz * 1e9)
    }

    /// Total warp capacity of the device.
    pub fn max_resident_warps(&self) -> u32 {
        self.num_sms * self.max_warps_per_sm
    }

    /// Sanity checks on the parameter set.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 || self.cores_per_sm == 0 || self.schedulers_per_sm == 0 {
            return Err(format!("{}: zero compute resources", self.name));
        }
        if self.clock_ghz <= 0.0 || self.mem_bandwidth_gbs <= 0.0 {
            return Err(format!("{}: non-positive rates", self.name));
        }
        if self.mem_latency_cycles <= self.l2_latency_cycles {
            return Err(format!("{}: DRAM faster than L2", self.name));
        }
        Ok(())
    }
}

/// NVIDIA Tesla K80 (one GK210 die): Kepler, 13 SMs × 192 cores at 824 MHz,
/// 240 GB/s GDDR5 per die, PCIe 3.0 host link.
pub fn tesla_k80() -> GpuDescriptor {
    GpuDescriptor {
        name: "Tesla K80 (GK210)",
        num_sms: 13,
        cores_per_sm: 192,
        schedulers_per_sm: 4,
        clock_ghz: 0.824,
        mem_bandwidth_gbs: 240.0,
        mem_latency_cycles: 600.0,
        l2_bytes: 1_572_864, // 1.5 MiB
        l2_latency_cycles: 222.0,
        segment_bytes: 32,
        lsu_txns_per_cycle: 2.0,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 16,
        issue_rate: 2.0,
        div_issue_slots: 16.0,
        launch_overhead_us: 12.0,
        bus: pcie3(),
    }
}

/// NVIDIA Tesla V100 (GV100): Volta, 80 SMs × 64 cores at 1380 MHz,
/// 900 GB/s HBM2, NVLink 2.0 host link (paper's Table III; latencies from
/// Jia et al.'s micro-benchmarks).
pub fn tesla_v100() -> GpuDescriptor {
    GpuDescriptor {
        name: "Tesla V100",
        num_sms: 80,
        cores_per_sm: 64,
        schedulers_per_sm: 4,
        clock_ghz: 1.38,
        mem_bandwidth_gbs: 900.0,
        mem_latency_cycles: 425.0,
        l2_bytes: 6_291_456, // 6 MiB
        l2_latency_cycles: 193.0,
        segment_bytes: 32,
        lsu_txns_per_cycle: 4.0,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
        issue_rate: 1.0,
        div_issue_slots: 8.0,
        launch_overhead_us: 5.0,
        bus: nvlink2(),
    }
}

/// NVIDIA Tesla P100 (GP100): Pascal, 56 SMs × 64 cores at 1328 MHz,
/// 732 GB/s HBM2, NVLink 1.0 host link — the generation between the
/// paper's two accelerators, included to show the evolution is a
/// continuum, not a single jump.
pub fn tesla_p100() -> GpuDescriptor {
    GpuDescriptor {
        name: "Tesla P100",
        num_sms: 56,
        cores_per_sm: 64,
        schedulers_per_sm: 2,
        clock_ghz: 1.328,
        mem_bandwidth_gbs: 732.0,
        mem_latency_cycles: 485.0,
        l2_bytes: 4_194_304, // 4 MiB
        l2_latency_cycles: 216.0,
        segment_bytes: 32,
        lsu_txns_per_cycle: 3.0,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
        issue_rate: 1.25,
        div_issue_slots: 10.0,
        launch_overhead_us: 7.0,
        bus: nvlink1(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        tesla_k80().validate().unwrap();
        tesla_p100().validate().unwrap();
        tesla_v100().validate().unwrap();
    }

    #[test]
    fn pascal_sits_between_the_generations() {
        let k = tesla_k80();
        let p = tesla_p100();
        let v = tesla_v100();
        assert!(
            k.mem_bandwidth_gbs < p.mem_bandwidth_gbs && p.mem_bandwidth_gbs < v.mem_bandwidth_gbs
        );
        assert!(
            k.bus.bandwidth_gbs < p.bus.bandwidth_gbs && p.bus.bandwidth_gbs < v.bus.bandwidth_gbs
        );
        assert!(k.clock_ghz < p.clock_ghz);
    }

    #[test]
    fn volta_outclasses_kepler_where_the_paper_says() {
        let k80 = tesla_k80();
        let v100 = tesla_v100();
        // "Volta's card memory bandwidth of 900GB/s, nearly double of the
        // K80's peak" (per-card; per-die it is 240 vs 900).
        assert!(v100.mem_bandwidth_gbs > 3.0 * k80.mem_bandwidth_gbs);
        assert!(v100.bus.bandwidth_gbs > 4.0 * k80.bus.bandwidth_gbs);
        assert!(v100.clock_ghz > k80.clock_ghz);
        assert!(v100.launch_overhead_us < k80.launch_overhead_us);
    }

    #[test]
    fn derived_quantities() {
        let v = tesla_v100();
        // 900e9 / 1.38e9 ≈ 652 bytes/cycle.
        assert!((v.dram_bytes_per_cycle() - 652.17).abs() < 1.0);
        assert_eq!(v.max_resident_warps(), 80 * 64);
    }

    #[test]
    fn invalid_descriptor_rejected() {
        let mut d = tesla_v100();
        d.mem_latency_cycles = 10.0;
        assert!(d.validate().is_err());
    }
}
