//! An event-driven warp scheduler: a second, independent timing engine.
//!
//! The main engine (`engine`) computes kernel time as the max of four
//! rooflines. This module simulates one SM's resident warps through an
//! event-driven list scheduler — per-op issue against the scheduler slots,
//! per-transaction occupancy of the LSU pipes, full memory latency on every
//! load — and serves as a cross-check: the two engines were derived
//! differently, so their agreement (within a small factor, asserted in
//! tests) is evidence that neither encodes a bookkeeping mistake.

use crate::arch::GpuDescriptor;
use crate::geometry::{occupancy, select};
use crate::workload::{characterize, Workload};
use hetsel_ir::{Binding, Kernel};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One step of a warp's program.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Issue `slots` instructions back-to-back (warp-local cost
    /// `slots × issue_rate` cycles).
    Comp { slots: f64 },
    /// A memory instruction: occupies an LSU pipe for `txns / lsu_rate`
    /// cycles and returns data after `latency` cycles.
    Mem { latency: f64, txns: f64 },
}

/// Builds the per-warp program for one parallel iteration: memory ops
/// spread evenly through the compute stream, as the lowered code would
/// interleave them. Programs are capped; the caller scales the result.
fn warp_program(w: &Workload, cap_ops: usize) -> (Vec<Op>, f64) {
    // Dynamic memory ops with their per-access metadata, expanded by weight.
    let mut mem: Vec<(f64, f64)> = Vec::new(); // (latency, txns)
    let total_weight: f64 = w.accesses.iter().map(|a| a.weight).sum();
    if total_weight <= 0.0 {
        return (
            vec![Op::Comp {
                slots: w.issue_slots.max(1.0),
            }],
            1.0,
        );
    }
    // Proportional expansion to at most cap_ops memory ops.
    let scale = (total_weight / cap_ops as f64).max(1.0);
    for a in &w.accesses {
        let n = (a.weight / scale).round() as usize;
        for _ in 0..n {
            mem.push((a.latency, a.txns / a.inner_reuse.max(1.0)));
        }
    }
    if mem.is_empty() {
        mem.push((w.accesses[0].latency, w.accesses[0].txns));
    }
    let comp_per_mem = w.issue_slots / scale / mem.len() as f64;
    let mut ops = Vec::with_capacity(mem.len() * 2);
    for (latency, txns) in mem {
        ops.push(Op::Comp {
            slots: comp_per_mem,
        });
        ops.push(Op::Mem { latency, txns });
    }
    (ops, scale)
}

/// Simulates one SM's `warps` resident warps each executing the program
/// once; returns the completion time in cycles.
fn simulate_sm(gpu: &GpuDescriptor, ops: &[Op], warps: u32) -> f64 {
    #[derive(PartialEq)]
    struct T(f64);
    impl Eq for T {}
    impl PartialOrd for T {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for T {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("NaN time")
        }
    }

    // Ready queue ordered by each warp's next-free time.
    let mut queue: BinaryHeap<Reverse<(T, u32, usize)>> = BinaryHeap::new();
    for wid in 0..warps {
        queue.push(Reverse((T(0.0), wid, 0usize)));
    }
    // LSU pipes and the issue clock (front-end shared by all warps).
    let mut lsu_free: BinaryHeap<Reverse<T>> = BinaryHeap::new();
    let pipes = gpu.lsu_txns_per_cycle.ceil().max(1.0) as usize;
    for _ in 0..pipes {
        lsu_free.push(Reverse(T(0.0)));
    }
    let txn_cost = gpu.lsu_txns_per_cycle.ceil().max(1.0) / gpu.lsu_txns_per_cycle;
    let mut issue_clock = 0.0f64;
    let sched = f64::from(gpu.schedulers_per_sm);
    let mut completion = 0.0f64;

    while let Some(Reverse((T(t), wid, pc))) = queue.pop() {
        if pc >= ops.len() {
            completion = completion.max(t);
            continue;
        }
        match ops[pc] {
            Op::Comp { slots } => {
                let start = t.max(issue_clock);
                issue_clock = start + slots / sched;
                let done = start + slots * gpu.issue_rate;
                queue.push(Reverse((T(done), wid, pc + 1)));
            }
            Op::Mem { latency, txns } => {
                let Reverse(T(pipe)) = lsu_free.pop().expect("lsu pool");
                let start = t.max(pipe).max(issue_clock);
                issue_clock = start + 1.0 / sched;
                lsu_free.push(Reverse(T(start + txns * txn_cost)));
                queue.push(Reverse((T(start + latency), wid, pc + 1)));
            }
        }
    }
    completion
}

/// Result of the detailed engine.
#[derive(Debug, Clone, Copy)]
pub struct DetailedRun {
    /// Kernel execution time, seconds (no transfers).
    pub kernel_s: f64,
    /// Kernel execution, cycles.
    pub kernel_cycles: f64,
}

/// Event-driven estimate of the kernel execution time (excluding
/// transfers), for cross-checking [`crate::engine::simulate`].
pub fn simulate_detailed(
    kernel: &Kernel,
    binding: &Binding,
    gpu: &GpuDescriptor,
) -> Option<DetailedRun> {
    let p = kernel.parallel_iterations(binding)?;
    if p == 0 {
        return None;
    }
    let geom = select(gpu, p);
    let occ = occupancy(gpu, &geom);
    let w = characterize(kernel, binding, gpu, &geom)?;

    let (ops, scale) = warp_program(&w, 4096);
    let per_block_pass = simulate_sm(gpu, &ops, occ.warps_per_sm.max(1));
    // Each resident warp set executes `scale` compressed passes per
    // parallel iteration, omp_rep iterations, and waves block batches.
    let cycles = per_block_pass * scale * geom.omp_rep as f64 * occ.waves as f64;

    // The event engine models one SM; device-level DRAM bandwidth still
    // caps the aggregate, so apply the same roofline.
    let dram_cycles = w.dram_bytes(&geom) / gpu.dram_bytes_per_cycle();
    let kernel_cycles = cycles.max(dram_cycles).max(1.0);
    Some(DetailedRun {
        kernel_s: kernel_cycles / (gpu.clock_ghz * 1e9),
        kernel_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{tesla_k80, tesla_v100};
    use crate::engine::simulate;
    use hetsel_polybench::{find_kernel, Dataset};

    /// The two independently derived engines agree within a small factor
    /// across the suite — the cross-validation this module exists for.
    #[test]
    fn detailed_engine_agrees_with_roofline_engine() {
        let gpu = tesla_v100();
        for name in [
            "gemm", "2dconv", "3dconv", "atax.k1", "atax.k2", "syrk", "gesummv",
        ] {
            for ds in [Dataset::Test, Dataset::Benchmark] {
                let (k, binding) = find_kernel(name).unwrap();
                let b = binding(ds);
                let fast = simulate(&k, &b, &gpu).unwrap();
                let detailed = simulate_detailed(&k, &b, &gpu).unwrap();
                let ratio = detailed.kernel_s / fast.kernel_s;
                assert!(
                    (0.2..=5.0).contains(&ratio),
                    "{name}/{ds}: detailed {} vs roofline {} (ratio {ratio:.2})",
                    detailed.kernel_s,
                    fast.kernel_s
                );
            }
        }
    }

    #[test]
    fn detailed_engine_orders_generations() {
        for name in ["gemm", "2dconv"] {
            let (k, binding) = find_kernel(name).unwrap();
            let b = binding(Dataset::Test);
            let v = simulate_detailed(&k, &b, &tesla_v100()).unwrap();
            let k80 = simulate_detailed(&k, &b, &tesla_k80()).unwrap();
            assert!(v.kernel_s < k80.kernel_s, "{name}");
        }
    }

    #[test]
    fn more_warps_hide_latency() {
        // The same program with more resident warps finishes sooner per
        // warp-average (total time grows sublinearly).
        let gpu = tesla_v100();
        let ops = vec![
            Op::Comp { slots: 8.0 },
            Op::Mem {
                latency: 400.0,
                txns: 4.0,
            },
            Op::Comp { slots: 8.0 },
            Op::Mem {
                latency: 400.0,
                txns: 4.0,
            },
        ];
        let t1 = simulate_sm(&gpu, &ops, 1);
        let t32 = simulate_sm(&gpu, &ops, 32);
        assert!(t32 < t1 * 32.0 * 0.25, "t1={t1} t32={t32}");
        assert!(t32 >= t1, "more warps cannot finish before one warp");
    }

    #[test]
    fn empty_workload_is_safe() {
        use hetsel_ir::{cexpr, KernelBuilder, Transfer};
        let mut kb = KernelBuilder::new("tiny");
        let a = kb.array("a", 4, &["n".into()], Transfer::Out);
        let i = kb.parallel_loop(0, "n");
        kb.store(a, &[i.into()], cexpr::lit(0.0));
        kb.end_loop();
        let k = kb.finish();
        let r = simulate_detailed(&k, &Binding::new().with("n", 32), &tesla_v100()).unwrap();
        assert!(r.kernel_s > 0.0);
    }
}
